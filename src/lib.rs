//! # dram-locker — reproduction of DRAM-Locker (DATE 2024)
//!
//! Facade crate re-exporting the full workspace:
//!
//! - [`dram`] — cycle-level DRAM device with RowClone and RowHammer;
//! - [`memctrl`] — memory controller, address mapping, page tables;
//! - [`locker`] — the DRAM-Locker defense (lock-table + in-DRAM SWAP);
//! - [`dnn`] — quantized DNN substrate (training, inference, DRAM layout);
//! - [`attacks`] — BFA, random-flip and page-table attacks;
//! - [`defenses`] — SHADOW and other baseline RowHammer defenses;
//! - [`engine`] — sharded multi-channel execution engine with
//!   trace-driven workload replay (scoped-thread parallelism,
//!   deterministic merge);
//! - [`sim`] — the unified Scenario API: builder-driven pipelines
//!   composing victims, attacks and defenses into one run;
//! - [`xlayer`] — cross-layer evaluation framework and paper experiments;
//! - [`obs`] — zero-dependency observability: counters, log2
//!   histograms, span traces and the registry every layer reports into.
//!
//! ## Quickstart
//!
//! Every experiment is one `Scenario`: pick a victim, an attack and a
//! defense, and run.
//!
//! ```
//! use dram_locker::sim::{Budget, HammerAttack, LockerMitigation, Scenario, VictimSpec};
//!
//! # fn main() -> Result<(), dram_locker::sim::SimError> {
//! let mut run = Scenario::builder()
//!     .label("quickstart")
//!     .victim(VictimSpec::row(20, 0xA5))
//!     .attack(HammerAttack::bit(7))
//!     .defense(LockerMitigation::adjacent())
//!     .budget(Budget { max_activations: 1_000, check_interval: 8, iterations: 1 })
//!     .build()?;
//! let report = run.run()?;
//! assert!(report.fully_denied(), "every hammer access was denied");
//! assert_eq!(report.victims[0].data_intact, Some(true));
//! # Ok(())
//! # }
//! ```
//!
//! The named attack × defense scenarios of the paper's evaluation are
//! enumerable via [`sim::catalog()`].
//!
//! ## Scaling out
//!
//! Multi-channel geometries run each channel on its own shard —
//! stepped on scoped threads, merged deterministically:
//!
//! ```
//! use dram_locker::sim::{AttackSpec, EngineConfig, Scenario, VictimSpec, Workload};
//!
//! # fn main() -> Result<(), dram_locker::sim::SimError> {
//! let mut run = Scenario::builder()
//!     .engine(EngineConfig::sharded(2))
//!     .victim_on(VictimSpec::row(20, 0xA5), 0)
//!     .victim_on(VictimSpec::row(20, 0x5A), 1)
//!     .attack(AttackSpec::replay(Workload::Sequential { base: 0, len: 8, count: 256 }))
//!     .build()?;
//! let report = run.run()?;
//! assert_eq!(report.channels, 2);
//! assert!(!report.harmed());
//! # Ok(())
//! # }
//! ```
//!
//! ## Specs, sweeps, metrics
//!
//! Every scenario — including each catalog entry — is a declarative
//! [`sim::ScenarioSpec`] with a line-oriented spec-file codec
//! ([`sim::ScenarioSpec::to_text`] / [`sim::ScenarioSpec::from_text`]);
//! [`sim::Scenario::from_spec`] is the one construction path and the
//! builder above is sugar over it. Grids expand through
//! [`sim::sweep::SweepGrid`], run across worker threads through
//! [`sim::sweep::SweepRunner`] (bit-identical to serial) and export
//! CSV/markdown through [`sim::metrics::Table`].

pub use dlk_attacks as attacks;
pub use dlk_cli as cli;
pub use dlk_defenses as defenses;
pub use dlk_dnn as dnn;
pub use dlk_dram as dram;
pub use dlk_engine as engine;
pub use dlk_locker as locker;
pub use dlk_memctrl as memctrl;
pub use dlk_obs as obs;
pub use dlk_sim as sim;
pub use dlk_xlayer as xlayer;
