//! # dram-locker — reproduction of DRAM-Locker (DATE 2024)
//!
//! Facade crate re-exporting the full workspace:
//!
//! - [`dram`] — cycle-level DRAM device with RowClone and RowHammer;
//! - [`memctrl`] — memory controller, address mapping, page tables;
//! - [`locker`] — the DRAM-Locker defense (lock-table + in-DRAM SWAP);
//! - [`dnn`] — quantized DNN substrate (training, inference, DRAM layout);
//! - [`attacks`] — BFA, random-flip and page-table attacks;
//! - [`defenses`] — SHADOW and other baseline RowHammer defenses;
//! - [`sim`] — the unified Scenario API: builder-driven pipelines
//!   composing victims, attacks and defenses into one run;
//! - [`xlayer`] — cross-layer evaluation framework and paper experiments.
//!
//! ## Quickstart
//!
//! Every experiment is one `Scenario`: pick a victim, an attack and a
//! defense, and run.
//!
//! ```
//! use dram_locker::sim::{Budget, HammerAttack, LockerMitigation, Scenario, VictimSpec};
//!
//! # fn main() -> Result<(), dram_locker::sim::SimError> {
//! let mut run = Scenario::builder()
//!     .label("quickstart")
//!     .victim(VictimSpec::row(20, 0xA5))
//!     .attack(HammerAttack::bit(7))
//!     .defense(LockerMitigation::adjacent())
//!     .budget(Budget { max_activations: 1_000, check_interval: 8, iterations: 1 })
//!     .build()?;
//! let report = run.run()?;
//! assert!(report.fully_denied(), "every hammer access was denied");
//! assert_eq!(report.victims[0].data_intact, Some(true));
//! # Ok(())
//! # }
//! ```
//!
//! The named attack × defense scenarios of the paper's evaluation are
//! enumerable via [`sim::catalog()`].

pub use dlk_attacks as attacks;
pub use dlk_defenses as defenses;
pub use dlk_dnn as dnn;
pub use dlk_dram as dram;
pub use dlk_locker as locker;
pub use dlk_memctrl as memctrl;
pub use dlk_sim as sim;
pub use dlk_xlayer as xlayer;
