//! # dram-locker — reproduction of DRAM-Locker (DATE 2024)
//!
//! Facade crate re-exporting the full workspace:
//!
//! - [`dram`] — cycle-level DRAM device with RowClone and RowHammer;
//! - [`memctrl`] — memory controller, address mapping, page tables;
//! - [`locker`] — the DRAM-Locker defense (lock-table + in-DRAM SWAP);
//! - [`dnn`] — quantized DNN substrate (training, inference, DRAM layout);
//! - [`attacks`] — BFA, random-flip and page-table attacks;
//! - [`defenses`] — SHADOW and other baseline RowHammer defenses;
//! - [`xlayer`] — cross-layer evaluation framework and paper experiments.
//!
//! ## Quickstart
//!
//! ```
//! use dram_locker::locker::{DramLocker, LockerConfig};
//! use dram_locker::memctrl::{MemoryController, MemCtrlConfig};
//!
//! let controller = MemoryController::new(MemCtrlConfig::tiny_for_tests());
//! let locker = DramLocker::new(LockerConfig::default(), controller.geometry());
//! assert_eq!(locker.lock_table().len(), 0);
//! ```

pub use dlk_attacks as attacks;
pub use dlk_defenses as defenses;
pub use dlk_dnn as dnn;
pub use dlk_dram as dram;
pub use dlk_locker as locker;
pub use dlk_memctrl as memctrl;
pub use dlk_xlayer as xlayer;
