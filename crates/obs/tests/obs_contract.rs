//! Satellite contract tests for `dlk-obs`: the histogram's percentile
//! guarantee against a sorted-vec oracle (property-based), the
//! time-series ring + windowed rate against a Vec oracle
//! (property-based), sampler delta-absorb exactness across ticks,
//! counter linearity under real thread contention, and
//! golden-file-pinned text/JSON exposition so the formats can't drift
//! silently.

use std::sync::Arc;

use dlk_obs::json::BuildInfo;
use dlk_obs::{Histogram, Registry, Sample, Sampler, TimeSeries};
use proptest::collection;
use proptest::prelude::*;

/// The exact quantile the histogram estimates: the `rank`-th smallest
/// sample with `rank = ceil(q * n)` clamped to `[1, n]`.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    sorted[(rank - 1) as usize]
}

proptest! {
    /// The estimate never under-reports the true quantile, never
    /// exceeds the observed max, and is tight to one power of two.
    #[test]
    fn percentiles_bound_the_sorted_vec_oracle(
        small in collection::vec(0u64..1024, 1..40),
        large in collection::vec(any::<u64>(), 0..8),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::new();
        let mut samples = small.clone();
        samples.extend_from_slice(&large);
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();

        let truth = oracle(&samples, q);
        let est = hist.percentile(q);
        prop_assert!(est >= truth, "estimate {} under-reports true quantile {}", est, truth);
        prop_assert!(est <= hist.max(), "estimate {} above max {}", est, hist.max());
        if truth == 0 {
            prop_assert_eq!(est, 0);
        } else {
            // The documented error bound: truth is in (est/2, est].
            prop_assert!(est / 2 < truth, "estimate {} looser than 2x truth {}", est, truth);
        }
    }

    /// Shard-local histograms merged into one report exactly what a
    /// single central histogram would have — the online-aggregation
    /// contract the fleet roadmap item leans on.
    #[test]
    fn merge_is_indistinguishable_from_central_recording(
        a in collection::vec(any::<u64>(), 0..20),
        b in collection::vec(0u64..100_000, 1..20),
    ) {
        let left = Histogram::new();
        let right = Histogram::new();
        let central = Histogram::new();
        for &v in &a {
            left.record(v);
            central.record(v);
        }
        for &v in &b {
            right.record(v);
            central.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.snapshot(), central.snapshot());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(left.percentile(q), central.percentile(q));
        }
    }
}

proptest! {
    /// The ring is exactly "a Vec that forgets its oldest entries":
    /// after any push sequence the retained samples equal the tail of
    /// the full history, and every windowed query agrees with the
    /// oracle computed on that tail.
    #[test]
    fn ring_matches_a_vec_oracle_through_wraparound(
        capacity in 1usize..12,
        deltas in collection::vec((0u64..5_000_000, -1000i64..1000), 0..40),
        window_raw in 0u64..20_000_002,
    ) {
        // Fold the edge cases into the range: 0 = "latest sample only",
        // the top value = "unbounded window".
        let window_us = if window_raw == 20_000_001 { u64::MAX } else { window_raw };
        let mut series = TimeSeries::new(capacity);
        let mut oracle: Vec<Sample> = Vec::new();
        // Timestamps are cumulative deltas: nondecreasing, like any
        // real clock the sampler ticks with.
        let mut t_us = 0u64;
        for (dt, value) in deltas {
            t_us += dt;
            series.push(t_us, value as f64);
            oracle.push(Sample { t_us, value: value as f64 });
        }
        let tail: Vec<Sample> =
            oracle.iter().copied().skip(oracle.len().saturating_sub(capacity)).collect();

        prop_assert_eq!(series.len(), tail.len());
        prop_assert_eq!(series.iter().collect::<Vec<_>>(), tail.clone());
        prop_assert_eq!(series.last(), tail.last().copied());

        let from = tail.last().map_or(0, |last| last.t_us.saturating_sub(window_us));
        let windowed: Vec<Sample> = tail.iter().copied().filter(|s| s.t_us >= from).collect();
        prop_assert_eq!(series.window(window_us).collect::<Vec<_>>(), windowed.clone());

        let expected_rate = match (windowed.first(), windowed.last()) {
            (Some(first), Some(last)) if last.t_us > first.t_us => {
                Some((last.value - first.value) / ((last.t_us - first.t_us) as f64 / 1e6))
            }
            _ => None,
        };
        prop_assert_eq!(series.rate(window_us), expected_rate);

        let expected_mean = (!windowed.is_empty())
            .then(|| windowed.iter().map(|s| s.value).sum::<f64>() / windowed.len() as f64);
        prop_assert_eq!(series.mean(window_us), expected_mean);
    }

    /// Across any tick boundaries, the sampler's histogram series stay
    /// exact: `<name>.count` is the lifetime count, and each tick's
    /// `<name>.mean` is the exact mean of precisely the samples
    /// recorded since the previous tick — no double counting, no loss.
    #[test]
    fn sampler_absorbs_histogram_deltas_exactly(
        batches in collection::vec(collection::vec(0u64..100_000, 0..10), 1..8),
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("h");
        let mut sampler = Sampler::new(&registry, batches.len().max(1));

        let mut lifetime = 0u64;
        for (tick, batch) in batches.iter().enumerate() {
            for &v in batch {
                hist.record(v);
            }
            lifetime += batch.len() as u64;
            sampler.tick_at(tick as u64);

            let count = sampler.get("h.count").unwrap().last().unwrap().value;
            prop_assert_eq!(count, lifetime as f64);
            let mean = sampler.get("h.mean").unwrap().last().unwrap().value;
            let expected = if batch.is_empty() {
                0.0
            } else {
                batch.iter().sum::<u64>() as f64 / batch.len() as f64
            };
            prop_assert!(
                mean == expected,
                "tick {} mean {} must cover only its batch (expected {})",
                tick,
                mean,
                expected
            );
        }
    }
}

#[test]
fn concurrent_increments_from_scoped_threads_all_land() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    let registry = Registry::new();
    let counter = registry.counter("contention.events");
    let hist = registry.histogram("contention.values");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(i);
                }
            });
        }
    });

    assert_eq!(counter.get(), THREADS * PER_THREAD, "no increment may be lost");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    assert_eq!(hist.max(), PER_THREAD - 1);
    // Re-resolving the name sees the same metric, not a fresh zero.
    assert_eq!(registry.counter("contention.events").get(), THREADS * PER_THREAD);
}

/// Builds the registry both golden files pin.
fn golden_registry() -> Registry {
    let registry = Registry::new();
    registry.counter("serve.executed").add(4);
    registry.gauge("sweep.queue_depth").set(-2);
    let hist = registry.histogram("memctrl.latency");
    for v in [1u64, 3, 8] {
        hist.record(v);
    }
    registry
}

#[test]
fn text_exposition_matches_the_golden_file() {
    assert_eq!(golden_registry().to_text(), include_str!("golden/registry.txt"));
}

#[test]
fn json_exposition_matches_the_golden_file() {
    let mut doc = golden_registry().to_document("golden");
    doc.set_build(BuildInfo::pinned());
    let json = doc.to_json();
    dlk_obs::json::validate(&json).expect("golden render must parse");
    assert_eq!(json, include_str!("golden/registry.json"));
}

/// Ticks the golden registry twice (one more executed job, one more
/// latency sample in between) — what the series golden files pin.
fn golden_sampler() -> Sampler {
    let registry = golden_registry();
    let mut sampler = Sampler::new(&registry, 4);
    sampler.tick_at(1_000_000);
    registry.counter("serve.executed").inc();
    registry.histogram("memctrl.latency").record(6);
    sampler.tick_at(2_000_000);
    sampler
}

#[test]
fn series_text_exposition_matches_the_golden_file() {
    assert_eq!(golden_sampler().to_text(), include_str!("golden/series.txt"));
}

#[test]
fn series_json_exposition_matches_the_golden_file() {
    let sampler = golden_sampler();
    let mut doc = golden_registry().to_document("golden");
    doc.set_build(BuildInfo::pinned());
    sampler.export_into(&mut doc);
    let json = doc.to_json();
    dlk_obs::json::validate(&json).expect("golden series render must parse");
    assert_eq!(json, include_str!("golden/series.json"));

    // And the exported section parses back into the exact samples.
    let value = dlk_obs::json::parse(&json).unwrap();
    let series = value.section("series");
    assert_eq!(series.len(), 5, "counter + gauge + 3 histogram series");
    let (name, samples) = dlk_obs::series::parse_series_object(&series[4]).unwrap();
    assert_eq!(name, "sweep.queue_depth");
    assert_eq!(
        samples,
        [Sample { t_us: 1_000_000, value: -2.0 }, Sample { t_us: 2_000_000, value: -2.0 }]
    );
}
