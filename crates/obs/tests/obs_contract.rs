//! Satellite contract tests for `dlk-obs`: the histogram's percentile
//! guarantee against a sorted-vec oracle (property-based), counter
//! linearity under real thread contention, and golden-file-pinned
//! text/JSON exposition so the formats can't drift silently.

use std::sync::Arc;

use dlk_obs::json::BuildInfo;
use dlk_obs::{Histogram, Registry};
use proptest::collection;
use proptest::prelude::*;

/// The exact quantile the histogram estimates: the `rank`-th smallest
/// sample with `rank = ceil(q * n)` clamped to `[1, n]`.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    sorted[(rank - 1) as usize]
}

proptest! {
    /// The estimate never under-reports the true quantile, never
    /// exceeds the observed max, and is tight to one power of two.
    #[test]
    fn percentiles_bound_the_sorted_vec_oracle(
        small in collection::vec(0u64..1024, 1..40),
        large in collection::vec(any::<u64>(), 0..8),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::new();
        let mut samples = small.clone();
        samples.extend_from_slice(&large);
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();

        let truth = oracle(&samples, q);
        let est = hist.percentile(q);
        prop_assert!(est >= truth, "estimate {} under-reports true quantile {}", est, truth);
        prop_assert!(est <= hist.max(), "estimate {} above max {}", est, hist.max());
        if truth == 0 {
            prop_assert_eq!(est, 0);
        } else {
            // The documented error bound: truth is in (est/2, est].
            prop_assert!(est / 2 < truth, "estimate {} looser than 2x truth {}", est, truth);
        }
    }

    /// Shard-local histograms merged into one report exactly what a
    /// single central histogram would have — the online-aggregation
    /// contract the fleet roadmap item leans on.
    #[test]
    fn merge_is_indistinguishable_from_central_recording(
        a in collection::vec(any::<u64>(), 0..20),
        b in collection::vec(0u64..100_000, 1..20),
    ) {
        let left = Histogram::new();
        let right = Histogram::new();
        let central = Histogram::new();
        for &v in &a {
            left.record(v);
            central.record(v);
        }
        for &v in &b {
            right.record(v);
            central.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.snapshot(), central.snapshot());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(left.percentile(q), central.percentile(q));
        }
    }
}

#[test]
fn concurrent_increments_from_scoped_threads_all_land() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    let registry = Registry::new();
    let counter = registry.counter("contention.events");
    let hist = registry.histogram("contention.values");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(i);
                }
            });
        }
    });

    assert_eq!(counter.get(), THREADS * PER_THREAD, "no increment may be lost");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    assert_eq!(hist.max(), PER_THREAD - 1);
    // Re-resolving the name sees the same metric, not a fresh zero.
    assert_eq!(registry.counter("contention.events").get(), THREADS * PER_THREAD);
}

/// Builds the registry both golden files pin.
fn golden_registry() -> Registry {
    let registry = Registry::new();
    registry.counter("serve.executed").add(4);
    registry.gauge("sweep.queue_depth").set(-2);
    let hist = registry.histogram("memctrl.latency");
    for v in [1u64, 3, 8] {
        hist.record(v);
    }
    registry
}

#[test]
fn text_exposition_matches_the_golden_file() {
    assert_eq!(golden_registry().to_text(), include_str!("golden/registry.txt"));
}

#[test]
fn json_exposition_matches_the_golden_file() {
    let mut doc = golden_registry().to_document("golden");
    doc.set_build(BuildInfo::pinned());
    let json = doc.to_json();
    dlk_obs::json::validate(&json).expect("golden render must parse");
    assert_eq!(json, include_str!("golden/registry.json"));
}
