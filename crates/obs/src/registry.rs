//! Named metric registry with text and JSON exposition.
//!
//! A [`Registry`] is a cheap clonable handle (an `Arc` around a
//! `BTreeMap`) mapping dotted names to metrics. Producers call
//! [`Registry::counter`] / [`Registry::gauge`] / [`Registry::histogram`]
//! once at wiring time and keep the returned `Arc` — the map lock is
//! touched only at registration and exposition, never on the record
//! path. Names are get-or-create: two subsystems asking for the same
//! name share one metric, which is how per-shard controllers aggregate
//! into a single fleet-wide view.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::json::{self, Document};
use crate::metric::{Counter, Gauge};

/// A registered metric of any kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic event count.
    Counter(Arc<Counter>),
    /// Signed instantaneous level.
    Gauge(Arc<Gauge>),
    /// Log2-bucketed distribution.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A shared, named metric table.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind —
    /// that is a wiring bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("obs registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match entry {
            Metric::Counter(counter) => Arc::clone(counter),
            other => panic!("obs: {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Gets or creates the gauge registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("obs registry poisoned");
        let entry =
            map.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match entry {
            Metric::Gauge(gauge) => Arc::clone(gauge),
            other => panic!("obs: {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Gets or creates the histogram registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().expect("obs registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match entry {
            Metric::Histogram(hist) => Arc::clone(hist),
            other => panic!("obs: {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("obs registry poisoned").len()
    }

    /// True when nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a registered metric by exact name.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.inner.lock().expect("obs registry poisoned").get(name).cloned()
    }

    /// A point-in-time listing of every registered metric, in name
    /// order (cloned handles — the lock is released before return, so
    /// callers like the [`Sampler`](crate::Sampler) can walk it without
    /// holding up registration).
    pub fn metrics(&self) -> Vec<(String, Metric)> {
        self.inner
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, metric)| (name.clone(), metric.clone()))
            .collect()
    }

    /// Plain-text exposition: one `name value` line per metric in name
    /// order; histograms expand to `count/sum/max/mean/p50/p95/p99`
    /// sub-lines (`mean` is exact — the histogram tracks the sample sum
    /// alongside its buckets). Stable format, pinned by golden tests.
    pub fn to_text(&self) -> String {
        let map = self.inner.lock().expect("obs registry poisoned");
        let mut out = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!("{name}.count {}\n", snap.count));
                    out.push_str(&format!("{name}.sum {}\n", snap.sum));
                    out.push_str(&format!("{name}.max {}\n", snap.max));
                    out.push_str(&format!("{name}.mean {}\n", json::number(snap.mean)));
                    out.push_str(&format!("{name}.p50 {}\n", snap.p50));
                    out.push_str(&format!("{name}.p95 {}\n", snap.p95));
                    out.push_str(&format!("{name}.p99 {}\n", snap.p99));
                }
            }
        }
        out
    }

    /// Renders the registry as a schema-v2 `"metrics"` document named
    /// `name`, with `counters` / `gauges` / `histograms` sections.
    pub fn to_document(&self, name: &str) -> Document {
        let map = self.inner.lock().expect("obs registry poisoned");
        let mut doc = Document::new("metrics", name);
        doc.section("counters");
        doc.section("gauges");
        doc.section("histograms");
        for (metric_name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    doc.push_object(
                        "counters",
                        &[("name", json::escape(metric_name)), ("value", c.get().to_string())],
                    );
                }
                Metric::Gauge(g) => {
                    doc.push_object(
                        "gauges",
                        &[("name", json::escape(metric_name)), ("value", g.get().to_string())],
                    );
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    doc.push_object(
                        "histograms",
                        &[
                            ("name", json::escape(metric_name)),
                            ("count", snap.count.to_string()),
                            ("sum", snap.sum.to_string()),
                            ("max", snap.max.to_string()),
                            ("mean", json::number(snap.mean)),
                            ("p50", snap.p50.to_string()),
                            ("p95", snap.p95.to_string()),
                            ("p99", snap.p99.to_string()),
                        ],
                    );
                }
            }
        }
        doc
    }

    /// JSON exposition (see [`Registry::to_document`]).
    pub fn to_json(&self, name: &str) -> String {
        self.to_document(name).to_json()
    }

    /// Validates and atomically writes the JSON exposition to `path`
    /// (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from the write or rename.
    pub fn write_json(&self, name: &str, path: impl AsRef<Path>) -> io::Result<()> {
        self.to_document(name).write(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_handles() {
        let reg = Registry::new();
        let a = reg.counter("x.events");
        let b = reg.counter("x.events");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.events").get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("dup");
        reg.gauge("dup");
    }

    #[test]
    fn text_exposition_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.depth").set(-3);
        reg.histogram("c.wall").record(7);
        let text = reg.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.depth -3");
        assert_eq!(lines[1], "b.count 2");
        assert!(lines[2].starts_with("c.wall.count 1"));
        assert!(text.contains("c.wall.p99 7\n"));
    }

    #[test]
    fn json_exposition_validates_and_carries_sections() {
        let reg = Registry::new();
        reg.counter("served").add(10);
        reg.histogram("latency").record(42);
        let json = reg.to_json("unit");
        json::validate(&json).unwrap_or_else(|err| panic!("{err}\n{json}"));
        assert!(json.contains("\"kind\": \"metrics\""));
        assert!(json.contains("\"counters\": ["));
        assert!(json.contains("\"gauges\": []"));
        assert!(json.contains("\"histograms\": ["));
        assert!(json.contains("\"served\""));
    }

    #[test]
    fn clones_share_the_same_table() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("shared").inc();
        assert_eq!(reg.counter("shared").get(), 1);
    }
}
