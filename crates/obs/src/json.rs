//! The shared hand-written JSON layer (schema version 2).
//!
//! The workspace `serde` is a marker-only stub, so every JSON artifact
//! — `BENCH_*.json` bench snapshots, `metrics.json` registry dumps —
//! is emitted by hand and checked by the recursive-descent
//! [`validate`] parser before it touches disk. This module grew out of
//! `dlk_bench::snapshot` (schema version 1, bench-only) and is now the
//! one writer/validator both artifact families share.
//!
//! Shared header, common to every document:
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "kind": "bench",
//!   "name": "hot_path",
//!   "build": {
//!     "package_version": "0.1.0",
//!     "profile": "release",
//!     "arch": "x86_64",
//!     "os": "linux",
//!     "host_threads": 8,
//!     "unix_time_secs": 1700000000
//!   },
//!   ...
//! }
//! ```
//!
//! followed by one array per named section (`"metrics"`, `"speedups"`,
//! `"counters"`, `"gauges"`, `"histograms"`, ...), each element an
//! object rendered by the producer. `kind` is `"bench"` for snapshot
//! trajectories and `"metrics"` for registry dumps.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Version stamped into every document; bump when the layout changes.
///
/// Version history:
/// - 1: bench snapshots only (`"bench"` top-level key).
/// - 2: shared header (`"kind"` + `"name"`) for bench snapshots and
///   registry metrics dumps.
pub const SCHEMA_VERSION: u32 = 2;

/// Escapes a string for JSON embedding (quotes included).
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `0`
/// (JSON has no NaN/Infinity).
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

/// Build provenance stamped into the document header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Workspace package version (`CARGO_PKG_VERSION`).
    pub package_version: String,
    /// `debug` or `release`.
    pub profile: String,
    /// Target architecture, e.g. `x86_64`.
    pub arch: String,
    /// Target OS, e.g. `linux`.
    pub os: String,
    /// `available_parallelism` of the producing host.
    pub host_threads: usize,
    /// Wall-clock seconds since the Unix epoch at render time.
    pub unix_time_secs: u64,
}

impl BuildInfo {
    /// Captures the current build/host provenance.
    pub fn current() -> Self {
        Self {
            package_version: env!("CARGO_PKG_VERSION").to_string(),
            profile: if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            os: std::env::consts::OS.to_string(),
            host_threads: std::thread::available_parallelism().map_or(1, usize::from),
            unix_time_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |elapsed| elapsed.as_secs()),
        }
    }

    /// A fully deterministic stand-in for golden tests.
    pub fn pinned() -> Self {
        Self {
            package_version: "0.0.0".to_string(),
            profile: "release".to_string(),
            arch: "x86_64".to_string(),
            os: "linux".to_string(),
            host_threads: 8,
            unix_time_secs: 0,
        }
    }
}

/// A schema-v2 document under construction: the shared header plus an
/// ordered list of named object-array sections.
#[derive(Debug, Clone)]
pub struct Document {
    kind: String,
    name: String,
    build: BuildInfo,
    sections: Vec<(String, Vec<String>)>,
}

impl Document {
    /// Starts a document of the given `kind` (`"bench"`, `"metrics"`)
    /// and `name`, stamped with the current build info.
    pub fn new(kind: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            name: name.into(),
            build: BuildInfo::current(),
            sections: Vec::new(),
        }
    }

    /// Replaces the build header — used by golden tests that need a
    /// byte-for-byte deterministic render.
    pub fn set_build(&mut self, build: BuildInfo) -> &mut Self {
        self.build = build;
        self
    }

    /// Appends a pre-rendered JSON object to the named section,
    /// creating the section if this is its first element. Section
    /// order is first-push order; use [`Document::section`] to declare
    /// an empty section up front.
    pub fn push(&mut self, section: &str, object: String) -> &mut Self {
        self.section(section).push(object);
        self
    }

    /// Renders `fields` as a one-line JSON object and appends it to
    /// the named section. Values must already be valid JSON fragments
    /// (use [`escape`] / [`number`]).
    pub fn push_object(&mut self, section: &str, fields: &[(&str, String)]) -> &mut Self {
        let mut obj = String::from("{ ");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                obj.push_str(", ");
            }
            let _ = write!(obj, "{}: {}", escape(key), value);
        }
        obj.push_str(" }");
        self.push(section, obj)
    }

    /// Ensures the named section exists (possibly empty) and returns
    /// its element list.
    pub fn section(&mut self, section: &str) -> &mut Vec<String> {
        if let Some(at) = self.sections.iter().position(|(name, _)| name == section) {
            return &mut self.sections[at].1;
        }
        self.sections.push((section.to_string(), Vec::new()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Renders the full document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"kind\": {},", escape(&self.kind));
        let _ = writeln!(out, "  \"name\": {},", escape(&self.name));
        out.push_str("  \"build\": {\n");
        let _ = writeln!(out, "    \"package_version\": {},", escape(&self.build.package_version));
        let _ = writeln!(out, "    \"profile\": {},", escape(&self.build.profile));
        let _ = writeln!(out, "    \"arch\": {},", escape(&self.build.arch));
        let _ = writeln!(out, "    \"os\": {},", escape(&self.build.os));
        let _ = writeln!(out, "    \"host_threads\": {},", self.build.host_threads);
        let _ = writeln!(out, "    \"unix_time_secs\": {}", self.build.unix_time_secs);
        if self.sections.is_empty() {
            out.push_str("  }\n");
        } else {
            out.push_str("  },\n");
        }
        for (at, (name, objects)) in self.sections.iter().enumerate() {
            let _ = write!(out, "  {}: [", escape(name));
            for (i, object) in objects.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}\n    {object}");
            }
            let tail = if at + 1 == self.sections.len() { "" } else { "," };
            if objects.is_empty() {
                let _ = writeln!(out, "]{tail}");
            } else {
                let _ = writeln!(out, "\n  ]{tail}");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Validates the render and writes it to `path` atomically (temp
    /// file + rename), the same crash-safe discipline `results.csv`
    /// uses.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error; an invalid render (a bug in this
    /// module) surfaces as [`io::ErrorKind::InvalidData`].
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let json = self.to_json();
        validate(&json).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, &json)?;
        fs::rename(&tmp, path)
    }
}

/// A parsed JSON value — the read half of this module. Objects keep
/// their key order (schema-v2 sections are *ordered* object arrays),
/// and numbers are `f64` (every value this schema emits — counts,
/// micro-timestamps, throughputs — is exact well past 2^52).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => {
                members.iter().find(|(name, _)| name == key).map(|(_, value)| value)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64` (negative → 0).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| if n.is_finite() && n > 0.0 { n as u64 } else { 0 })
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Convenience for schema-v2 documents: the named section as an
    /// object array, or an empty slice when absent/mistyped.
    pub fn section(&self, name: &str) -> &[Value] {
        self.get(name).and_then(Value::as_array).unwrap_or(&[])
    }
}

/// Parses `text` as a single JSON value.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

/// Parses the file at `path` as a single JSON value.
///
/// # Errors
///
/// Returns the read error or the first syntax error, either way
/// prefixed with the path.
pub fn parse_file(path: impl AsRef<Path>) -> Result<Value, String> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Checks that `text` is a single well-formed JSON value. Not a full
/// deserializer — the workspace has no real serde — just enough of a
/// recursive-descent parser to reject anything `json.tool` would.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') => parse_literal(bytes, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null").map(|()| Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(format!("unexpected byte {other:#04x} at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    let mut members = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    while let Some(&byte) = bytes.get(*pos) {
        match byte {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let escape = bytes.get(*pos + 1).copied();
                match escape {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at offset {pos}", pos = *pos));
                        }
                        let code = u32::from_str_radix(std::str::from_utf8(hex).unwrap(), 16)
                            .expect("four hex digits");
                        // Surrogates (the writer never emits them) fall
                        // back to the replacement character rather than
                        // growing a pairing decoder here.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 6;
                        continue;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 2;
            }
            0x00..=0x1F => {
                return Err(format!("raw control byte in string at offset {pos}", pos = *pos))
            }
            _ => {
                // Consume the whole UTF-8 scalar (the input is a &str,
                // so continuation bytes are guaranteed well-formed).
                let len = match byte {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(bytes.len());
                out.push_str(
                    std::str::from_utf8(&bytes[*pos..end]).map_err(|_| {
                        format!("invalid UTF-8 in string at offset {pos}", pos = *pos)
                    })?,
                );
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, expected: &[u8]) -> Result<(), String> {
    if bytes.get(*pos..*pos + expected.len()) == Some(expected) {
        *pos += expected.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = |bytes: &[u8], pos: &mut usize| {
        let begin = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > begin
    };
    if !digits_from(bytes, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits_from(bytes, pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits_from(bytes, pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number bytes");
    text.parse::<f64>().map(Value::Number).map_err(|_| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_header_and_sections_render() {
        let mut doc = Document::new("metrics", "unit-test");
        doc.push_object("counters", &[("name", escape("a.b")), ("value", number(3.0))]);
        doc.push_object("counters", &[("name", escape("c")), ("value", number(0.5))]);
        doc.section("gauges");
        let json = doc.to_json();
        validate(&json).unwrap_or_else(|err| panic!("{err}\n{json}"));
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"kind\": \"metrics\""));
        assert!(json.contains("\"name\": \"unit-test\""));
        assert!(json.contains("\"a.b\""));
        assert!(json.contains("\"gauges\": []"));
    }

    #[test]
    fn empty_document_is_valid() {
        let json = Document::new("bench", "empty").to_json();
        validate(&json).expect("empty document must parse");
    }

    #[test]
    fn pinned_build_render_is_deterministic() {
        let mut a = Document::new("metrics", "g");
        a.set_build(BuildInfo::pinned());
        let mut b = Document::new("metrics", "g");
        b.set_build(BuildInfo::pinned());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"unix_time_secs\": 0"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn number_maps_non_finite_to_zero() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }

    #[test]
    fn validator_accepts_json_corpus() {
        for good in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"str \\u00e9\"",
            "[]",
            "[1, [2, {\"a\": null}]]",
            "{\"k\": \"v\", \"n\": [1.5, -2]}",
        ] {
            validate(good).unwrap_or_else(|err| panic!("{good}: {err}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "nul",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{'a': 1}",
            "[1] trailing",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let value = parse("{\"a\": [1, -2.5e1, \"x\\ny\"], \"b\": {\"c\": true, \"d\": null}}")
            .expect("must parse");
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(value.section("a")[0].as_f64(), Some(1.0));
        assert_eq!(value.section("a")[1].as_f64(), Some(-25.0));
        assert_eq!(value.section("a")[2].as_str(), Some("x\ny"));
        assert_eq!(value.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(value.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(value.get("missing"), None);
        assert!(value.section("missing").is_empty());
    }

    #[test]
    fn parse_unescapes_and_preserves_member_order() {
        let value = parse("{\"z\": 1, \"a\": \"q\\\"\\u00e9\\t\"}").expect("must parse");
        let keys: Vec<&str> = value.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"], "document order, not sorted");
        assert_eq!(value.get("a").unwrap().as_str(), Some("q\"\u{e9}\t"));
    }

    #[test]
    fn documents_round_trip_through_parse() {
        let mut doc = Document::new("metrics", "round-trip");
        doc.set_build(BuildInfo::pinned());
        doc.push_object("counters", &[("name", escape("a.b")), ("value", "7".into())]);
        doc.section("series");
        let value = parse(&doc.to_json()).expect("writer output must parse");
        assert_eq!(value.get("schema_version").unwrap().as_u64(), Some(2));
        assert_eq!(value.get("kind").unwrap().as_str(), Some("metrics"));
        assert_eq!(value.get("build").unwrap().get("host_threads").unwrap().as_u64(), Some(8));
        assert_eq!(value.section("counters")[0].get("name").unwrap().as_str(), Some("a.b"));
        assert_eq!(value.section("counters")[0].get("value").unwrap().as_u64(), Some(7));
        assert!(value.section("series").is_empty());
    }

    #[test]
    fn write_is_atomic_and_valid_on_disk() {
        let dir = std::env::temp_dir().join(format!("dlk_obs_json_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.json");
        let mut doc = Document::new("metrics", "atomic");
        doc.push_object("counters", &[("name", escape("n")), ("value", number(1.0))]);
        doc.write(&path).expect("write");
        let on_disk = std::fs::read_to_string(&path).expect("read back");
        validate(&on_disk).expect("on-disk JSON parses");
        assert!(!path.with_extension("json.tmp").exists(), "temp file must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }
}
