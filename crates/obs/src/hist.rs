//! Lock-free log2-bucketed histogram.
//!
//! Values land in bucket `bit_length(v)` — bucket 0 holds exactly `0`,
//! bucket `i` holds `[2^(i-1), 2^i - 1]` — so the whole `u64` range
//! fits in 65 relaxed atomics and `record` is a couple of `lock xadd`s
//! with no allocation and no lock, cheap enough for the memory
//! controller's per-request path. Percentile queries return the upper
//! bound of the bucket containing the requested rank: an estimate
//! that never under-reports and is exact to within one power of two.
//!
//! [`Histogram::merge`] adds another histogram's buckets into this
//! one. That is the online-aggregation primitive the fleet-simulation
//! roadmap item needs: shard- or host-local histograms can be merged
//! into a global one at any time without coordination, and percentiles
//! of the merged histogram are as accurate as if every sample had been
//! recorded centrally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 buckets: one for zero plus one per `u64` bit length.
pub const BUCKETS: usize = 65;

/// A fixed-shape concurrent histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    // No separate count: it is the sum of the buckets, so `record`
    // pays one RMW fewer on the hot path.
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: 0 for 0, else its bit length.
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (what percentile queries report).
#[inline]
fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: two relaxed RMWs, plus a
    /// `fetch_max` only when the sample advances the max (a plain
    /// load otherwise, which is the steady state).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if self.max.load(Ordering::Relaxed) < value {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Starts a [`Span`] that records its elapsed wall nanoseconds
    /// into this histogram on drop.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span { hist: self, start: Instant::now() }
    }

    /// Folds `other`'s samples into `self` (online aggregation). Both
    /// histograms may be concurrently written during the merge; the
    /// result is a point-in-time snapshot-add per bucket.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded samples (the sum of the bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`); 0 when empty. The true quantile is in
    /// `(estimate/2, estimate]` — never above it.
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bucket, n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Both bounds are >= the true quantile, so their min
                // is a (tighter) valid estimate.
                return bucket_upper(bucket).min(self.max());
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Folds everything `local` recorded since its last export into
    /// this histogram, then marks it exported. Delta-based: repeated
    /// calls never double-count, so single-owner hot paths can record
    /// into a [`LocalHistogram`] for free and flush here at any
    /// convenient boundary.
    pub fn absorb(&self, local: &mut LocalHistogram) {
        for (at, mine) in self.buckets.iter().enumerate() {
            let delta = local.buckets[at] - local.exported_buckets[at];
            if delta != 0 {
                mine.fetch_add(delta, Ordering::Relaxed);
                local.exported_buckets[at] = local.buckets[at];
            }
        }
        let sum_delta = local.sum.wrapping_sub(local.exported_sum);
        if sum_delta != 0 {
            self.sum.fetch_add(sum_delta, Ordering::Relaxed);
            local.exported_sum = local.sum;
        }
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    /// Point-in-time summary used by the registry exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// A single-owner, non-atomic histogram for `&mut self` hot paths.
///
/// Recording is a plain array increment — no lock-prefixed RMW at all,
/// which matters on paths servicing millions of requests per second.
/// [`Histogram::absorb`] folds the samples recorded since the last
/// export into a shared atomic histogram; together they are the local
/// half of the online-merge aggregation story.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    sum: u64,
    max: u64,
    exported_buckets: [u64; BUCKETS],
    exported_sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// A fresh, empty local histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            sum: 0,
            max: 0,
            exported_buckets: [0; BUCKETS],
            exported_sum: 0,
        }
    }

    /// Records one sample: two plain adds and a compare.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.sum = self.sum.wrapping_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// Frozen summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median estimate (log2-bucket upper bound).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A cheap RAII wall-clock timer: created by [`Histogram::span`],
/// records elapsed nanoseconds into the histogram when dropped.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Span<'_> {
    /// Stops the timer early and records; equivalent to dropping.
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for bucket in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(bucket)), bucket);
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean, 0.0);
    }

    #[test]
    fn single_sample_percentiles_hit_its_bucket() {
        let h = Histogram::new();
        h.record(100);
        // 100 has bit length 7 -> bucket upper bound 127, capped by max? No cap below upper.
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.percentile(0.5);
        assert!((100..=127).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(1.0), p50);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [1000u64, 2000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 1 + 2 + 3 + 1000 + 2000);
        assert_eq!(a.max(), 2000);
        assert!(a.percentile(0.99) >= 2000);
    }

    #[test]
    fn absorb_exports_deltas_exactly_once() {
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        local.record(5);
        local.record(900);
        shared.absorb(&mut local);
        assert_eq!(shared.count(), 2);
        assert_eq!(shared.sum(), 905);
        assert_eq!(shared.max(), 900);

        // Re-absorbing with nothing new recorded must not double-count.
        shared.absorb(&mut local);
        assert_eq!(shared.count(), 2);
        assert_eq!(shared.sum(), 905);

        // Only the increment since the last export lands.
        local.record(7);
        shared.absorb(&mut local);
        assert_eq!(shared.count(), 3);
        assert_eq!(shared.sum(), 912);
        assert_eq!(shared.max(), 900);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.span();
        }
        h.span().finish();
        assert_eq!(h.count(), 2);
    }
}
