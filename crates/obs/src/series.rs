//! Time-series telemetry: a fixed-capacity ring of timestamped samples
//! plus a registry sampler.
//!
//! A [`Histogram`](crate::Histogram) answers "what is the distribution
//! so far"; a [`TimeSeries`] answers "what happened over the last N
//! seconds". The ring holds the most recent `capacity` samples and
//! nothing else, so a daemon that ticks every scan costs O(capacity)
//! memory regardless of how long it runs — the same constant-memory
//! discipline as the histogram's online merge, extended into the time
//! dimension.
//!
//! [`Sampler`] is the bridge from the point-in-time [`Registry`] to
//! series: each caller-driven [`tick`](Sampler::tick) snapshots every
//! registered metric into its series (counters and gauges one series
//! each; histograms fan out to `<name>.count` / `<name>.mean` /
//! `<name>.p95`, where `mean` is computed from the *delta* of count and
//! sum since the previous tick — the absorb trick from
//! [`LocalHistogram`](crate::LocalHistogram), applied across time, so
//! the per-tick mean is exact even though the histogram itself can
//! never forget). Series are exposed as the ordered `series` section of
//! the schema-v2 JSON document and as `series <name> t:v ...` text
//! lines, both golden-pinned.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::json::{self, Document};
use crate::registry::{Metric, Registry};

/// One timestamped observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Timestamp in microseconds (whatever epoch the producer ticks
    /// with — the serve daemon uses Unix micros so history splices
    /// across restarts).
    pub t_us: u64,
    /// Observed value.
    pub value: f64,
}

/// A fixed-capacity ring buffer of [`Sample`]s in push order.
///
/// Pushing beyond `capacity` overwrites the oldest sample; every query
/// walks at most `capacity` entries. Windowed queries measure time
/// backwards from the newest sample, so they keep working no matter
/// which epoch the timestamps use.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    samples: Vec<Sample>,
    /// Index of the oldest sample once the ring has wrapped.
    head: usize,
    capacity: usize,
}

impl TimeSeries {
    /// An empty series retaining at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { samples: Vec::with_capacity(capacity.min(1024)), head: 0, capacity }
    }

    /// A series pre-filled from `samples` (oldest first), keeping only
    /// the newest `capacity` of them.
    pub fn from_samples(capacity: usize, samples: impl IntoIterator<Item = Sample>) -> Self {
        let mut series = Self::new(capacity);
        for sample in samples {
            series.push(sample.t_us, sample.value);
        }
        series
    }

    /// Appends a sample, evicting the oldest once full.
    pub fn push(&mut self, t_us: u64, value: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(Sample { t_us, value });
        } else {
            self.samples[self.head] = Sample { t_us, value };
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retention limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = Sample> + '_ {
        let (tail, front) = self.samples.split_at(self.head.min(self.samples.len()));
        front.iter().chain(tail.iter()).copied()
    }

    /// The newest sample.
    pub fn last(&self) -> Option<Sample> {
        let at = if self.samples.len() < self.capacity {
            self.samples.len().checked_sub(1)?
        } else {
            Some((self.head + self.capacity - 1) % self.capacity)?
        };
        self.samples.get(at).copied()
    }

    /// Retained samples whose timestamp is within `window_us` of the
    /// newest sample (inclusive), oldest first.
    pub fn window(&self, window_us: u64) -> impl Iterator<Item = Sample> + '_ {
        let from = self.last().map_or(0, |last| last.t_us.saturating_sub(window_us));
        self.iter().filter(move |sample| sample.t_us >= from)
    }

    /// Rate of change per second over the window, for series of
    /// cumulative values (counters): `(newest - oldest) / Δt`. `None`
    /// with fewer than two windowed samples or a zero time span.
    pub fn rate(&self, window_us: u64) -> Option<f64> {
        let mut samples = self.window(window_us);
        let first = samples.next()?;
        let last = samples.last()?;
        let dt_us = last.t_us.checked_sub(first.t_us)?;
        if dt_us == 0 {
            return None;
        }
        Some((last.value - first.value) / (dt_us as f64 / 1e6))
    }

    /// Arithmetic mean of the sample values in the window. `None` when
    /// the series is empty.
    pub fn mean(&self, window_us: u64) -> Option<f64> {
        let (mut sum, mut count) = (0.0f64, 0u64);
        for sample in self.window(window_us) {
            sum += sample.value;
            count += 1;
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Exponentially weighted moving average over the retained samples
    /// (oldest first, smoothing factor `alpha` in `(0, 1]` — higher
    /// weights the recent past more). `None` when empty.
    pub fn ewma(&self, alpha: f64) -> Option<f64> {
        let alpha = alpha.clamp(f64::EPSILON, 1.0);
        let mut acc: Option<f64> = None;
        for sample in self.iter() {
            acc = Some(match acc {
                None => sample.value,
                Some(prev) => alpha * sample.value + (1.0 - alpha) * prev,
            });
        }
        acc
    }
}

/// Snapshots a [`Registry`] into per-metric [`TimeSeries`] on a
/// caller-driven tick. See the module docs for the per-kind mapping.
#[derive(Debug)]
pub struct Sampler {
    registry: Registry,
    capacity: usize,
    origin: Instant,
    origin_us: u64,
    series: BTreeMap<String, TimeSeries>,
    /// Per-histogram `(count, sum)` absorbed by previous ticks, so each
    /// tick's `<name>.mean` covers exactly the samples recorded since
    /// the last one.
    absorbed: BTreeMap<String, (u64, u64)>,
}

impl Sampler {
    /// A sampler over `registry`, retaining `capacity` samples per
    /// series. Ticks are timestamped relative to construction time
    /// unless [`with_origin_us`](Sampler::with_origin_us) rebases them.
    pub fn new(registry: &Registry, capacity: usize) -> Self {
        Self {
            registry: registry.clone(),
            capacity: capacity.max(1),
            origin: Instant::now(),
            origin_us: 0,
            series: BTreeMap::new(),
            absorbed: BTreeMap::new(),
        }
    }

    /// Rebases [`tick`](Sampler::tick) timestamps to `origin_us` + the
    /// wall time elapsed since construction. The serve daemon passes
    /// Unix micros here so replayed history and fresh samples share one
    /// monotone axis across restarts.
    pub fn with_origin_us(mut self, origin_us: u64) -> Self {
        self.origin_us = origin_us;
        self
    }

    /// Per-series retention limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshots every registered metric at the current time. Returns
    /// the timestamp used.
    pub fn tick(&mut self) -> u64 {
        let elapsed = u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX);
        let t_us = self.origin_us.saturating_add(elapsed);
        self.tick_at(t_us);
        t_us
    }

    /// Snapshots every registered metric at an explicit timestamp.
    pub fn tick_at(&mut self, t_us: u64) {
        for (name, metric) in self.registry.metrics() {
            match metric {
                Metric::Counter(counter) => self.push(&name, t_us, counter.get() as f64),
                Metric::Gauge(gauge) => self.push(&name, t_us, gauge.get() as f64),
                Metric::Histogram(hist) => {
                    let snap = hist.snapshot();
                    let (last_count, last_sum) = self
                        .absorbed
                        .insert(name.clone(), (snap.count, snap.sum))
                        .unwrap_or((0, 0));
                    let delta_count = snap.count.saturating_sub(last_count);
                    let delta_mean = if delta_count == 0 {
                        0.0
                    } else {
                        snap.sum.wrapping_sub(last_sum) as f64 / delta_count as f64
                    };
                    self.push(&format!("{name}.count"), t_us, snap.count as f64);
                    self.push(&format!("{name}.mean"), t_us, delta_mean);
                    self.push(&format!("{name}.p95"), t_us, snap.p95 as f64);
                }
            }
        }
    }

    fn push(&mut self, name: &str, t_us: u64, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_insert_with(|| TimeSeries::new(self.capacity))
            .push(t_us, value);
    }

    /// Pre-loads history for one series (oldest first) — how the serve
    /// daemon replays the previous heartbeat's tail after a restart.
    pub fn seed(&mut self, name: &str, samples: impl IntoIterator<Item = Sample>) {
        for sample in samples {
            self.push(name, sample.t_us, sample.value);
        }
    }

    /// The series recorded under `name`, if any tick has produced one.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series in name order.
    pub fn series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(name, series)| (name.as_str(), series))
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True before the first tick (or seed).
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Appends the ordered `series` section to a schema-v2 document:
    /// one object per series, `samples` an array of `[t_us, value]`
    /// pairs, oldest first.
    pub fn export_into(&self, doc: &mut Document) {
        doc.section("series");
        for (name, series) in &self.series {
            doc.push_object(
                "series",
                &[("name", json::escape(name)), ("samples", render_samples(series))],
            );
        }
    }

    /// Plain-text exposition: one `series <name> <t_us>:<value> ...`
    /// line per series in name order. Stable format, golden-pinned.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.series {
            let _ = write!(out, "series {name}");
            for sample in series.iter() {
                let _ = write!(out, " {}:{}", sample.t_us, json::number(sample.value));
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a series' samples as a JSON array of `[t_us, value]` pairs.
fn render_samples(series: &TimeSeries) -> String {
    let mut out = String::from("[");
    for (at, sample) in series.iter().enumerate() {
        if at > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{}, {}]", sample.t_us, json::number(sample.value));
    }
    out.push(']');
    out
}

/// Parses one exported series object (`{"name": ..., "samples":
/// [[t_us, value], ...]}`) back into `(name, samples)` — the read half
/// of [`Sampler::export_into`], used by heartbeat replay and `dlk top`.
pub fn parse_series_object(object: &json::Value) -> Option<(String, Vec<Sample>)> {
    let name = object.get("name")?.as_str()?.to_owned();
    let mut samples = Vec::new();
    for pair in object.get("samples")?.as_array()? {
        let pair = pair.as_array()?;
        let [t, v] = pair else { return None };
        samples.push(Sample { t_us: t.as_u64()?, value: v.as_f64()? });
    }
    Some((name, samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_of(samples: &[(u64, f64)]) -> TimeSeries {
        TimeSeries::from_samples(
            samples.len().max(1),
            samples.iter().map(|&(t_us, value)| Sample { t_us, value }),
        )
    }

    #[test]
    fn ring_keeps_the_newest_capacity_samples() {
        let mut series = TimeSeries::new(3);
        for t in 0..5u64 {
            series.push(t, t as f64);
        }
        assert_eq!(series.len(), 3);
        let kept: Vec<u64> = series.iter().map(|s| s.t_us).collect();
        assert_eq!(kept, [2, 3, 4]);
        assert_eq!(series.last().unwrap().t_us, 4);
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let series = TimeSeries::new(4);
        assert!(series.is_empty() && series.last().is_none());
        assert_eq!(series.rate(1_000), None);
        assert_eq!(series.mean(1_000), None);
        assert_eq!(series.ewma(0.5), None);

        let one = series_of(&[(10, 7.0)]);
        assert_eq!(one.last().unwrap().value, 7.0);
        assert_eq!(one.rate(1_000), None, "rate needs two samples");
        assert_eq!(one.mean(1_000), Some(7.0));
        assert_eq!(one.ewma(0.5), Some(7.0));
    }

    #[test]
    fn rate_is_delta_over_window_seconds() {
        // A counter climbing 10 per second, sampled once a second.
        let series = series_of(&[(0, 0.0), (1_000_000, 10.0), (2_000_000, 20.0)]);
        assert_eq!(series.rate(u64::MAX), Some(10.0));
        // A 1s window keeps only the last two samples.
        assert_eq!(series.rate(1_000_000), Some(10.0));
        // Zero-width window: one sample, no rate.
        assert_eq!(series.rate(0), None);
    }

    #[test]
    fn windowed_mean_ignores_old_samples() {
        let series = series_of(&[(0, 100.0), (9_000_000, 2.0), (10_000_000, 4.0)]);
        assert_eq!(series.mean(1_000_000), Some(3.0));
        assert_eq!(series.mean(u64::MAX), Some(106.0 / 3.0));
    }

    #[test]
    fn ewma_weights_recent_samples() {
        let series = series_of(&[(0, 0.0), (1, 0.0), (2, 8.0)]);
        assert_eq!(series.ewma(0.5), Some(4.0));
        assert_eq!(series.ewma(1.0), Some(8.0), "alpha 1 is just the last value");
    }

    #[test]
    fn sampler_maps_metric_kinds_to_series() {
        let registry = Registry::new();
        registry.counter("serve.executed").add(3);
        registry.gauge("sweep.queue_depth").set(5);
        registry.histogram("sweep.job_wall_us").record(100);

        let mut sampler = Sampler::new(&registry, 8);
        sampler.tick_at(1_000);
        registry.counter("serve.executed").add(2);
        registry.histogram("sweep.job_wall_us").record(300);
        sampler.tick_at(2_000);

        let executed = sampler.get("serve.executed").unwrap();
        let values: Vec<f64> = executed.iter().map(|s| s.value).collect();
        assert_eq!(values, [3.0, 5.0]);
        assert_eq!(sampler.get("sweep.queue_depth").unwrap().last().unwrap().value, 5.0);
        let count = sampler.get("sweep.job_wall_us.count").unwrap();
        assert_eq!(count.last().unwrap().value, 2.0);
        assert!(sampler.get("sweep.job_wall_us.p95").is_some());
    }

    #[test]
    fn sampler_histogram_mean_is_per_tick_delta_exact() {
        let registry = Registry::new();
        let hist = registry.histogram("lat");
        let mut sampler = Sampler::new(&registry, 8);

        hist.record(10);
        hist.record(20);
        sampler.tick_at(1);
        // Mean of the first tick's absorbed delta: (10+20)/2.
        assert_eq!(sampler.get("lat.mean").unwrap().last().unwrap().value, 15.0);

        hist.record(100);
        sampler.tick_at(2);
        // Only the new sample counts, not the lifetime mean (130/3).
        assert_eq!(sampler.get("lat.mean").unwrap().last().unwrap().value, 100.0);

        // A tick with nothing new absorbs nothing and reports 0.
        sampler.tick_at(3);
        assert_eq!(sampler.get("lat.mean").unwrap().last().unwrap().value, 0.0);
    }

    #[test]
    fn export_and_parse_round_trip() {
        let registry = Registry::new();
        registry.counter("c").add(4);
        let mut sampler = Sampler::new(&registry, 4);
        sampler.tick_at(10);
        registry.counter("c").inc();
        sampler.tick_at(20);

        let mut doc = Document::new("metrics", "rt");
        sampler.export_into(&mut doc);
        let json_text = doc.to_json();
        let value = json::parse(&json_text).expect("exported series must parse");
        let objects = value.section("series");
        assert_eq!(objects.len(), 1);
        let (name, samples) = parse_series_object(&objects[0]).expect("series object shape");
        assert_eq!(name, "c");
        assert_eq!(samples, [Sample { t_us: 10, value: 4.0 }, Sample { t_us: 20, value: 5.0 }]);

        // Seeding a fresh sampler from the parsed samples replays them.
        let mut replayed = Sampler::new(&Registry::new(), 4);
        replayed.seed(&name, samples);
        assert_eq!(replayed.get("c").unwrap().len(), 2);
        assert_eq!(replayed.get("c").unwrap().last().unwrap().value, 5.0);
    }

    #[test]
    fn text_exposition_is_one_line_per_series() {
        let registry = Registry::new();
        registry.gauge("depth").set(-2);
        let mut sampler = Sampler::new(&registry, 4);
        sampler.tick_at(5);
        sampler.tick_at(6);
        assert_eq!(sampler.to_text(), "series depth 5:-2 6:-2\n");
    }
}
