//! Relaxed-atomic scalar metrics.
//!
//! Both types are plain atomics with `Relaxed` ordering everywhere:
//! they are written on hot paths (the memory-controller service loop
//! records one per request) and must compile to a bare `lock xadd` /
//! `lock xchg`, never a mutex. Readers get a point-in-time value with
//! no cross-metric consistency guarantee, which is all an exposition
//! endpoint needs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, in-flight jobs).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.add(1);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn counter_is_safe_under_scoped_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
