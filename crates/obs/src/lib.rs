//! `dlk-obs` — zero-dependency observability for the DRAM-Locker stack.
//!
//! Everything the simulator's layers need to report what they are
//! doing at runtime, with nothing the hot path can't afford:
//!
//! - [`Counter`] / [`Gauge`]: relaxed-atomic scalars (a bare
//!   `fetch_add` on the record path — safe inside the memory
//!   controller's per-request service loop).
//! - [`Histogram`]: a 65-bucket log2 histogram with lock-free
//!   [`Histogram::record`], online [`Histogram::merge`] (the streaming
//!   aggregation primitive fleet-level simulation needs), and
//!   `p50/p95/p99/max` estimates accurate to one power of two.
//!   [`LocalHistogram`] is its non-atomic single-owner twin for
//!   `&mut self` hot paths, flushed via [`Histogram::absorb`] deltas.
//! - [`Span`]: an RAII wall-clock timer feeding a histogram, plus
//!   [`SpanRecorder`]/[`SpanTree`] for the `dlk run --trace` span tree.
//! - [`TimeSeries`] / [`Sampler`]: the temporal layer — a
//!   fixed-capacity ring of timestamped samples with windowed
//!   `rate()`/`mean()`/EWMA, filled by snapshotting a registry on a
//!   caller-driven tick (histogram deltas absorbed per tick), so
//!   "what happened over the last N seconds" costs O(capacity) no
//!   matter how long the daemon runs. `dlk serve` heartbeats and
//!   `dlk top` render these.
//! - [`Registry`]: a clonable name → metric table with plain-text and
//!   schema-v2 JSON exposition ([`Registry::write_json`] is atomic,
//!   tmp + rename, the same discipline as the serve daemon's
//!   `results.csv`).
//! - [`json`]: the shared hand-written JSON writer/validator used by
//!   both registry dumps (`metrics.json`) and the `BENCH_*.json`
//!   snapshot trajectory in `dlk-bench`.
//!
//! The crate depends on `std` only, by construction: every other crate
//! in the workspace (including `dlk-memctrl` underneath the uISA hot
//! path) can pull it in without dragging anything else along.

pub mod hist;
pub mod json;
pub mod metric;
pub mod registry;
pub mod series;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot, LocalHistogram, Span};
pub use metric::{Counter, Gauge};
pub use registry::{Metric, Registry};
pub use series::{Sample, Sampler, TimeSeries};
pub use span::{SpanId, SpanRecorder, SpanTree};
