//! Hierarchical span traces for `dlk run --trace`.
//!
//! A [`SpanRecorder`] builds a tree of named wall-clock spans, each
//! optionally annotated with a simulated-cycle count, and renders it
//! as an indented tree with per-span wall time and percent-of-parent
//! attribution. This is single-threaded by design: it traces one
//! scenario run from the CLI, not the concurrent sweep path (that is
//! what the registry histograms are for).

use std::fmt;
use std::time::{Duration, Instant};

/// Handle to an open (or closed) span inside a [`SpanRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug)]
struct Node {
    name: String,
    parent: Option<usize>,
    start: Instant,
    wall: Option<Duration>,
    cycles: Option<u64>,
    children: Vec<usize>,
}

/// Records a tree of timed spans.
#[derive(Debug)]
pub struct SpanRecorder {
    nodes: Vec<Node>,
    stack: Vec<usize>,
}

impl SpanRecorder {
    /// Starts recording with an open root span.
    pub fn new(root: impl Into<String>) -> Self {
        let root = Node {
            name: root.into(),
            parent: None,
            start: Instant::now(),
            wall: None,
            cycles: None,
            children: Vec::new(),
        };
        Self { nodes: vec![root], stack: vec![0] }
    }

    /// Opens a child span under the innermost open span.
    pub fn enter(&mut self, name: impl Into<String>) -> SpanId {
        let parent = *self.stack.last().expect("root span is always open");
        let id = self.nodes.len();
        self.nodes.push(Node {
            name: name.into(),
            parent: Some(parent),
            start: Instant::now(),
            wall: None,
            cycles: None,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        self.stack.push(id);
        SpanId(id)
    }

    /// Closes `span` (and any still-open spans nested inside it),
    /// freezing its wall time.
    pub fn exit(&mut self, span: SpanId) {
        while let Some(&top) = self.stack.last() {
            if top == 0 {
                break; // the root closes only in `finish`
            }
            self.stack.pop();
            let node = &mut self.nodes[top];
            if node.wall.is_none() {
                node.wall = Some(node.start.elapsed());
            }
            if top == span.0 {
                break;
            }
        }
    }

    /// Attaches a simulated-cycle count to a span (open or closed).
    pub fn cycles(&mut self, span: SpanId, cycles: u64) {
        self.nodes[span.0].cycles = Some(cycles);
    }

    /// Closes everything still open (including the root) and returns
    /// the finished tree.
    pub fn finish(mut self) -> SpanTree {
        while let Some(top) = self.stack.pop() {
            let node = &mut self.nodes[top];
            if node.wall.is_none() {
                node.wall = Some(node.start.elapsed());
            }
        }
        SpanTree { nodes: self.nodes }
    }
}

/// A finished span tree; `Display` renders the indented trace.
#[derive(Debug)]
pub struct SpanTree {
    nodes: Vec<Node>,
}

impl SpanTree {
    /// Wall time of the root span.
    pub fn root_wall(&self) -> Duration {
        self.nodes[0].wall.unwrap_or_default()
    }

    /// Number of spans in the tree (root included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is only the root span.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn render(
        &self,
        out: &mut fmt::Formatter<'_>,
        id: usize,
        prefix: &str,
        last: bool,
    ) -> fmt::Result {
        let node = &self.nodes[id];
        let wall = node.wall.unwrap_or_default();
        let (branch, child_prefix) = if node.parent.is_none() {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let label = format!("{branch}{}", node.name);
        write!(out, "{label:<40} {:>10}", format_wall(wall))?;
        if let Some(parent) = node.parent {
            let parent_wall = self.nodes[parent].wall.unwrap_or_default();
            if parent_wall > Duration::ZERO {
                let pct = 100.0 * wall.as_secs_f64() / parent_wall.as_secs_f64();
                write!(out, " {pct:>5.1}%")?;
            }
        }
        if let Some(cycles) = node.cycles {
            write!(out, "  [{cycles} cycles]")?;
        }
        writeln!(out)?;
        for (at, &child) in node.children.iter().enumerate() {
            self.render(out, child, &child_prefix, at + 1 == node.children.len())?;
        }
        Ok(())
    }
}

impl fmt::Display for SpanTree {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(out, 0, "", true)
    }
}

fn format_wall(wall: Duration) -> String {
    let nanos = wall.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", wall.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_structure_and_render() {
        let mut rec = SpanRecorder::new("root");
        let a = rec.enter("build");
        rec.exit(a);
        let b = rec.enter("run");
        let c = rec.enter("attack");
        rec.cycles(c, 1234);
        rec.exit(c);
        rec.exit(b);
        let tree = rec.finish();
        assert_eq!(tree.len(), 4);
        let rendered = format!("{tree}");
        assert!(rendered.contains("root"), "{rendered}");
        assert!(rendered.contains("├─ build"), "{rendered}");
        assert!(rendered.contains("└─ run"), "{rendered}");
        assert!(rendered.contains("└─ attack"), "{rendered}");
        assert!(rendered.contains("[1234 cycles]"), "{rendered}");
        assert!(rendered.contains('%'), "{rendered}");
    }

    #[test]
    fn exit_closes_nested_open_spans() {
        let mut rec = SpanRecorder::new("root");
        let outer = rec.enter("outer");
        let _inner = rec.enter("inner"); // never explicitly exited
        rec.exit(outer);
        let next = rec.enter("sibling");
        rec.exit(next);
        let tree = rec.finish();
        // `sibling` must be a child of root, not of `inner`.
        let rendered = format!("{tree}");
        assert!(rendered.contains("└─ sibling"), "{rendered}");
    }

    #[test]
    fn finish_closes_the_root() {
        let rec = SpanRecorder::new("root");
        let tree = rec.finish();
        assert!(tree.is_empty());
        assert!(tree.root_wall() >= Duration::ZERO);
    }

    #[test]
    fn wall_formatting_scales() {
        assert_eq!(format_wall(Duration::from_nanos(5)), "5ns");
        assert_eq!(format_wall(Duration::from_micros(5)), "5.00us");
        assert_eq!(format_wall(Duration::from_millis(5)), "5.00ms");
        assert_eq!(format_wall(Duration::from_secs(5)), "5.00s");
    }
}
