//! Workload generators: parameterized request patterns materialized as
//! [`Trace`]s.
//!
//! These are the synthetic workloads the evaluation replays through the
//! sharded engine — streaming reads (inference-like), strided scans,
//! dependent pointer chases (the worst case for row-buffer locality),
//! attacker hammer loops, and multi-tenant interleaves of any of the
//! above. All generators are deterministic: the same spec (and seed)
//! always yields the same trace, so replay results are reproducible.

use dlk_memctrl::Trace;

/// A deterministic workload specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// `count` sequential reads of `len` bytes from `base` — streaming
    /// traffic (e.g. a weight image scan).
    Sequential {
        /// First byte address.
        base: u64,
        /// Bytes per read.
        len: usize,
        /// Number of reads.
        count: usize,
    },
    /// `count` reads of `len` bytes advancing `stride` bytes per
    /// access — column scans, tensor slices.
    Strided {
        /// First byte address.
        base: u64,
        /// Address increment per access.
        stride: u64,
        /// Bytes per read.
        len: usize,
        /// Number of reads.
        count: usize,
    },
    /// `count` dependent single-`len` reads whose addresses chain
    /// through a deterministic mix of the previous address — a pointer
    /// chase over `[base, base + span)`, the worst case for row-buffer
    /// locality. Addresses are aligned to `len`, so no access spans a
    /// row when `len` divides the row size.
    PointerChase {
        /// Region start (should be `len`-aligned).
        base: u64,
        /// Region size in bytes.
        span: u64,
        /// Bytes per read.
        len: usize,
        /// Number of reads.
        count: usize,
        /// Chain seed.
        seed: u64,
    },
    /// The classic attacker loop: `iterations` alternating untrusted
    /// reads of two addresses (same bank, different rows, to force an
    /// activation per access).
    HammerLoop {
        /// First aggressor address.
        addr_a: u64,
        /// Second aggressor address.
        addr_b: u64,
        /// Alternation count (two reads each).
        iterations: usize,
    },
}

impl Workload {
    /// Materializes the workload as a replayable trace.
    pub fn trace(&self) -> Trace {
        match *self {
            Workload::Sequential { base, len, count } => {
                Trace::sequential_reads(base, len as u64, len, count)
            }
            Workload::Strided { base, stride, len, count } => {
                Trace::sequential_reads(base, stride, len, count)
            }
            Workload::PointerChase { base, span, len, count, seed } => {
                let len = len.max(1);
                let slots = (span / len as u64).max(1);
                let mut state = seed;
                (0..count)
                    .map(|_| {
                        state = splitmix64(state);
                        let addr = base + (state % slots) * len as u64;
                        dlk_memctrl::TraceOp::Read { addr, len }
                    })
                    .collect()
            }
            Workload::HammerLoop { addr_a, addr_b, iterations } => {
                Trace::hammer_pair(addr_a, addr_b, iterations)
            }
        }
    }

    /// Materializes several tenants' workloads and interleaves them
    /// round-robin into one multi-tenant trace (each tenant's internal
    /// order preserved).
    pub fn multi_tenant(tenants: &[Workload]) -> Trace {
        let traces: Vec<Trace> = tenants.iter().map(Workload::trace).collect();
        Trace::interleave(&traces)
    }
}

/// splitmix64 — the same deterministic mixer the disturbance model
/// uses for unplanned flip bits.
fn splitmix64(state: u64) -> u64 {
    let mut x = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_memctrl::TraceOp;

    #[test]
    fn sequential_is_stride_of_len() {
        let trace = Workload::Sequential { base: 100, len: 4, count: 3 }.trace();
        assert_eq!(
            trace.ops(),
            &[
                TraceOp::Read { addr: 100, len: 4 },
                TraceOp::Read { addr: 104, len: 4 },
                TraceOp::Read { addr: 108, len: 4 },
            ]
        );
    }

    #[test]
    fn strided_advances_by_stride() {
        let trace = Workload::Strided { base: 0, stride: 64, len: 2, count: 3 }.trace();
        let addrs: Vec<u64> = trace
            .ops()
            .iter()
            .map(|op| match op {
                TraceOp::Read { addr, .. } => *addr,
                TraceOp::Write { addr, .. } => *addr,
            })
            .collect();
        assert_eq!(addrs, vec![0, 64, 128]);
    }

    #[test]
    fn pointer_chase_is_deterministic_aligned_and_in_bounds() {
        let spec = Workload::PointerChase { base: 256, span: 1024, len: 8, count: 50, seed: 7 };
        let a = spec.trace();
        assert_eq!(a, spec.trace(), "same seed, same chase");
        let mut distinct = std::collections::HashSet::new();
        for op in a.ops() {
            let TraceOp::Read { addr, len } = op else { panic!("chase only reads") };
            assert!(*addr >= 256 && *addr + *len as u64 <= 256 + 1024);
            assert_eq!(addr % 8, 0, "aligned to len");
            distinct.insert(*addr);
        }
        assert!(distinct.len() > 10, "chase wanders: {} distinct addrs", distinct.len());
        let b = Workload::PointerChase { base: 256, span: 1024, len: 8, count: 50, seed: 8 };
        assert_ne!(a, b.trace(), "different seed, different chase");
    }

    #[test]
    fn hammer_loop_is_untrusted() {
        let trace = Workload::HammerLoop { addr_a: 0, addr_b: 128, iterations: 3 }.trace();
        assert_eq!(trace.len(), 6);
        assert!(trace.untrusted);
    }

    #[test]
    fn multi_tenant_interleaves_round_robin() {
        let mix = Workload::multi_tenant(&[
            Workload::Sequential { base: 0, len: 1, count: 2 },
            Workload::Sequential { base: 1000, len: 1, count: 2 },
        ]);
        let addrs: Vec<u64> = mix
            .ops()
            .iter()
            .map(|op| match op {
                TraceOp::Read { addr, .. } => *addr,
                TraceOp::Write { addr, .. } => *addr,
            })
            .collect();
        assert_eq!(addrs, vec![0, 1000, 1, 1001]);
    }
}
