//! # dlk-engine — sharded multi-channel execution with trace replay
//!
//! The execution layer between the Scenario API and the memory
//! controller: one [`ChannelShard`] per DRAM channel (its own
//! [`MemoryController`](dlk_memctrl::MemoryController), device and
//! mounted defense chain), a [`ChannelRouter`] distributing global
//! physical addresses across shards at row granularity, and a
//! [`ShardedEngine`] that steps all shards — serially in channel order,
//! or in parallel on scoped threads — and merges statistics,
//! completions and flip outcomes deterministically.
//!
//! ```text
//!                    ┌────────────────────────────┐
//!   MemRequest ────► │ ChannelRouter (row % n)    │
//!                    └─────┬──────┬──────┬────────┘
//!                      ch0 ▼  ch1 ▼  ch2 ▼   …      one scoped thread each
//!                    ┌───────┐┌───────┐┌───────┐
//!                    │ Shard ││ Shard ││ Shard │     controller + device
//!                    │  + hook chain per channel │   + lock-table slice
//!                    └─────┬──────┬──────┬──────┘
//!                          ▼      ▼      ▼
//!                     deterministic merge (channel-id order)
//! ```
//!
//! **Determinism guarantee.** Shards share no state, and every merge —
//! [`DrainOutcome::merged`], [`EngineSnapshot`], error selection — is
//! performed in channel-id order. A [`sharded`](EngineConfig::sharded)
//! run is therefore bit-identical to its
//! [`serial_reference`](EngineConfig::serial_reference); threads change
//! wall-clock time only.
//!
//! The replay frontend feeds recorded or generated [`Trace`]s through
//! the router: [`Workload`] generates the synthetic patterns
//! (sequential, strided, pointer-chase, hammer loop, multi-tenant
//! interleave), [`TraceReplay`] streams any trace — including one
//! parsed from a trace file via
//! [`Trace::from_text`](dlk_memctrl::Trace::from_text).
//!
//! ```
//! use dlk_engine::{EngineConfig, ShardedEngine, TraceReplay, Workload};
//! use dlk_memctrl::MemCtrlConfig;
//!
//! # fn main() -> Result<(), dlk_engine::EngineError> {
//! let mut engine =
//!     ShardedEngine::new(EngineConfig::sharded(2), MemCtrlConfig::tiny_for_tests())?;
//! let trace = Workload::Sequential { base: 0, len: 8, count: 64 }.trace();
//! let outcome = engine.replay(TraceReplay::new(&trace))?;
//! assert_eq!(outcome.len(), 64);
//! // Row interleaving spread the stream over both shards.
//! assert!(engine.snapshot().per_channel.iter().all(|s| s.served > 0));
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod engine;
pub mod error;
pub mod replay;
pub mod route;
pub mod shard;
pub mod workload;

pub use crate::config::EngineConfig;
pub use crate::engine::{DrainOutcome, EngineMetrics, EngineSnapshot, ShardedEngine};
pub use crate::error::EngineError;
pub use crate::replay::{ChainedReplay, ReplaySource, TraceReplay};
pub use crate::route::ChannelRouter;
pub use crate::shard::ChannelShard;
pub use crate::workload::Workload;

pub use dlk_memctrl::Trace;
