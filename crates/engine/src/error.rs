//! Error type for the sharded execution engine.

use std::error::Error;
use std::fmt;

use dlk_memctrl::MemCtrlError;

/// Errors returned by the sharded execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The engine was configured with zero channels.
    NoChannels,
    /// A channel index outside the configured shard count.
    BadChannel {
        /// The offending channel index.
        channel: usize,
        /// The configured channel count.
        channels: usize,
    },
    /// A shard's controller has a different geometry or mapping than
    /// channel 0's — the router's interleave math would silently
    /// misroute on heterogeneous shards.
    GeometryMismatch {
        /// The first non-matching channel.
        channel: usize,
    },
    /// A shard's controller rejected a request. When several shards
    /// fail in one parallel drain, the lowest channel id is reported —
    /// the same one a serial run would report.
    Shard {
        /// The failing shard's channel id.
        channel: usize,
        /// The controller error.
        source: MemCtrlError,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoChannels => write!(f, "engine needs at least one channel"),
            EngineError::BadChannel { channel, channels } => {
                write!(f, "channel {channel} out of range ({channels} channels)")
            }
            EngineError::GeometryMismatch { channel } => {
                write!(
                    f,
                    "channel {channel}'s controller differs in geometry/mapping from channel 0"
                )
            }
            EngineError::Shard { channel, source } => {
                write!(f, "channel {channel}: {source}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Shard { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_channel() {
        let err = EngineError::Shard {
            channel: 3,
            source: MemCtrlError::AddressOutOfRange { addr: 16, capacity: 8 },
        };
        assert!(err.to_string().starts_with("channel 3:"));
        assert!(Error::source(&err).is_some());
        assert!(EngineError::NoChannels.to_string().contains("at least one"));
    }
}
