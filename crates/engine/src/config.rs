//! Engine configuration.

use serde::{Deserialize, Serialize};

/// How many channel shards an engine runs and whether it steps them on
/// threads.
///
/// The execution model guarantees that `parallel` never changes
/// results: shards share no state, and every merge (stats, completions,
/// reports) is performed in channel-id order. `parallel: true` only
/// changes wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of DRAM channels, each backed by its own shard
    /// (controller + device + mounted defense chain).
    pub channels: usize,
    /// Step shards on scoped threads (`true`) or one after another in
    /// channel order (`false`).
    pub parallel: bool,
}

impl EngineConfig {
    /// The classic single-controller pipeline: one channel, no threads.
    pub fn serial() -> Self {
        Self { channels: 1, parallel: false }
    }

    /// `channels` shards stepped in parallel on scoped threads.
    pub fn sharded(channels: usize) -> Self {
        Self { channels, parallel: true }
    }

    /// `channels` shards stepped serially in channel order — the
    /// bit-identical reference for a [`sharded`](EngineConfig::sharded)
    /// run of the same width.
    pub fn serial_reference(channels: usize) -> Self {
        Self { channels, parallel: false }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::serial()
    }
}

/// The canonical one-token form used by spec files: `serial`,
/// `sharded(n)` or `serial-ref(n)`.
impl std::fmt::Display for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.channels, self.parallel) {
            (1, false) => write!(f, "serial"),
            (n, true) => write!(f, "sharded({n})"),
            (n, false) => write!(f, "serial-ref({n})"),
        }
    }
}

/// Parses the [`Display`](EngineConfig#impl-Display-for-EngineConfig)
/// form. The error carries the offending token.
impl std::str::FromStr for EngineConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("bad engine config '{s}' (serial | sharded(n) | serial-ref(n))");
        if s == "serial" {
            return Ok(Self::serial());
        }
        let channels = |prefix: &str| -> Option<usize> {
            s.strip_prefix(prefix)?.strip_suffix(')')?.parse().ok().filter(|&n| n > 0)
        };
        if let Some(n) = channels("sharded(") {
            return Ok(Self::sharded(n));
        }
        if let Some(n) = channels("serial-ref(") {
            return Ok(Self::serial_reference(n));
        }
        Err(bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_every_shape() {
        for config in [
            EngineConfig::serial(),
            EngineConfig::sharded(1),
            EngineConfig::sharded(4),
            EngineConfig::serial_reference(4),
        ] {
            let token = config.to_string();
            assert_eq!(token.parse::<EngineConfig>().unwrap(), config, "{token}");
        }
        assert_eq!(EngineConfig::serial().to_string(), "serial");
        assert_eq!(EngineConfig::sharded(4).to_string(), "sharded(4)");
        assert_eq!(EngineConfig::serial_reference(4).to_string(), "serial-ref(4)");
        assert!("sharded(0)".parse::<EngineConfig>().is_err());
        assert!("sharded(2".parse::<EngineConfig>().is_err());
        assert!("threads(2)".parse::<EngineConfig>().is_err());
    }

    #[test]
    fn constructors_set_parallelism() {
        assert_eq!(EngineConfig::default(), EngineConfig { channels: 1, parallel: false });
        assert_eq!(EngineConfig::sharded(4), EngineConfig { channels: 4, parallel: true });
        assert_eq!(
            EngineConfig::serial_reference(4),
            EngineConfig { channels: 4, parallel: false }
        );
    }
}
