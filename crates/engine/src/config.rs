//! Engine configuration.

use serde::{Deserialize, Serialize};

/// How many channel shards an engine runs and whether it steps them on
/// threads.
///
/// The execution model guarantees that `parallel` never changes
/// results: shards share no state, and every merge (stats, completions,
/// reports) is performed in channel-id order. `parallel: true` only
/// changes wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of DRAM channels, each backed by its own shard
    /// (controller + device + mounted defense chain).
    pub channels: usize,
    /// Step shards on scoped threads (`true`) or one after another in
    /// channel order (`false`).
    pub parallel: bool,
}

impl EngineConfig {
    /// The classic single-controller pipeline: one channel, no threads.
    pub fn serial() -> Self {
        Self { channels: 1, parallel: false }
    }

    /// `channels` shards stepped in parallel on scoped threads.
    pub fn sharded(channels: usize) -> Self {
        Self { channels, parallel: true }
    }

    /// `channels` shards stepped serially in channel order — the
    /// bit-identical reference for a [`sharded`](EngineConfig::sharded)
    /// run of the same width.
    pub fn serial_reference(channels: usize) -> Self {
        Self { channels, parallel: false }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_parallelism() {
        assert_eq!(EngineConfig::default(), EngineConfig { channels: 1, parallel: false });
        assert_eq!(EngineConfig::sharded(4), EngineConfig { channels: 4, parallel: true });
        assert_eq!(
            EngineConfig::serial_reference(4),
            EngineConfig { channels: 4, parallel: false }
        );
    }
}
