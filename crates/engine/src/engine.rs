//! The sharded multi-channel execution engine.

use std::sync::Arc;

use dlk_dram::DramStats;
use dlk_memctrl::{CompletedRequest, ControllerStats, MemCtrlConfig, MemRequest, MemoryController};
use dlk_obs::{Counter, Histogram, Registry};

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::replay::ReplaySource;
use crate::route::ChannelRouter;
use crate::shard::ChannelShard;

/// Completions drained from every shard, kept per channel so the merge
/// order is explicit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrainOutcome {
    /// Each channel's completions in its own scheduling order, indexed
    /// by channel id.
    pub per_channel: Vec<Vec<CompletedRequest>>,
}

impl DrainOutcome {
    /// All completions concatenated in channel-id order — the
    /// deterministic merged view.
    pub fn merged(&self) -> Vec<CompletedRequest> {
        self.per_channel.iter().flatten().cloned().collect()
    }

    /// Total completions across channels.
    pub fn len(&self) -> usize {
        self.per_channel.iter().map(Vec::len).sum()
    }

    /// `true` when no shard completed anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Completions the defense denied, across channels.
    pub fn denied(&self) -> u64 {
        self.per_channel.iter().flatten().filter(|done| done.denied).count() as u64
    }
}

/// A deterministic, mergeable snapshot of the whole engine's state —
/// per-channel controller statistics plus device-level cost and flip
/// outcomes, merged in channel-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Channel count.
    pub channels: usize,
    /// Controller statistics merged across channels.
    pub controller: ControllerStats,
    /// Each channel's controller statistics, indexed by channel id.
    pub per_channel: Vec<ControllerStats>,
    /// Wall-clock device cycles: the maximum over channels (channels
    /// run concurrently in hardware).
    pub cycles: u64,
    /// Total DRAM energy in picojoules, summed in channel order.
    pub energy_pj: f64,
    /// Total disturbance events across channels.
    pub disturbances: u64,
    /// Total bit flips across channels.
    pub bit_flips: u64,
}

/// Engine-level observability handles: wall time per shard drain and
/// per merge. The engine always owns a bundle (private by default) so
/// the drain path records unconditionally; [`ShardedEngine::observe`]
/// swaps in registry-backed handles. The drain path is not hot —
/// a handful of samples per run — so shared atomics are fine here,
/// unlike the controller's per-request `CtrlMetrics`, which records
/// locally and exports deltas.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Wall nanoseconds one shard spent draining its queue (one sample
    /// per shard per drain — the per-channel step-time distribution).
    pub drain_wall_ns: Arc<Histogram>,
    /// Wall nanoseconds spent assembling the channel-ordered merge of
    /// a drain's completions.
    pub merge_wall_ns: Arc<Histogram>,
    /// Shard drains performed.
    pub drains: Arc<Counter>,
}

impl EngineMetrics {
    /// A private, unregistered bundle.
    pub fn unregistered() -> Self {
        Self {
            drain_wall_ns: Arc::new(Histogram::new()),
            merge_wall_ns: Arc::new(Histogram::new()),
            drains: Arc::new(Counter::new()),
        }
    }

    /// A bundle registered in `registry` under `<prefix>.*`.
    pub fn registered(registry: &Registry, prefix: &str) -> Self {
        Self {
            drain_wall_ns: registry.histogram(&format!("{prefix}.drain_wall_ns")),
            merge_wall_ns: registry.histogram(&format!("{prefix}.merge_wall_ns")),
            drains: registry.counter(&format!("{prefix}.drains")),
        }
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::unregistered()
    }
}

/// The sharded multi-channel execution engine: one [`ChannelShard`] per
/// DRAM channel, a [`ChannelRouter`] in front, and a deterministic
/// merge behind.
///
/// Global requests are routed to their home shard, shards are stepped
/// either serially in channel order or in parallel on scoped threads
/// (per [`EngineConfig`]), and every observable result — completions,
/// statistics, errors — is merged in channel-id order, so a parallel
/// run is bit-identical to its serial reference.
///
/// # Example
///
/// ```
/// use dlk_engine::{EngineConfig, ShardedEngine};
/// use dlk_memctrl::{MemCtrlConfig, MemRequest};
///
/// # fn main() -> Result<(), dlk_engine::EngineError> {
/// let mut engine = ShardedEngine::new(EngineConfig::sharded(2), MemCtrlConfig::tiny_for_tests())?;
/// engine.submit(MemRequest::write(0, vec![42]));
/// engine.submit(MemRequest::read(0, 1));
/// let outcome = engine.run_to_completion()?;
/// assert_eq!(outcome.merged()[1].data.as_deref(), Some(&[42u8][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    config: EngineConfig,
    router: ChannelRouter,
    shards: Vec<ChannelShard>,
    metrics: EngineMetrics,
    obs: Option<Registry>,
}

impl ShardedEngine {
    /// Creates an engine whose shards are identical controllers built
    /// from `ctrl_config` (one per-channel device each).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoChannels`] for a zero channel count.
    pub fn new(config: EngineConfig, ctrl_config: MemCtrlConfig) -> Result<Self, EngineError> {
        Self::with_controllers(config, |_| MemoryController::new(ctrl_config))
    }

    /// Creates an engine from per-channel controllers (differently
    /// configured hooks are fine; geometry and mapping must match).
    /// The router is derived from channel 0's mapper.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoChannels`] for a zero channel count and
    /// [`EngineError::GeometryMismatch`] when a controller's geometry
    /// or mapping scheme differs from channel 0's (the router's
    /// interleave math would silently misroute otherwise).
    pub fn with_controllers(
        config: EngineConfig,
        mut make: impl FnMut(usize) -> MemoryController,
    ) -> Result<Self, EngineError> {
        if config.channels == 0 {
            return Err(EngineError::NoChannels);
        }
        let shards: Vec<ChannelShard> =
            (0..config.channels).map(|channel| ChannelShard::new(channel, make(channel))).collect();
        let reference = shards[0].controller().mapper();
        if let Some(shard) = shards.iter().find(|shard| shard.controller().mapper() != reference) {
            return Err(EngineError::GeometryMismatch { channel: shard.channel() });
        }
        let router = ChannelRouter::new(config.channels, shards[0].controller().mapper());
        Ok(Self { config, router, shards, metrics: EngineMetrics::unregistered(), obs: None })
    }

    /// Wires the engine into a shared observability registry: engine
    /// drain/merge timings register under `engine.*`, and from now on
    /// every drain exports each shard controller's locally recorded
    /// metrics into the shared `memctrl.*` names (deltas only, so
    /// per-channel activity aggregates into a single fleet-wide view
    /// without touching the controllers' hot path). Controller metrics
    /// recorded before this call are included in the first export.
    pub fn observe(&mut self, registry: &Registry) {
        self.metrics = EngineMetrics::registered(registry, "engine");
        self.obs = Some(registry.clone());
        self.export_obs();
    }

    /// Folds every shard controller's locally recorded metrics into
    /// the observed registry under `memctrl.*`. Delta-based — safe to
    /// call at any boundary, and a no-op when [`Self::observe`] was
    /// never called. [`Self::run_to_completion`] calls this after each
    /// drain, so callers stepping controllers directly (per-request
    /// drivers) are the only ones who need it explicitly.
    pub fn export_obs(&mut self) {
        if let Some(registry) = self.obs.clone() {
            for shard in &mut self.shards {
                shard.controller_mut().export_obs(&registry, "memctrl");
            }
        }
    }

    /// The engine-level metrics bundle.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The global-address router.
    pub fn router(&self) -> &ChannelRouter {
        &self.router
    }

    /// Number of channel shards.
    pub fn channels(&self) -> usize {
        self.shards.len()
    }

    /// All shards, in channel order.
    pub fn shards(&self) -> &[ChannelShard] {
        &self.shards
    }

    /// One shard by channel id.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn shard(&self, channel: usize) -> &ChannelShard {
        &self.shards[channel]
    }

    /// Mutable access to one shard by channel id.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn shard_mut(&mut self, channel: usize) -> &mut ChannelShard {
        &mut self.shards[channel]
    }

    /// Channel 0's shard — the home of every single-channel scenario.
    pub fn primary(&self) -> &ChannelShard {
        &self.shards[0]
    }

    /// Mutable access to channel 0's shard.
    pub fn primary_mut(&mut self) -> &mut ChannelShard {
        &mut self.shards[0]
    }

    /// Total queued requests across shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(ChannelShard::pending).sum()
    }

    /// Routes a global request to its home shard's queue and returns
    /// the channel it landed on.
    pub fn submit(&mut self, request: MemRequest) -> usize {
        let (channel, request) = self.route(request);
        self.shards[channel].submit(request);
        channel
    }

    /// Routes and serves one global request immediately, bypassing the
    /// queues.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Shard`] tagged with the home channel.
    pub fn service(&mut self, request: MemRequest) -> Result<CompletedRequest, EngineError> {
        let (channel, request) = self.route(request);
        self.shards[channel].service(request)
    }

    fn route(&self, mut request: MemRequest) -> (usize, MemRequest) {
        let (channel, local) = self.router.to_local(request.addr);
        request.addr = local;
        (channel, request)
    }

    /// Drains every shard's queue — on scoped threads when the
    /// configuration says `parallel`, in channel order otherwise. Both
    /// modes drain *all* shards and report the lowest failing channel,
    /// so results (and errors) are independent of the stepping mode.
    ///
    /// # Errors
    ///
    /// Returns the first failing channel's error (by channel id).
    pub fn run_to_completion(&mut self) -> Result<DrainOutcome, EngineError> {
        let metrics = &self.metrics;
        let drain_timed = |shard: &mut ChannelShard| {
            let span = metrics.drain_wall_ns.span();
            let result = shard.drain();
            span.finish();
            metrics.drains.inc();
            result
        };
        let results: Vec<Result<Vec<CompletedRequest>, EngineError>> =
            if self.config.parallel && self.shards.len() > 1 {
                let drain_timed = &drain_timed;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .map(|shard| scope.spawn(move || drain_timed(shard)))
                        .collect();
                    // Joining in spawn order keeps the result vector in
                    // channel order regardless of completion order.
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("shard thread panicked"))
                        .collect()
                })
            } else {
                self.shards.iter_mut().map(drain_timed).collect()
            };
        let merge_span = self.metrics.merge_wall_ns.span();
        let mut outcome = DrainOutcome { per_channel: Vec::with_capacity(results.len()) };
        let mut first_error = None;
        for result in results {
            match result {
                Ok(completions) => outcome.per_channel.push(completions),
                Err(err) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                    outcome.per_channel.push(Vec::new());
                }
            }
        }
        merge_span.finish();
        self.export_obs();
        match first_error {
            Some(err) => Err(err),
            None => Ok(outcome),
        }
    }

    /// Feeds a replay source through the router (global addresses) and
    /// drains all shards. Routing is a cheap serial pass; execution
    /// follows the configured stepping mode.
    ///
    /// # Errors
    ///
    /// Returns the first failing channel's error (by channel id).
    pub fn replay(&mut self, mut source: impl ReplaySource) -> Result<DrainOutcome, EngineError> {
        while let Some(request) = source.next_request() {
            self.submit(request);
        }
        self.run_to_completion()
    }

    /// A deterministic snapshot of statistics, costs and flip outcomes,
    /// merged in channel-id order.
    pub fn snapshot(&self) -> EngineSnapshot {
        let per_channel: Vec<ControllerStats> =
            self.shards.iter().map(|shard| *shard.stats()).collect();
        let mut controller = ControllerStats::default();
        for stats in &per_channel {
            controller.merge(stats);
        }
        let mut dram = DramStats::new();
        for shard in &self.shards {
            dram.merge(shard.controller().dram().stats());
        }
        EngineSnapshot {
            channels: self.shards.len(),
            controller,
            per_channel,
            cycles: dram.cycles,
            energy_pj: dram.energy_pj,
            disturbances: dram.disturbances,
            bit_flips: dram.bit_flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::TraceReplay;
    use dlk_memctrl::Trace;

    fn tiny_engine(config: EngineConfig) -> ShardedEngine {
        ShardedEngine::new(config, MemCtrlConfig::tiny_for_tests()).unwrap()
    }

    #[test]
    fn zero_channels_rejected() {
        let config = EngineConfig { channels: 0, parallel: false };
        assert_eq!(
            ShardedEngine::new(config, MemCtrlConfig::tiny_for_tests()).unwrap_err(),
            EngineError::NoChannels
        );
    }

    #[test]
    fn heterogeneous_shard_geometries_rejected() {
        let err = ShardedEngine::with_controllers(EngineConfig::sharded(3), |channel| {
            let config = if channel == 2 {
                MemCtrlConfig::default() // larger geometry than the others
            } else {
                MemCtrlConfig::tiny_for_tests()
            };
            MemoryController::new(config)
        })
        .unwrap_err();
        assert_eq!(err, EngineError::GeometryMismatch { channel: 2 });
    }

    #[test]
    fn single_channel_engine_matches_bare_controller() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let mut engine = tiny_engine(EngineConfig::serial());
        for target in [0u64, 64, 130, 7] {
            ctrl.submit(MemRequest::write(target, vec![target as u8]));
            engine.submit(MemRequest::write(target, vec![target as u8]));
            ctrl.submit(MemRequest::read(target, 1));
            engine.submit(MemRequest::read(target, 1));
        }
        let reference: Vec<_> =
            ctrl.run_to_completion().unwrap().into_iter().map(|c| (c.denied, c.data)).collect();
        let sharded: Vec<_> = engine
            .run_to_completion()
            .unwrap()
            .merged()
            .into_iter()
            .map(|c| (c.denied, c.data))
            .collect();
        assert_eq!(reference, sharded);
        assert_eq!(ctrl.stats(), &engine.snapshot().controller);
        assert_eq!(ctrl.dram().stats().cycles, engine.snapshot().cycles);
    }

    #[test]
    fn routed_write_read_roundtrips_on_every_channel() {
        let mut engine = tiny_engine(EngineConfig::sharded(4));
        let row_bytes = engine.primary().controller().geometry().row_bytes as u64;
        for row in 0..8u64 {
            let addr = row * row_bytes + 3;
            engine.submit(MemRequest::write(addr, vec![row as u8 + 1]));
        }
        engine.run_to_completion().unwrap();
        for row in 0..8u64 {
            let addr = row * row_bytes + 3;
            let done = engine.service(MemRequest::read(addr, 1)).unwrap();
            assert_eq!(done.data.as_deref(), Some(&[row as u8 + 1][..]));
        }
        // Row-interleaving spread the writes over all four shards.
        for shard in engine.shards() {
            assert_eq!(shard.stats().writes, 2, "channel {}", shard.channel());
        }
    }

    /// Everything observable about a completion except the request id,
    /// which is allocated from a process-global counter and therefore
    /// differs between two engine instances replaying the same trace.
    fn observable(done: &CompletedRequest) -> (u64, bool, bool, u64, Option<Vec<u8>>) {
        (done.request.addr, done.request.untrusted, done.denied, done.latency, done.data.clone())
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial_reference() {
        let trace = Trace::random_reads(4 * 64 * 64, 1, 400, 99);
        let run = |config: EngineConfig| {
            let mut engine = tiny_engine(config);
            let outcome = engine.replay(TraceReplay::new(&trace)).unwrap();
            let merged: Vec<_> = outcome.merged().iter().map(observable).collect();
            (merged, engine.snapshot())
        };
        let (serial_outcome, serial_snap) = run(EngineConfig::serial_reference(4));
        let (parallel_outcome, parallel_snap) = run(EngineConfig::sharded(4));
        assert_eq!(serial_outcome, parallel_outcome);
        assert_eq!(serial_snap, parallel_snap);
        assert!(parallel_snap.controller.served > 0);
        assert!(parallel_snap.per_channel.iter().all(|s| s.served > 0), "all channels busy");
    }

    #[test]
    fn shard_error_reports_lowest_channel_in_both_modes() {
        for config in [EngineConfig::serial_reference(2), EngineConfig::sharded(2)] {
            let mut engine = tiny_engine(config);
            let capacity = engine.router().capacity();
            // Unmappable addresses routed to both channels; the error
            // from channel 0 wins in either stepping mode.
            engine.submit(MemRequest::read(capacity + 64, 1)); // channel 1
            engine.submit(MemRequest::read(capacity, 1)); // channel 0
            let err = engine.run_to_completion().unwrap_err();
            assert!(matches!(err, EngineError::Shard { channel: 0, .. }), "{err:?}");
        }
    }

    #[test]
    fn observe_aggregates_all_shards_into_one_registry() {
        let registry = Registry::new();
        let mut engine = tiny_engine(EngineConfig::sharded(4));
        engine.observe(&registry);
        let row_bytes = engine.primary().controller().geometry().row_bytes as u64;
        for row in 0..8u64 {
            engine.submit(MemRequest::write(row * row_bytes, vec![1]));
        }
        engine.run_to_completion().unwrap();
        // All four channels' serves land in the one shared counter.
        assert_eq!(registry.counter("memctrl.served").get(), 8);
        assert_eq!(registry.histogram("memctrl.latency_cycles.write").count(), 8);
        // One drain per shard, one merge for the run.
        assert_eq!(registry.counter("engine.drains").get(), 4);
        assert_eq!(registry.histogram("engine.drain_wall_ns").count(), 4);
        assert_eq!(registry.histogram("engine.merge_wall_ns").count(), 1);
    }

    #[test]
    fn empty_replay_snapshot_is_all_zero() {
        let mut engine = tiny_engine(EngineConfig::sharded(2));
        let outcome = engine.replay(TraceReplay::new(&Trace::new())).unwrap();
        assert!(outcome.is_empty());
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.controller.mean_latency(), 0.0);
        assert_eq!(snapshot.controller.denial_rate(), 0.0);
        assert_eq!(snapshot.cycles, 0);
    }
}
