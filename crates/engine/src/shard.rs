//! One channel's execution shard.

use dlk_memctrl::{CompletedRequest, ControllerStats, MemRequest, MemoryController};

use crate::error::EngineError;

/// A self-contained execution unit for one DRAM channel: its own
/// [`MemoryController`] (device, mapper, queue) with the channel's
/// slice of the defense state mounted as the controller hook — for
/// DRAM-Locker, the lock-table entries of the victims homed on this
/// channel.
///
/// Shards share nothing, which is what lets the engine step them on
/// scoped threads and still merge results deterministically.
#[derive(Debug)]
pub struct ChannelShard {
    channel: usize,
    ctrl: MemoryController,
}

impl ChannelShard {
    /// Wraps a controller as channel `channel`'s shard.
    pub fn new(channel: usize, ctrl: MemoryController) -> Self {
        Self { channel, ctrl }
    }

    /// This shard's channel id.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// The shard's controller (read-only).
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Mutable access to the shard's controller (defense mounting,
    /// victim deployment, direct traffic).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.ctrl
    }

    /// Number of queued requests on this shard.
    pub fn pending(&self) -> usize {
        self.ctrl.pending()
    }

    /// This shard's controller statistics.
    pub fn stats(&self) -> &ControllerStats {
        self.ctrl.stats()
    }

    /// Enqueues a shard-local request.
    pub fn submit(&mut self, request: MemRequest) {
        self.ctrl.submit(request);
    }

    /// Serves one shard-local request immediately.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Shard`] tagged with this channel.
    pub fn service(&mut self, request: MemRequest) -> Result<CompletedRequest, EngineError> {
        self.ctrl
            .service(request)
            .map_err(|source| EngineError::Shard { channel: self.channel, source })
    }

    /// Serves every queued request in scheduling order — the unit of
    /// work one engine step thread performs.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request, tagged with this channel.
    pub fn drain(&mut self) -> Result<Vec<CompletedRequest>, EngineError> {
        self.ctrl
            .run_to_completion()
            .map_err(|source| EngineError::Shard { channel: self.channel, source })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_memctrl::MemCtrlConfig;

    #[test]
    fn shard_drains_its_own_queue() {
        let mut shard =
            ChannelShard::new(3, MemoryController::new(MemCtrlConfig::tiny_for_tests()));
        shard.submit(MemRequest::write(0, vec![7]));
        shard.submit(MemRequest::read(0, 1));
        assert_eq!(shard.pending(), 2);
        let done = shard.drain().unwrap();
        assert_eq!(done[1].data.as_deref(), Some(&[7u8][..]));
        assert_eq!(shard.stats().served, 2);
    }

    #[test]
    fn shard_errors_carry_the_channel_id() {
        let mut shard =
            ChannelShard::new(5, MemoryController::new(MemCtrlConfig::tiny_for_tests()));
        let capacity = shard.controller().mapper().capacity();
        let err = shard.service(MemRequest::read(capacity, 1)).unwrap_err();
        assert!(matches!(err, EngineError::Shard { channel: 5, .. }));
    }
}
