//! Global-address routing across channel shards.
//!
//! The engine models an `n`-channel memory system as `n` independent
//! per-channel devices behind one *global* physical address space of
//! `n × per-channel capacity` bytes. Rows interleave across channels at
//! row granularity (the common controller default — consecutive rows
//! land on different channels, so sequential traffic spreads over all
//! shards), and within a channel the shard's own
//! [`AddressMapper`](dlk_memctrl::AddressMapper) takes over:
//!
//! ```text
//! global row g  →  channel  g mod n,  local row  g div n
//! ```
//!
//! With `n = 1` the routing is the identity, which is what makes a
//! single-channel engine bit-identical to the bare controller pipeline
//! it replaced.

use serde::{Deserialize, Serialize};

use dlk_memctrl::{AddressMapper, Trace, TraceOp};

use crate::error::EngineError;

/// Routes global physical byte addresses to `(channel, local address)`
/// pairs and back.
///
/// # Example
///
/// ```
/// use dlk_dram::DramGeometry;
/// use dlk_engine::ChannelRouter;
/// use dlk_memctrl::{AddressMapper, MappingScheme};
///
/// let mapper = AddressMapper::new(DramGeometry::tiny(), MappingScheme::BankSequential);
/// let router = ChannelRouter::new(2, &mapper);
/// let row_bytes = mapper.geometry().row_bytes as u64;
/// // Global rows 0 and 1 land on different channels, same local row.
/// assert_eq!(router.to_local(0), (0, 0));
/// assert_eq!(router.to_local(row_bytes + 5), (1, 5));
/// assert_eq!(router.to_global(1, 5), Ok(row_bytes + 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelRouter {
    channels: u64,
    row_bytes: u64,
    channel_capacity: u64,
}

impl ChannelRouter {
    /// Creates a router over `channels` shards whose local address
    /// spaces are described by `mapper` (one per-channel device each).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero; the engine constructor reports
    /// [`EngineError::NoChannels`](crate::EngineError::NoChannels)
    /// before this can be reached.
    pub fn new(channels: usize, mapper: &AddressMapper) -> Self {
        assert!(channels > 0, "router needs at least one channel");
        Self {
            channels: channels as u64,
            row_bytes: mapper.geometry().row_bytes as u64,
            channel_capacity: mapper.capacity(),
        }
    }

    /// Number of channels routed over.
    pub fn channels(&self) -> usize {
        self.channels as usize
    }

    /// Total global capacity in bytes across all channels.
    pub fn capacity(&self) -> u64 {
        self.channels * self.channel_capacity
    }

    /// The channel a global physical address routes to.
    pub fn channel_of(&self, phys: u64) -> usize {
        ((phys / self.row_bytes) % self.channels) as usize
    }

    /// Routes a global physical address to `(channel, local address)`.
    /// Addresses beyond [`capacity`](ChannelRouter::capacity) still
    /// route (to an out-of-range local address); the shard's controller
    /// reports them at service time, exactly as the single-controller
    /// pipeline did.
    pub fn to_local(&self, phys: u64) -> (usize, u64) {
        let global_row = phys / self.row_bytes;
        let offset = phys % self.row_bytes;
        let channel = (global_row % self.channels) as usize;
        let local_row = global_row / self.channels;
        (channel, local_row * self.row_bytes + offset)
    }

    /// Inverse of [`ChannelRouter::to_local`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadChannel`] for a channel index outside
    /// the configured width.
    pub fn to_global(&self, channel: usize, local: u64) -> Result<u64, EngineError> {
        if channel as u64 >= self.channels {
            return Err(EngineError::BadChannel { channel, channels: self.channels as usize });
        }
        let local_row = local / self.row_bytes;
        let offset = local % self.row_bytes;
        let global_row = local_row * self.channels + channel as u64;
        Ok(global_row * self.row_bytes + offset)
    }

    /// Lifts a *shard-local* trace (e.g. a victim's weight-fetch
    /// stream recorded against its home device) into the global
    /// address space, homing every access on `channel`. Replaying the
    /// result through the engine routes each access back to exactly
    /// the local addresses the trace named.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadChannel`] for a channel index outside
    /// the configured width.
    pub fn globalize_trace(&self, trace: &Trace, channel: usize) -> Result<Trace, EngineError> {
        let mut global = Trace::new();
        global.untrusted = trace.untrusted;
        for op in trace.ops() {
            global.push(match op {
                TraceOp::Read { addr, len } => {
                    TraceOp::Read { addr: self.to_global(channel, *addr)?, len: *len }
                }
                TraceOp::Write { addr, payload } => TraceOp::Write {
                    addr: self.to_global(channel, *addr)?,
                    payload: payload.clone(),
                },
            });
        }
        Ok(global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramGeometry;
    use dlk_memctrl::MappingScheme;

    fn router(channels: usize) -> ChannelRouter {
        let mapper = AddressMapper::new(DramGeometry::tiny(), MappingScheme::BankSequential);
        ChannelRouter::new(channels, &mapper)
    }

    #[test]
    fn single_channel_routing_is_identity() {
        let router = router(1);
        for phys in [0u64, 1, 63, 64, 12345] {
            assert_eq!(router.to_local(phys), (0, phys));
            assert_eq!(router.to_global(0, phys).unwrap(), phys);
        }
    }

    #[test]
    fn roundtrip_is_bijective_over_capacity() {
        for channels in [2usize, 3, 4] {
            let router = router(channels);
            let mut seen = std::collections::HashSet::new();
            for phys in (0..router.capacity()).step_by(37) {
                let (channel, local) = router.to_local(phys);
                assert!(channel < channels);
                assert!(local < router.capacity() / channels as u64);
                assert_eq!(router.to_global(channel, local).unwrap(), phys);
                assert!(seen.insert((channel, local)), "collision at {phys:#x}");
            }
        }
    }

    #[test]
    fn consecutive_rows_stripe_across_channels() {
        let router = router(4);
        let row_bytes = 64u64;
        let channels: Vec<usize> = (0..8).map(|row| router.channel_of(row * row_bytes)).collect();
        assert_eq!(channels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn globalized_trace_routes_back_to_its_local_addresses() {
        use dlk_memctrl::{Trace, TraceOp};
        let router = router(2);
        let mut local = Trace::sequential_reads(64, 64, 8, 4);
        local.untrusted = true;
        let global = router.globalize_trace(&local, 1).unwrap();
        assert!(global.untrusted);
        for (g, l) in global.ops().iter().zip(local.ops()) {
            let (TraceOp::Read { addr: ga, len: gl }, TraceOp::Read { addr: la, len: ll }) = (g, l)
            else {
                panic!("reads only")
            };
            assert_eq!(gl, ll);
            assert_eq!(router.to_local(*ga), (1, *la));
        }
        assert!(router.globalize_trace(&local, 2).is_err());
    }

    #[test]
    fn bad_channel_rejected() {
        let router = router(2);
        assert!(matches!(
            router.to_global(2, 0),
            Err(EngineError::BadChannel { channel: 2, channels: 2 })
        ));
    }
}
