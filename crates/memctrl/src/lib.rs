//! # dlk-memctrl — memory controller for the DRAM-Locker reproduction
//!
//! Sits between workloads (DNN inference, attackers) and the
//! [`dlk_dram`] device:
//!
//! - [`request`]: read/write memory requests addressed by physical byte
//!   address;
//! - [`mapping`]: physical-address-to-DRAM-coordinate mapping schemes;
//! - [`scheduler`]: FCFS and FR-FCFS request scheduling;
//! - [`metrics`]: per-kind latency histograms and outcome counters
//!   ([`CtrlMetrics`]) recorded on the servicing path and exposable
//!   through a shared `dlk-obs` registry;
//! - [`pagetable`]: a DRAM-resident page table — PTEs live in DRAM rows,
//!   so RowHammer flips in those rows corrupt virtual-to-physical
//!   translation (the Page Table Attack surface);
//! - [`interpose`]: the [`DefenseHook`] trait that lets defenses such as
//!   DRAM-Locker allow / deny / redirect accesses and observe
//!   activations;
//! - [`controller`]: the [`MemoryController`] tying it together.
//!
//! ## Example
//!
//! ```
//! use dlk_memctrl::{MemoryController, MemCtrlConfig, MemRequest};
//!
//! # fn main() -> Result<(), dlk_memctrl::MemCtrlError> {
//! let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
//! ctrl.submit(MemRequest::write(0x40, vec![1, 2, 3]));
//! ctrl.submit(MemRequest::read(0x40, 3));
//! let done = ctrl.run_to_completion()?;
//! assert_eq!(done[1].data.as_deref(), Some(&[1u8, 2, 3][..]));
//! # Ok(())
//! # }
//! ```

pub mod controller;
pub mod error;
pub mod interpose;
pub mod mapping;
pub mod metrics;
pub mod pagetable;
pub mod request;
pub mod scheduler;
pub mod trace;

pub use crate::controller::{CompletedRequest, ControllerStats, MemCtrlConfig, MemoryController};
pub use crate::error::MemCtrlError;
pub use crate::interpose::{DefenseHook, HookAction, NoDefense};
pub use crate::mapping::{AddressMapper, MappingScheme};
pub use crate::metrics::CtrlMetrics;
pub use crate::pagetable::{PageTable, PageTableConfig, Pte, VirtAddr};
pub use crate::request::{MemRequest, RequestKind};
pub use crate::scheduler::{RequestQueue, SchedulingPolicy};
pub use crate::trace::{Trace, TraceOp};
