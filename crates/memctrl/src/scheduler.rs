//! Request scheduling policies.
//!
//! - **FCFS**: strictly in arrival order.
//! - **FR-FCFS** (First-Ready FCFS): prefer requests that hit a
//!   currently-open row buffer, falling back to the oldest request —
//!   the standard high-performance controller policy.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use dlk_dram::RowAddr;

use crate::request::MemRequest;

/// Scheduling policy for the request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First come, first served.
    #[default]
    Fcfs,
    /// First-ready (row-buffer hit) first, then FCFS.
    FrFcfs,
}

/// A pending-request queue with pluggable scheduling.
///
/// # Example
///
/// ```
/// use dlk_memctrl::{MemRequest, RequestQueue, SchedulingPolicy};
///
/// let mut queue = RequestQueue::new(SchedulingPolicy::Fcfs);
/// queue.push(MemRequest::read(0, 4));
/// assert_eq!(queue.len(), 1);
/// let next = queue.pop(|_| None).unwrap();
/// assert_eq!(next.addr, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    policy: SchedulingPolicy,
    pending: VecDeque<(MemRequest, Option<RowAddr>)>,
}

impl RequestQueue {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: SchedulingPolicy) -> Self {
        Self { policy, pending: VecDeque::new() }
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueues a request (target row unknown — FCFS ordering only).
    pub fn push(&mut self, request: MemRequest) {
        self.pending.push_back((request, None));
    }

    /// Enqueues a request together with its mapped DRAM row so FR-FCFS
    /// can match it against open row buffers.
    pub fn push_mapped(&mut self, request: MemRequest, row: RowAddr) {
        self.pending.push_back((request, Some(row)));
    }

    /// Removes and returns the next request to serve.
    ///
    /// `open_row` reports the currently-open row of a bank (for
    /// FR-FCFS); FCFS ignores it.
    pub fn pop(&mut self, open_row: impl Fn(u16) -> Option<RowAddr>) -> Option<MemRequest> {
        if self.pending.is_empty() {
            return None;
        }
        let index = match self.policy {
            SchedulingPolicy::Fcfs => 0,
            SchedulingPolicy::FrFcfs => self
                .pending
                .iter()
                .position(|(_, row)| row.is_some_and(|r| open_row(r.bank) == Some(r)))
                .unwrap_or(0),
        };
        self.pending.remove(index).map(|(req, _)| req)
    }

    /// Drops every pending request, returning how many were discarded.
    pub fn clear(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_preserves_order() {
        let mut queue = RequestQueue::new(SchedulingPolicy::Fcfs);
        let a = MemRequest::read(0, 1);
        let b = MemRequest::read(64, 1);
        let (ida, idb) = (a.id, b.id);
        queue.push(a);
        queue.push(b);
        assert_eq!(queue.pop(|_| None).unwrap().id, ida);
        assert_eq!(queue.pop(|_| None).unwrap().id, idb);
        assert!(queue.pop(|_| None).is_none());
    }

    #[test]
    fn frfcfs_prefers_open_row_hit() {
        let mut queue = RequestQueue::new(SchedulingPolicy::FrFcfs);
        let miss = MemRequest::read(0, 1);
        let hit = MemRequest::read(64, 1);
        let hit_id = hit.id;
        let miss_row = RowAddr::new(0, 0, 0);
        let hit_row = RowAddr::new(0, 0, 1);
        queue.push_mapped(miss, miss_row);
        queue.push_mapped(hit, hit_row);
        let popped = queue.pop(|bank| (bank == 0).then_some(hit_row)).unwrap();
        assert_eq!(popped.id, hit_id, "row-buffer hit should jump the queue");
    }

    #[test]
    fn frfcfs_falls_back_to_fcfs_without_hits() {
        let mut queue = RequestQueue::new(SchedulingPolicy::FrFcfs);
        let a = MemRequest::read(0, 1);
        let a_id = a.id;
        queue.push_mapped(a, RowAddr::new(0, 0, 0));
        queue.push_mapped(MemRequest::read(64, 1), RowAddr::new(0, 0, 1));
        let popped = queue.pop(|_| None).unwrap();
        assert_eq!(popped.id, a_id);
    }

    #[test]
    fn clear_reports_count() {
        let mut queue = RequestQueue::new(SchedulingPolicy::Fcfs);
        queue.push(MemRequest::read(0, 1));
        queue.push(MemRequest::read(1, 1));
        assert_eq!(queue.clear(), 2);
        assert!(queue.is_empty());
    }
}
