//! The memory controller.
//!
//! Accepts [`MemRequest`]s, schedules them, consults the installed
//! [`DefenseHook`], and drives the [`DramDevice`]. Denied requests are
//! *skipped*: no DRAM command is issued and only the hook's check
//! latency is charged — matching the paper's observation that invalid
//! (locked-row) instructions cost nothing downstream.

use serde::{Deserialize, Serialize};

use dlk_dram::{DramConfig, DramDevice, DramGeometry, RowAddr};

use crate::error::MemCtrlError;
use crate::interpose::{DefenseHook, HookAction, NoDefense};
use crate::mapping::{AddressMapper, MappingScheme};
use crate::metrics::CtrlMetrics;
use crate::request::{MemRequest, RequestKind};
use crate::scheduler::{RequestQueue, SchedulingPolicy};

/// Configuration of a [`MemoryController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemCtrlConfig {
    /// DRAM device configuration.
    pub dram: DramConfig,
    /// Address interleaving scheme.
    pub scheme: MappingScheme,
    /// Request scheduling policy.
    pub policy: SchedulingPolicy,
}

impl Default for MemCtrlConfig {
    fn default() -> Self {
        Self {
            dram: DramConfig::default(),
            scheme: MappingScheme::BankSequential,
            policy: SchedulingPolicy::Fcfs,
        }
    }
}

impl MemCtrlConfig {
    /// Small configuration for unit tests.
    pub fn tiny_for_tests() -> Self {
        Self {
            dram: DramConfig::tiny_for_tests(),
            scheme: MappingScheme::BankSequential,
            policy: SchedulingPolicy::Fcfs,
        }
    }
}

/// One row of the per-kind action table: how a request kind touches
/// the device and which statistics it bumps. Indexed by
/// [`RequestKind::index`], this replaces the per-request match
/// dispatch that used to sit in the servicing hot loop.
struct KindAction {
    /// `true` if the DRAM access is a read returning data.
    is_read: bool,
    /// Increment applied to [`ControllerStats::reads`].
    reads: u64,
    /// Increment applied to [`ControllerStats::writes`].
    writes: u64,
}

/// The flat action table consulted by [`MemoryController::service_mapped`]
/// — the one servicing tail shared by `service`, `service_batch` and
/// the queued `step` loop.
const KIND_ACTIONS: [KindAction; RequestKind::COUNT] = [
    KindAction { is_read: true, reads: 1, writes: 0 },
    KindAction { is_read: false, reads: 0, writes: 1 },
];

/// A served (or skipped) request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: MemRequest,
    /// `true` if the defense denied the access (skipped instruction).
    pub denied: bool,
    /// Cycles from de-queue to completion, including hook latency.
    pub latency: u64,
    /// Data returned for reads that were served.
    pub data: Option<Vec<u8>>,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Requests served against DRAM.
    pub served: u64,
    /// Requests denied by the defense hook.
    pub denied: u64,
    /// Requests redirected by the defense hook.
    pub redirected: u64,
    /// Untrusted requests rejected by OS page protection (virtual
    /// memory isolation — before any hardware defense is consulted).
    pub os_faults: u64,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Sum of request latencies in cycles.
    pub total_latency: u64,
}

impl ControllerStats {
    /// Mean latency per completed request in cycles. Returns `0.0`
    /// (never `NaN`) when no request completed — e.g. an empty-trace
    /// replay.
    pub fn mean_latency(&self) -> f64 {
        let total = self.served + self.denied;
        if total == 0 {
            0.0
        } else {
            self.total_latency as f64 / total as f64
        }
    }

    /// Fraction of requests the defense denied, in `[0, 1]`. Returns
    /// `0.0` (never `NaN`) when no request completed.
    pub fn denial_rate(&self) -> f64 {
        let total = self.served + self.denied;
        if total == 0 {
            0.0
        } else {
            self.denied as f64 / total as f64
        }
    }

    /// Accumulates another channel's statistics into this one — the
    /// shard-merge primitive of the sharded execution engine. Field
    /// order is fixed, so merging shard stats in channel order is
    /// deterministic.
    pub fn merge(&mut self, other: &ControllerStats) {
        self.served += other.served;
        self.denied += other.denied;
        self.redirected += other.redirected;
        self.os_faults += other.os_faults;
        self.reads += other.reads;
        self.writes += other.writes;
        self.total_latency += other.total_latency;
    }
}

/// The memory controller: queue + mapper + defense hook + DRAM device.
///
/// # Example
///
/// ```
/// use dlk_memctrl::{MemoryController, MemCtrlConfig, MemRequest};
///
/// # fn main() -> Result<(), dlk_memctrl::MemCtrlError> {
/// let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
/// ctrl.submit(MemRequest::write(0, vec![42]));
/// ctrl.submit(MemRequest::read(0, 1));
/// let done = ctrl.run_to_completion()?;
/// assert_eq!(done[1].data.as_deref(), Some(&[42u8][..]));
/// # Ok(())
/// # }
/// ```
pub struct MemoryController {
    dram: DramDevice,
    mapper: AddressMapper,
    queue: RequestQueue,
    hook: Box<dyn DefenseHook>,
    stats: ControllerStats,
    metrics: CtrlMetrics,
    /// Physical byte ranges untrusted processes cannot touch (the OS's
    /// virtual-memory isolation of victim-owned pages).
    os_protected: Vec<(u64, u64)>,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("mapper", &self.mapper)
            .field("pending", &self.queue.len())
            .field("hook", &self.hook.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemoryController {
    /// Creates a controller with no defense installed.
    pub fn new(config: MemCtrlConfig) -> Self {
        Self::with_hook(config, Box::new(NoDefense))
    }

    /// Creates a controller with a defense hook installed.
    pub fn with_hook(config: MemCtrlConfig, hook: Box<dyn DefenseHook>) -> Self {
        let dram = DramDevice::new(config.dram);
        let mapper = AddressMapper::new(config.dram.geometry, config.scheme);
        Self {
            dram,
            mapper,
            queue: RequestQueue::new(config.policy),
            hook,
            stats: ControllerStats::default(),
            metrics: CtrlMetrics::new(),
            os_protected: Vec::new(),
        }
    }

    /// Marks the physical byte range `[start, end)` as owned by the
    /// victim: untrusted requests inside it fault at the OS level
    /// (page permissions), before any hardware defense is consulted.
    /// An attacker can therefore only *activate* rows it owns — the
    /// premise of the paper's MLaaS threat model.
    pub fn os_protect_range(&mut self, start: u64, end: u64) {
        self.os_protected.push((start, end));
    }

    fn os_faults(&self, request: &MemRequest) -> bool {
        request.untrusted
            && self.os_protected.iter().any(|&(start, end)| {
                request.addr < end && request.addr + request.len as u64 > start
            })
    }

    /// Replaces the defense hook, returning the old one.
    pub fn set_hook(&mut self, hook: Box<dyn DefenseHook>) -> Box<dyn DefenseHook> {
        std::mem::replace(&mut self.hook, hook)
    }

    /// The installed hook.
    pub fn hook(&self) -> &dyn DefenseHook {
        self.hook.as_ref()
    }

    /// Mutable access to the installed hook (e.g. to inspect or update
    /// a DRAM-Locker lock table mid-run).
    pub fn hook_mut(&mut self) -> &mut dyn DefenseHook {
        self.hook.as_mut()
    }

    /// The DRAM geometry.
    pub fn geometry(&self) -> DramGeometry {
        *self.dram.geometry()
    }

    /// The address mapper.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// The DRAM device (read-only).
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    /// Mutable access to the DRAM device (fault injection, inspection).
    pub fn dram_mut(&mut self) -> &mut DramDevice {
        &mut self.dram
    }

    /// Controller statistics.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The local metrics this controller has recorded.
    pub fn metrics(&self) -> &CtrlMetrics {
        &self.metrics
    }

    /// Folds everything recorded since the last export into `registry`
    /// under `<prefix>.*` (see [`CtrlMetrics::export_into`]). Delta
    /// export: repeated calls never double-count, and controllers of
    /// different shards exporting to one prefix aggregate.
    pub fn export_obs(&mut self, registry: &dlk_obs::Registry, prefix: &str) {
        self.metrics.export_into(registry, prefix);
    }

    /// Number of queued requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a request.
    pub fn submit(&mut self, request: MemRequest) {
        match self.mapper.to_dram(request.addr) {
            Ok((row, _)) => self.queue.push_mapped(request, row),
            // Defer the error to service time so the caller sees it.
            Err(_) => self.queue.push(request),
        }
    }

    /// Serves the next scheduled request, if any.
    ///
    /// # Errors
    ///
    /// Returns an error for unmappable addresses or row-spanning
    /// requests; the DRAM device state is unchanged in that case.
    pub fn step(&mut self) -> Result<Option<CompletedRequest>, MemCtrlError> {
        let banks: Vec<Option<RowAddr>> =
            (0..self.geometry().banks).map(|b| self.dram.open_row_of(b)).collect();
        let Some(request) = self.queue.pop(|bank| banks.get(bank as usize).copied().flatten())
        else {
            return Ok(None);
        };
        self.service(request).map(Some)
    }

    /// The shared validation head of every servicing path: the OS
    /// page-protection fault comes first (before any address
    /// validation — an untrusted request into a protected range is
    /// denied, never an error), then address mapping and the
    /// row-boundary check. `Ok(None)` means the request OS-faults.
    ///
    /// # Errors
    ///
    /// Returns an error for unmappable addresses or row-spanning
    /// requests.
    fn prepare(&self, request: &MemRequest) -> Result<Option<(RowAddr, usize)>, MemCtrlError> {
        if self.os_faults(request) {
            return Ok(None);
        }
        let (row, col) = self.mapper.to_dram(request.addr)?;
        if col + request.len > self.geometry().row_bytes {
            return Err(MemCtrlError::SpansRowBoundary { addr: request.addr, len: request.len });
        }
        Ok(Some((row, col)))
    }

    /// Completes an OS-faulting request: denied, zero latency, no
    /// device access.
    fn complete_os_fault(&mut self, request: MemRequest) -> CompletedRequest {
        self.stats.os_faults += 1;
        self.metrics.os_faults += 1;
        CompletedRequest { request, denied: true, latency: 0, data: None }
    }

    /// Serves one request immediately, bypassing the queue.
    ///
    /// # Errors
    ///
    /// Returns an error for unmappable addresses or row-spanning
    /// requests.
    pub fn service(&mut self, request: MemRequest) -> Result<CompletedRequest, MemCtrlError> {
        match self.prepare(&request)? {
            None => Ok(self.complete_os_fault(request)),
            Some((row, col)) => self.service_mapped(request, row, col),
        }
    }

    /// Serves a slice of requests in one pass, bypassing the queue —
    /// the batched fast path for dense request streams (e.g. a CNN
    /// weight fetch). Behaviourally identical to calling
    /// [`MemoryController::service`] per request — same completions,
    /// same statistics, same device state — but every address is
    /// validated up front (by the same [`MemoryController::prepare`]
    /// head the per-request path uses), so a malformed request is
    /// rejected *before* any request of the batch touches the device,
    /// and the per-request dispatch overhead is paid once.
    ///
    /// # Errors
    ///
    /// Returns an error for unmappable addresses or row-spanning
    /// requests; the controller and device are unchanged in that case.
    pub fn service_batch(
        &mut self,
        requests: &[MemRequest],
    ) -> Result<Vec<CompletedRequest>, MemCtrlError> {
        let mut prepared = Vec::with_capacity(requests.len());
        for request in requests {
            prepared.push(self.prepare(request)?);
        }
        let mut done = Vec::with_capacity(requests.len());
        for (request, prepared) in requests.iter().zip(prepared) {
            done.push(match prepared {
                None => self.complete_os_fault(request.clone()),
                Some((row, col)) => self.service_mapped(request.clone(), row, col)?,
            });
        }
        Ok(done)
    }

    /// The one servicing tail behind [`MemoryController::service`],
    /// [`MemoryController::service_batch`] and the queued step loop:
    /// hook consultation, the per-kind action-table dispatch and the
    /// DRAM access for an already-validated request.
    fn service_mapped(
        &mut self,
        request: MemRequest,
        row: RowAddr,
        col: usize,
    ) -> Result<CompletedRequest, MemCtrlError> {
        let mut latency = self.hook.check_latency();
        let action = self.hook.before_access(&request, row, &mut self.dram);
        let (row, col) = match action {
            HookAction::Allow => (row, col),
            HookAction::Deny => {
                self.stats.denied += 1;
                self.stats.total_latency += latency;
                self.metrics.denied += 1;
                self.metrics.record_latency(request.kind, latency);
                self.dram.advance(latency);
                return Ok(CompletedRequest { request, denied: true, latency, data: None });
            }
            HookAction::Redirect(new_row) => {
                self.stats.redirected += 1;
                self.metrics.redirected += 1;
                (new_row, col)
            }
        };
        let will_activate = self.dram.open_row_of(row.bank) != Some(row);
        let kind = &KIND_ACTIONS[request.kind.index()];
        let data = if kind.is_read {
            let (data, cycles) = self.dram.access_read(row, col, request.len)?;
            latency += cycles;
            Some(data)
        } else {
            latency += self.dram.access_write(row, col, &request.payload)?;
            None
        };
        if will_activate {
            self.hook.on_activate(row, &mut self.dram);
        }
        self.stats.reads += kind.reads;
        self.stats.writes += kind.writes;
        self.stats.served += 1;
        self.stats.total_latency += latency;
        self.metrics.served += 1;
        self.metrics.record_latency(request.kind, latency);
        Ok(CompletedRequest { request, denied: false, latency, data })
    }

    /// Serves every queued request in scheduling order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request.
    pub fn run_to_completion(&mut self) -> Result<Vec<CompletedRequest>, MemCtrlError> {
        let mut done = Vec::with_capacity(self.queue.len());
        while let Some(completed) = self.step()? {
            done.push(completed);
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        ctrl.submit(MemRequest::write(0x10, vec![9, 8, 7]));
        ctrl.submit(MemRequest::read(0x10, 3));
        let done = ctrl.run_to_completion().unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].data.as_deref(), Some(&[9u8, 8, 7][..]));
        assert_eq!(ctrl.stats().served, 2);
        assert!(ctrl.stats().mean_latency() > 0.0);
    }

    #[test]
    fn row_spanning_request_rejected() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let row_bytes = ctrl.geometry().row_bytes;
        let req = MemRequest::read(row_bytes as u64 - 1, 2);
        assert!(matches!(ctrl.service(req), Err(MemCtrlError::SpansRowBoundary { .. })));
    }

    #[test]
    fn out_of_range_address_rejected() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let capacity = ctrl.mapper().capacity();
        ctrl.submit(MemRequest::read(capacity, 1));
        assert!(ctrl.run_to_completion().is_err());
    }

    struct DenyAll;
    impl DefenseHook for DenyAll {
        fn before_access(
            &mut self,
            _request: &MemRequest,
            _target: RowAddr,
            _dram: &mut DramDevice,
        ) -> HookAction {
            HookAction::Deny
        }
        fn check_latency(&self) -> u64 {
            3
        }
        fn name(&self) -> &str {
            "deny-all"
        }
    }

    #[test]
    fn denied_requests_skip_dram() {
        let mut ctrl =
            MemoryController::with_hook(MemCtrlConfig::tiny_for_tests(), Box::new(DenyAll));
        ctrl.submit(MemRequest::read(0, 1));
        let done = ctrl.run_to_completion().unwrap();
        assert!(done[0].denied);
        assert_eq!(done[0].latency, 3);
        assert_eq!(ctrl.stats().denied, 1);
        assert_eq!(ctrl.stats().served, 0);
        assert_eq!(ctrl.dram().stats().total_activations(), 0);
    }

    struct RedirectTo(RowAddr);
    impl DefenseHook for RedirectTo {
        fn before_access(
            &mut self,
            _request: &MemRequest,
            _target: RowAddr,
            _dram: &mut DramDevice,
        ) -> HookAction {
            HookAction::Redirect(self.0)
        }
        fn name(&self) -> &str {
            "redirect"
        }
    }

    #[test]
    fn redirected_request_reads_other_row_same_column() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let row_bytes = ctrl.geometry().row_bytes as u64;
        // Write 0xEE at row 4, column 0x10.
        ctrl.submit(MemRequest::write(4 * row_bytes + 0x10, vec![0xEE]));
        ctrl.run_to_completion().unwrap();
        ctrl.set_hook(Box::new(RedirectTo(RowAddr::new(0, 0, 4))));
        // Read row 0 column 0x10 — redirected to row 4, same column.
        let done = ctrl.service(MemRequest::read(0x10, 1)).unwrap();
        assert_eq!(done.data.as_deref(), Some(&[0xEEu8][..]));
        assert_eq!(ctrl.stats().redirected, 1);
    }

    struct CountActs(std::sync::Arc<std::sync::atomic::AtomicU64>);
    impl DefenseHook for CountActs {
        fn before_access(
            &mut self,
            _request: &MemRequest,
            _target: RowAddr,
            _dram: &mut DramDevice,
        ) -> HookAction {
            HookAction::Allow
        }
        fn on_activate(&mut self, _row: RowAddr, _dram: &mut DramDevice) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn name(&self) -> &str {
            "count"
        }
    }

    #[test]
    fn hook_observes_activations_not_row_hits() {
        let acts = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut ctrl = MemoryController::with_hook(
            MemCtrlConfig::tiny_for_tests(),
            Box::new(CountActs(acts.clone())),
        );
        // Same row twice: one activation, one row-buffer hit.
        ctrl.submit(MemRequest::read(0, 1));
        ctrl.submit(MemRequest::read(8, 1));
        ctrl.run_to_completion().unwrap();
        assert_eq!(acts.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    /// The batch path is the optimized twin of the per-request path:
    /// identical completions, statistics and device state.
    #[test]
    fn service_batch_matches_per_request_reference() {
        let requests: Vec<MemRequest> = (0..40u64)
            .flat_map(|i| {
                [
                    MemRequest::write(i * 96 % 4096, vec![i as u8, (i + 1) as u8]),
                    MemRequest::read(i * 96 % 4096, 2),
                    MemRequest::read(i * 64 % 4096, 1).untrusted(),
                ]
            })
            .collect();
        let mut reference = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        reference.os_protect_range(0, 256);
        let mut batched = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        batched.os_protect_range(0, 256);

        let one_by_one: Vec<CompletedRequest> =
            requests.iter().map(|r| reference.service(r.clone()).unwrap()).collect();
        let in_one_pass = batched.service_batch(&requests).unwrap();

        let observable = |done: &CompletedRequest| {
            (done.request.addr, done.denied, done.latency, done.data.clone())
        };
        assert_eq!(
            one_by_one.iter().map(observable).collect::<Vec<_>>(),
            in_one_pass.iter().map(observable).collect::<Vec<_>>(),
        );
        assert_eq!(reference.stats(), batched.stats());
        assert_eq!(reference.dram().stats(), batched.dram().stats());
    }

    #[test]
    fn service_batch_denies_protected_requests_without_validating_them() {
        // `service` os-faults an untrusted protected request before
        // even mapping its address; the batch path must agree, so a
        // protected request with a row-spanning length is denied, not
        // an error.
        let row_bytes = MemoryController::new(MemCtrlConfig::tiny_for_tests()).geometry().row_bytes;
        let spanning = MemRequest::read(row_bytes as u64 - 1, 2).untrusted();
        let mut reference = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        reference.os_protect_range(0, 2 * row_bytes as u64);
        let mut batched = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        batched.os_protect_range(0, 2 * row_bytes as u64);

        let one = reference.service(spanning.clone()).unwrap();
        let batch = batched.service_batch(&[spanning]).unwrap();
        assert!(one.denied && batch[0].denied);
        assert_eq!(reference.stats(), batched.stats());
        assert_eq!(batched.stats().os_faults, 1);
    }

    #[test]
    fn service_batch_validates_before_touching_the_device() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let row_bytes = ctrl.geometry().row_bytes;
        // A good request followed by a row-spanning one: the whole
        // batch is rejected and the device stays untouched.
        let batch = vec![MemRequest::read(0, 1), MemRequest::read(row_bytes as u64 - 1, 2)];
        assert!(matches!(ctrl.service_batch(&batch), Err(MemCtrlError::SpansRowBoundary { .. })));
        assert_eq!(ctrl.stats().served, 0);
        assert_eq!(ctrl.dram().stats().total_activations(), 0);
    }

    #[test]
    fn metrics_record_serves_denies_and_faults() {
        let registry = dlk_obs::Registry::new();
        let mut ctrl =
            MemoryController::with_hook(MemCtrlConfig::tiny_for_tests(), Box::new(DenyAll));
        ctrl.os_protect_range(0, 64);
        ctrl.service(MemRequest::read(0, 1)).unwrap(); // denied by hook
        ctrl.service(MemRequest::read(0, 1).untrusted()).unwrap(); // OS fault
        ctrl.set_hook(Box::new(NoDefense));
        ctrl.service(MemRequest::write(128, vec![1])).unwrap(); // served
        ctrl.export_obs(&registry, "memctrl");
        assert_eq!(registry.counter("memctrl.denied").get(), 1);
        assert_eq!(registry.counter("memctrl.os_faults").get(), 1);
        assert_eq!(registry.counter("memctrl.served").get(), 1);
        let reads = registry.histogram("memctrl.latency_cycles.read");
        let writes = registry.histogram("memctrl.latency_cycles.write");
        // The OS fault never reaches the latency histograms.
        assert_eq!(reads.count(), 1);
        assert_eq!(writes.count(), 1);
        assert_eq!(reads.max(), 3); // DenyAll's check latency
        assert!(writes.max() > 0);
    }

    #[test]
    fn debug_impl_mentions_hook_name() {
        let ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        assert!(format!("{ctrl:?}").contains("none"));
    }

    #[test]
    fn idle_stats_report_zero_not_nan() {
        let stats = ControllerStats::default();
        assert_eq!(stats.mean_latency(), 0.0);
        assert_eq!(stats.denial_rate(), 0.0);
        assert!(!stats.mean_latency().is_nan());
    }

    #[test]
    fn merge_accumulates_every_field() {
        let a = ControllerStats {
            served: 1,
            denied: 2,
            redirected: 3,
            os_faults: 4,
            reads: 5,
            writes: 6,
            total_latency: 7,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            ControllerStats {
                served: 2,
                denied: 4,
                redirected: 6,
                os_faults: 8,
                reads: 10,
                writes: 12,
                total_latency: 14,
            }
        );
        assert!((b.denial_rate() - 4.0 / 6.0).abs() < 1e-12);
    }
}
