//! Defense interposition.
//!
//! A [`DefenseHook`] sits on the controller's request path. Before every
//! access the hook may allow it, deny it (DRAM-Locker's lock-table
//! behaviour: the instruction is skipped, costing only the lock-table
//! lookup), or redirect it to a different physical address (the
//! indirection DRAM-Locker installs after a SWAP). Hooks also observe
//! every row activation, which is how counter-based baselines
//! (Graphene, Hydra, TWiCE, ...) drive their trackers.

use dlk_dram::{DramDevice, RowAddr};

use crate::request::MemRequest;

/// The hook's decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Serve the request unchanged.
    Allow,
    /// Skip the request (locked row; no DRAM command issued).
    Deny,
    /// Serve the request from a different row (same column offset) —
    /// the indirection DRAM-Locker installs after a SWAP moves data.
    Redirect(RowAddr),
}

/// A defense mechanism interposed on the memory controller.
///
/// Implementations receive mutable access to the DRAM device so they
/// can issue mitigation commands (swaps, targeted refreshes) inline,
/// exactly where a hardware defense would act.
///
/// Hooks must be `Send`: the sharded execution engine mounts one hook
/// chain per DRAM channel and steps the channels on scoped threads, so
/// a mounted hook (inside its controller) crosses thread boundaries.
pub trait DefenseHook: Send {
    /// Inspects a request before it is served. Called once per request
    /// with its mapped DRAM row.
    fn before_access(
        &mut self,
        request: &MemRequest,
        target: RowAddr,
        dram: &mut DramDevice,
    ) -> HookAction;

    /// Observes a row activation caused by a served request (row-buffer
    /// miss). Counter-based defenses update trackers here and may issue
    /// mitigations.
    fn on_activate(&mut self, _row: RowAddr, _dram: &mut DramDevice) {}

    /// Extra cycles the hook adds to every request (e.g. a lock-table
    /// lookup). Charged whether the request is allowed or denied.
    fn check_latency(&self) -> u64 {
        0
    }

    /// Short name for reports.
    fn name(&self) -> &str;

    /// Downcasting support so evaluation harnesses can read a mounted
    /// hook's concrete statistics (swap counts, mitigation counts, …)
    /// after a run. Defenses that expose such statistics return
    /// `Some(self)`; the default hides the hook.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The identity hook: no protection, no overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoDefense;

impl DefenseHook for NoDefense {
    fn before_access(
        &mut self,
        _request: &MemRequest,
        _target: RowAddr,
        _dram: &mut DramDevice,
    ) -> HookAction {
        HookAction::Allow
    }

    fn name(&self) -> &str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    #[test]
    fn no_defense_allows_everything() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut hook = NoDefense;
        let req = MemRequest::read(0, 1);
        let action = hook.before_access(&req, RowAddr::new(0, 0, 0), &mut dram);
        assert_eq!(action, HookAction::Allow);
        assert_eq!(hook.check_latency(), 0);
        assert_eq!(hook.name(), "none");
    }

    #[test]
    fn hook_is_object_safe() {
        let hook: Box<dyn DefenseHook> = Box::new(NoDefense);
        assert_eq!(hook.name(), "none");
    }
}
