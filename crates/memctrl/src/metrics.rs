//! Controller observability: per-[`RequestKind`] latency histograms
//! and outcome counters.
//!
//! [`CtrlMetrics`] is a plain local recorder, not a bundle of shared
//! atomics: the servicing hot path runs under `&mut self`, so every
//! record is a non-atomic add ([`dlk_obs::LocalHistogram`] plus bare
//! `u64` counters) — measurably free even at millions of requests per
//! second, where per-request lock-prefixed RMWs cost ~10% of service
//! throughput. Nothing is shared until
//! [`CtrlMetrics::export_into`] folds the deltas recorded since the
//! last export into a `dlk-obs` registry; exports from many shards
//! land on the same `<prefix>.*` names, which is how a multi-channel
//! engine aggregates into one fleet-wide view. Delta-based export
//! means calling it repeatedly (per drain, per run, per scan) never
//! double-counts.

use dlk_obs::{LocalHistogram, Registry};

use crate::request::RequestKind;

/// Everything a controller records, locally and lock-free.
#[derive(Debug, Clone, Default)]
pub struct CtrlMetrics {
    /// Per-kind service latency in simulated cycles (served requests
    /// and denied requests both record — a denial's check latency is
    /// part of the service distribution, as in the paper's skipped
    /// instructions).
    pub latency_cycles: [LocalHistogram; RequestKind::COUNT],
    /// Requests served against DRAM.
    pub served: u64,
    /// Requests denied by the defense hook.
    pub denied: u64,
    /// Requests redirected by the defense hook.
    pub redirected: u64,
    /// Untrusted requests rejected by OS page protection.
    pub os_faults: u64,
    /// Counter values at the last export, in the order
    /// served/denied/redirected/os_faults.
    exported: [u64; 4],
}

impl CtrlMetrics {
    /// A fresh, empty recorder (what a new controller owns).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed request of `kind` with `latency` cycles.
    #[inline]
    pub fn record_latency(&mut self, kind: RequestKind, latency: u64) {
        self.latency_cycles[kind.index()].record(latency);
    }

    /// Folds everything recorded since the last export into `registry`
    /// under `<prefix>.latency_cycles.<kind>`, `<prefix>.served`,
    /// `<prefix>.denied`, `<prefix>.redirected` and
    /// `<prefix>.os_faults`. Safe to call repeatedly — only deltas are
    /// added, and shards exporting to the same prefix aggregate.
    pub fn export_into(&mut self, registry: &Registry, prefix: &str) {
        for (at, kind) in RequestKind::ALL.iter().enumerate() {
            registry
                .histogram(&format!("{prefix}.latency_cycles.{}", kind.token()))
                .absorb(&mut self.latency_cycles[at]);
        }
        let counters = [
            ("served", self.served),
            ("denied", self.denied),
            ("redirected", self.redirected),
            ("os_faults", self.os_faults),
        ];
        for (at, (name, value)) in counters.into_iter().enumerate() {
            let delta = value - self.exported[at];
            if delta != 0 {
                registry.counter(&format!("{prefix}.{name}")).add(delta);
                self.exported[at] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_delta_based_and_aggregates_across_recorders() {
        let registry = Registry::new();
        let mut a = CtrlMetrics::new();
        let mut b = CtrlMetrics::new();
        a.served += 2;
        a.record_latency(RequestKind::Read, 10);
        b.denied += 1;
        b.record_latency(RequestKind::Read, 30);

        a.export_into(&registry, "memctrl");
        b.export_into(&registry, "memctrl");
        assert_eq!(registry.counter("memctrl.served").get(), 2);
        assert_eq!(registry.counter("memctrl.denied").get(), 1);
        assert_eq!(registry.histogram("memctrl.latency_cycles.read").count(), 2);

        // Re-exporting with nothing new must not double-count.
        a.export_into(&registry, "memctrl");
        assert_eq!(registry.counter("memctrl.served").get(), 2);
        assert_eq!(registry.histogram("memctrl.latency_cycles.read").count(), 2);

        a.served += 1;
        a.export_into(&registry, "memctrl");
        assert_eq!(registry.counter("memctrl.served").get(), 3);
    }

    #[test]
    fn kind_order_matches_index_order() {
        for (at, kind) in RequestKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), at);
        }
    }
}
