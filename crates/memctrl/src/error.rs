//! Error type for memory controller operations.

use std::error::Error;
use std::fmt;

use dlk_dram::DramError;

/// Errors returned by the memory controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemCtrlError {
    /// The underlying DRAM device rejected a command.
    Dram(DramError),
    /// A physical address falls outside the mapped DRAM capacity.
    AddressOutOfRange {
        /// The offending physical byte address.
        addr: u64,
        /// Total mapped capacity in bytes.
        capacity: u64,
    },
    /// A virtual address has no valid page-table entry.
    TranslationFault {
        /// The offending virtual address.
        vaddr: u64,
    },
    /// A request spans a row boundary (requests must fit in one row).
    SpansRowBoundary {
        /// The request's physical byte address.
        addr: u64,
        /// The request length in bytes.
        len: usize,
    },
    /// A trace file could not be parsed.
    TraceParse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for MemCtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemCtrlError::Dram(err) => write!(f, "dram error: {err}"),
            MemCtrlError::AddressOutOfRange { addr, capacity } => {
                write!(f, "physical address {addr:#x} outside capacity {capacity:#x}")
            }
            MemCtrlError::TranslationFault { vaddr } => {
                write!(f, "no valid translation for virtual address {vaddr:#x}")
            }
            MemCtrlError::SpansRowBoundary { addr, len } => {
                write!(f, "request at {addr:#x} of {len} bytes spans a row boundary")
            }
            MemCtrlError::TraceParse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for MemCtrlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MemCtrlError::Dram(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DramError> for MemCtrlError {
    fn from(err: DramError) -> Self {
        MemCtrlError::Dram(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_dram_error_with_source() {
        let err = MemCtrlError::from(DramError::InvalidBank(7));
        assert!(err.to_string().contains("bank"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn translation_fault_displays_hex() {
        let err = MemCtrlError::TranslationFault { vaddr: 0xdead };
        assert!(err.to_string().contains("0xdead"));
    }
}
