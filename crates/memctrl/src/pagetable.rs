//! A DRAM-resident page table.
//!
//! Page-table entries are stored *in DRAM rows* (at a configurable
//! physical base address), exactly like a real kernel's page tables.
//! This is what makes the Page Table Attack (PTA) of the paper possible:
//! RowHammer flips in the PTE rows silently change the physical frame a
//! virtual page points at, redirecting subsequent accesses to
//! attacker-controlled data.
//!
//! Each PTE is 8 bytes: bits `0..48` hold the physical frame number
//! (PFN), bit `63` is the valid bit, the rest are reserved/flag bits.

use serde::{Deserialize, Serialize};
use std::fmt;

use dlk_dram::{DramDevice, RowAddr};

use crate::error::MemCtrlError;
use crate::mapping::AddressMapper;

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtAddr(pub u64);

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// A decoded page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pte {
    /// Physical frame number.
    pub pfn: u64,
    /// Entry is valid (present).
    pub valid: bool,
}

impl Pte {
    const VALID_BIT: u64 = 63;
    const PFN_MASK: u64 = (1 << 48) - 1;

    /// Encodes the PTE to its 8-byte in-memory representation.
    pub fn encode(&self) -> u64 {
        (self.pfn & Self::PFN_MASK) | ((self.valid as u64) << Self::VALID_BIT)
    }

    /// Decodes an 8-byte in-memory representation.
    pub fn decode(raw: u64) -> Self {
        Self { pfn: raw & Self::PFN_MASK, valid: raw >> Self::VALID_BIT & 1 == 1 }
    }
}

/// Page table configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTableConfig {
    /// Page size in bytes (power of two).
    pub page_size: u64,
    /// Physical byte address where the PTE array begins.
    pub base_phys: u64,
    /// Number of virtual pages covered.
    pub num_pages: u64,
}

impl PageTableConfig {
    /// A small configuration for tests: 256-byte pages, 32 pages, table
    /// at physical address 0.
    pub fn tiny_for_tests() -> Self {
        Self { page_size: 256, base_phys: 0, num_pages: 32 }
    }
}

/// A single-level, DRAM-resident page table.
///
/// All reads go through DRAM storage, so disturbance-induced bit flips
/// in the PTE rows are *visible to translation* — there is no shadow
/// copy that would mask an attack.
///
/// # Example
///
/// ```
/// use dlk_dram::{DramConfig, DramDevice, DramGeometry};
/// use dlk_memctrl::{AddressMapper, MappingScheme, PageTable, PageTableConfig, VirtAddr};
///
/// # fn main() -> Result<(), dlk_memctrl::MemCtrlError> {
/// let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
/// let mapper = AddressMapper::new(*dram.geometry(), MappingScheme::BankSequential);
/// let table = PageTable::new(PageTableConfig::tiny_for_tests());
/// table.map(&mut dram, &mapper, 3, 7)?; // vpn 3 -> pfn 7
/// let pa = table.translate(&dram, &mapper, VirtAddr(3 * 256 + 17))?;
/// assert_eq!(pa, 7 * 256 + 17);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTable {
    config: PageTableConfig,
}

impl PageTable {
    const PTE_BYTES: u64 = 8;

    /// Creates a page table descriptor (the entries live in DRAM).
    pub fn new(config: PageTableConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PageTableConfig {
        &self.config
    }

    /// Physical byte address of the PTE for `vpn`.
    pub fn pte_phys_addr(&self, vpn: u64) -> u64 {
        self.config.base_phys + vpn * Self::PTE_BYTES
    }

    /// DRAM location `(row, byte-column)` of the PTE for `vpn`.
    ///
    /// Attackers use this to find which row to hammer and which bits to
    /// target; SoftTRR-style defenses use it to know which rows to guard.
    ///
    /// # Errors
    ///
    /// Returns an error if the PTE array exceeds DRAM capacity.
    pub fn pte_location(
        &self,
        mapper: &AddressMapper,
        vpn: u64,
    ) -> Result<(RowAddr, usize), MemCtrlError> {
        mapper.to_dram(self.pte_phys_addr(vpn))
    }

    /// The bit index *within the PTE row* that holds PFN bit `pfn_bit`
    /// of `vpn`'s entry — the exact target an attacker must flip to
    /// redirect the page by `2^pfn_bit` frames.
    ///
    /// # Errors
    ///
    /// Returns an error if the PTE array exceeds DRAM capacity.
    pub fn pfn_bit_location(
        &self,
        mapper: &AddressMapper,
        vpn: u64,
        pfn_bit: u32,
    ) -> Result<(RowAddr, usize), MemCtrlError> {
        let (row, col) = self.pte_location(mapper, vpn)?;
        Ok((row, col * 8 + pfn_bit as usize))
    }

    /// Installs (or replaces) the mapping `vpn -> pfn` by writing the
    /// encoded PTE into DRAM.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range VPNs or DRAM addresses.
    pub fn map(
        &self,
        dram: &mut DramDevice,
        mapper: &AddressMapper,
        vpn: u64,
        pfn: u64,
    ) -> Result<(), MemCtrlError> {
        self.check_vpn(vpn)?;
        let (row, col) = self.pte_location(mapper, vpn)?;
        let raw = Pte { pfn, valid: true }.encode();
        let mut row_data = dram.read_row(row)?;
        row_data[col..col + 8].copy_from_slice(&raw.to_le_bytes());
        dram.write_row(row, &row_data)?;
        Ok(())
    }

    /// Reads and decodes the PTE for `vpn` from DRAM.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range VPNs or DRAM addresses.
    pub fn read_pte(
        &self,
        dram: &DramDevice,
        mapper: &AddressMapper,
        vpn: u64,
    ) -> Result<Pte, MemCtrlError> {
        self.check_vpn(vpn)?;
        let (row, col) = self.pte_location(mapper, vpn)?;
        let row_data = dram.read_row(row)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&row_data[col..col + 8]);
        Ok(Pte::decode(u64::from_le_bytes(raw)))
    }

    /// Translates a virtual address by walking the DRAM-resident table.
    ///
    /// # Errors
    ///
    /// Returns [`MemCtrlError::TranslationFault`] for unmapped or
    /// invalid entries.
    pub fn translate(
        &self,
        dram: &DramDevice,
        mapper: &AddressMapper,
        vaddr: VirtAddr,
    ) -> Result<u64, MemCtrlError> {
        let vpn = vaddr.0 / self.config.page_size;
        let offset = vaddr.0 % self.config.page_size;
        let pte = self
            .read_pte(dram, mapper, vpn)
            .map_err(|_| MemCtrlError::TranslationFault { vaddr: vaddr.0 })?;
        if !pte.valid {
            return Err(MemCtrlError::TranslationFault { vaddr: vaddr.0 });
        }
        Ok(pte.pfn * self.config.page_size + offset)
    }

    /// All DRAM rows that hold PTEs — the rows a page-table-protecting
    /// defense must lock.
    ///
    /// # Errors
    ///
    /// Returns an error if the PTE array exceeds DRAM capacity.
    pub fn pte_rows(&self, mapper: &AddressMapper) -> Result<Vec<RowAddr>, MemCtrlError> {
        let mut rows = Vec::new();
        let mut last: Option<RowAddr> = None;
        for vpn in 0..self.config.num_pages {
            let (row, _) = self.pte_location(mapper, vpn)?;
            if last != Some(row) {
                rows.push(row);
                last = Some(row);
            }
        }
        rows.dedup();
        Ok(rows)
    }

    fn check_vpn(&self, vpn: u64) -> Result<(), MemCtrlError> {
        if vpn >= self.config.num_pages {
            return Err(MemCtrlError::TranslationFault { vaddr: vpn * self.config.page_size });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingScheme;
    use dlk_dram::DramConfig;

    fn setup() -> (DramDevice, AddressMapper, PageTable) {
        let dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mapper = AddressMapper::new(*dram.geometry(), MappingScheme::BankSequential);
        let table = PageTable::new(PageTableConfig::tiny_for_tests());
        (dram, mapper, table)
    }

    #[test]
    fn pte_encode_decode_roundtrip() {
        let pte = Pte { pfn: 0xABCDE, valid: true };
        assert_eq!(Pte::decode(pte.encode()), pte);
        let invalid = Pte { pfn: 42, valid: false };
        assert_eq!(Pte::decode(invalid.encode()), invalid);
    }

    #[test]
    fn translate_after_map() {
        let (mut dram, mapper, table) = setup();
        table.map(&mut dram, &mapper, 5, 9).unwrap();
        let pa = table.translate(&dram, &mapper, VirtAddr(5 * 256 + 100)).unwrap();
        assert_eq!(pa, 9 * 256 + 100);
    }

    #[test]
    fn unmapped_page_faults() {
        let (dram, mapper, table) = setup();
        let err = table.translate(&dram, &mapper, VirtAddr(4 * 256)).unwrap_err();
        assert!(matches!(err, MemCtrlError::TranslationFault { .. }));
    }

    #[test]
    fn out_of_range_vpn_faults() {
        let (mut dram, mapper, table) = setup();
        assert!(table.map(&mut dram, &mapper, 1000, 0).is_err());
    }

    #[test]
    fn bit_flip_in_dram_changes_translation() {
        // The PTA primitive: flipping PFN bit k in the DRAM-resident PTE
        // redirects the page by 2^k frames.
        let (mut dram, mapper, table) = setup();
        table.map(&mut dram, &mapper, 2, 8).unwrap();
        let (row, bit) = table.pfn_bit_location(&mapper, 2, 1).unwrap();
        dram.flip_bit(row, bit).unwrap();
        let pte = table.read_pte(&dram, &mapper, 2).unwrap();
        assert_eq!(pte.pfn, 8 ^ 0b10);
        let pa = table.translate(&dram, &mapper, VirtAddr(2 * 256)).unwrap();
        assert_eq!(pa, (8 ^ 0b10) * 256);
    }

    #[test]
    fn valid_bit_flip_invalidates_entry() {
        let (mut dram, mapper, table) = setup();
        table.map(&mut dram, &mapper, 1, 3).unwrap();
        let (row, col) = table.pte_location(&mapper, 1).unwrap();
        dram.flip_bit(row, col * 8 + 63).unwrap();
        assert!(table.translate(&dram, &mapper, VirtAddr(256)).is_err());
    }

    #[test]
    fn pte_rows_cover_all_entries() {
        let (_, mapper, table) = setup();
        let rows = table.pte_rows(&mapper).unwrap();
        // 32 PTEs x 8 bytes = 256 bytes; tiny geometry rows are 64 bytes
        // -> 4 rows.
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn remap_overwrites() {
        let (mut dram, mapper, table) = setup();
        table.map(&mut dram, &mapper, 0, 1).unwrap();
        table.map(&mut dram, &mapper, 0, 2).unwrap();
        assert_eq!(table.read_pte(&dram, &mapper, 0).unwrap().pfn, 2);
    }
}
