//! Physical-address to DRAM-coordinate mapping.
//!
//! Two schemes are provided:
//!
//! - [`MappingScheme::RowInterleaved`]: consecutive rows of the physical
//!   address space stripe across banks (`row-major` over `bank`), so
//!   sequential data spreads over banks for parallelism — the common
//!   controller default;
//! - [`MappingScheme::BankSequential`]: a bank's rows are contiguous in
//!   the physical address space, which keeps related data (e.g. one DNN
//!   layer) in one bank/subarray — convenient for reasoning about
//!   adjacency in attacks.
//!
//! Both schemes are bijective over the device capacity; adjacency within
//! a subarray (what RowHammer cares about) is preserved by construction
//! because the low-order `row` bits map to physically adjacent rows.

use serde::{Deserialize, Serialize};

use dlk_dram::{DramGeometry, RowAddr};

use crate::error::MemCtrlError;

/// Address interleaving scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingScheme {
    /// Stripe consecutive rows across banks.
    RowInterleaved,
    /// Fill each bank's rows contiguously.
    BankSequential,
}

/// Maps physical byte addresses to `(RowAddr, column)` pairs and back.
///
/// # Example
///
/// ```
/// use dlk_dram::DramGeometry;
/// use dlk_memctrl::{AddressMapper, MappingScheme};
///
/// let geom = DramGeometry::tiny();
/// let mapper = AddressMapper::new(geom, MappingScheme::BankSequential);
/// let (addr, col) = mapper.to_dram(geom.row_bytes as u64 + 5).unwrap();
/// assert_eq!(col, 5);
/// assert_eq!(mapper.to_phys(addr, col), geom.row_bytes as u64 + 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    geometry: DramGeometry,
    scheme: MappingScheme,
}

impl AddressMapper {
    /// Creates a mapper for a geometry and scheme.
    pub fn new(geometry: DramGeometry, scheme: MappingScheme) -> Self {
        Self { geometry, scheme }
    }

    /// The geometry this mapper covers.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The interleaving scheme.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Total mapped capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.geometry.capacity_bytes()
    }

    /// Maps a physical byte address to a DRAM coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`MemCtrlError::AddressOutOfRange`] beyond capacity.
    pub fn to_dram(&self, phys: u64) -> Result<(RowAddr, usize), MemCtrlError> {
        if phys >= self.capacity() {
            return Err(MemCtrlError::AddressOutOfRange { addr: phys, capacity: self.capacity() });
        }
        let row_bytes = self.geometry.row_bytes as u64;
        let global_row = phys / row_bytes;
        let col = (phys % row_bytes) as usize;
        let addr = match self.scheme {
            MappingScheme::BankSequential => {
                // global_row = ((bank * subarrays + subarray) * rows) + row
                let rows = self.geometry.rows_per_subarray as u64;
                let row = (global_row % rows) as u32;
                let sa_global = global_row / rows;
                let subarray = (sa_global % self.geometry.subarrays_per_bank as u64) as u16;
                let bank = (sa_global / self.geometry.subarrays_per_bank as u64) as u16;
                RowAddr::new(bank, subarray, row)
            }
            MappingScheme::RowInterleaved => {
                // global_row = (row_chunk * banks + bank) ... stripe rows
                // across banks, then advance within the subarray.
                let banks = self.geometry.banks as u64;
                let bank = (global_row % banks) as u16;
                let within_bank = global_row / banks;
                let rows = self.geometry.rows_per_subarray as u64;
                let row = (within_bank % rows) as u32;
                let subarray = (within_bank / rows) as u16;
                RowAddr::new(bank, subarray, row)
            }
        };
        Ok((addr, col))
    }

    /// Inverse of [`AddressMapper::to_dram`].
    pub fn to_phys(&self, addr: RowAddr, col: usize) -> u64 {
        let row_bytes = self.geometry.row_bytes as u64;
        let global_row = match self.scheme {
            MappingScheme::BankSequential => {
                (addr.bank as u64 * self.geometry.subarrays_per_bank as u64 + addr.subarray as u64)
                    * self.geometry.rows_per_subarray as u64
                    + addr.row as u64
            }
            MappingScheme::RowInterleaved => {
                let within_bank =
                    addr.subarray as u64 * self.geometry.rows_per_subarray as u64 + addr.row as u64;
                within_bank * self.geometry.banks as u64 + addr.bank as u64
            }
        };
        global_row * row_bytes + col as u64
    }

    /// The physical byte range `[start, end)` covered by one DRAM row.
    pub fn row_span(&self, addr: RowAddr) -> (u64, u64) {
        let start = self.to_phys(addr, 0);
        (start, start + self.geometry.row_bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mappers() -> Vec<AddressMapper> {
        let geom = DramGeometry::tiny();
        vec![
            AddressMapper::new(geom, MappingScheme::BankSequential),
            AddressMapper::new(geom, MappingScheme::RowInterleaved),
        ]
    }

    #[test]
    fn roundtrip_is_bijective() {
        for mapper in mappers() {
            let row_bytes = mapper.geometry().row_bytes as u64;
            // Sample one address per row plus odd offsets.
            for row in 0..mapper.capacity() / row_bytes {
                let phys = row * row_bytes + (row % row_bytes);
                let (addr, col) = mapper.to_dram(phys).unwrap();
                assert_eq!(mapper.to_phys(addr, col), phys, "{:?}", mapper.scheme());
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        for mapper in mappers() {
            assert!(mapper.to_dram(mapper.capacity()).is_err());
            assert!(mapper.to_dram(u64::MAX).is_err());
        }
    }

    #[test]
    fn bank_sequential_keeps_consecutive_rows_adjacent() {
        let geom = DramGeometry::tiny();
        let mapper = AddressMapper::new(geom, MappingScheme::BankSequential);
        let row_bytes = geom.row_bytes as u64;
        let (a, _) = mapper.to_dram(0).unwrap();
        let (b, _) = mapper.to_dram(row_bytes).unwrap();
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.subarray, b.subarray);
        assert_eq!(b.row, a.row + 1, "physically adjacent rows");
    }

    #[test]
    fn row_interleaved_stripes_across_banks() {
        let geom = DramGeometry::tiny();
        let mapper = AddressMapper::new(geom, MappingScheme::RowInterleaved);
        let row_bytes = geom.row_bytes as u64;
        let (a, _) = mapper.to_dram(0).unwrap();
        let (b, _) = mapper.to_dram(row_bytes).unwrap();
        assert_ne!(a.bank, b.bank, "consecutive rows should hit different banks");
    }

    #[test]
    fn row_span_covers_row_bytes() {
        for mapper in mappers() {
            let (addr, _) = mapper.to_dram(12345).unwrap();
            let (start, end) = mapper.row_span(addr);
            assert_eq!(end - start, mapper.geometry().row_bytes as u64);
            assert!((start..end).contains(&12345));
        }
    }

    #[test]
    fn full_coverage_no_collisions_bank_sequential() {
        let geom = DramGeometry::tiny();
        let mapper = AddressMapper::new(geom, MappingScheme::BankSequential);
        let mut seen = std::collections::HashSet::new();
        let row_bytes = geom.row_bytes as u64;
        for phys in (0..mapper.capacity()).step_by(row_bytes as usize) {
            let (addr, _) = mapper.to_dram(phys).unwrap();
            assert!(seen.insert(addr), "collision at {phys:#x}");
        }
        assert_eq!(seen.len() as u64, geom.total_rows());
    }
}
