//! Memory requests.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Kind of memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Read `len` bytes.
    Read,
    /// Write the attached payload.
    Write,
}

impl RequestKind {
    /// Number of request kinds — the length of per-kind action tables.
    pub const COUNT: usize = 2;

    /// Dense index into per-kind action tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RequestKind::Read => 0,
            RequestKind::Write => 1,
        }
    }

    /// Lower-case label used in metric names, in [`RequestKind::index`]
    /// order.
    pub fn token(self) -> &'static str {
        match self {
            RequestKind::Read => "read",
            RequestKind::Write => "write",
        }
    }

    /// All kinds, in [`RequestKind::index`] order.
    pub const ALL: [RequestKind; RequestKind::COUNT] = [RequestKind::Read, RequestKind::Write];
}

/// A memory request addressed by physical byte address.
///
/// # Example
///
/// ```
/// use dlk_memctrl::MemRequest;
/// let write = MemRequest::write(0x1000, vec![0xFF; 8]);
/// let read = MemRequest::read(0x1000, 8);
/// assert_ne!(write.id, read.id);
/// assert_eq!(read.len, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique, monotonically increasing request id.
    pub id: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Physical byte address.
    pub addr: u64,
    /// Number of bytes to read or write.
    pub len: usize,
    /// Payload for writes (empty for reads).
    pub payload: Vec<u8>,
    /// `true` if the request was issued by an untrusted process
    /// (attacker-controlled) — defenses may use this only for
    /// accounting; DRAM-Locker itself never needs it (it denies by
    /// address, not by origin).
    pub untrusted: bool,
}

impl MemRequest {
    /// Creates a read request of `len` bytes at `addr`.
    pub fn read(addr: u64, len: usize) -> Self {
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            kind: RequestKind::Read,
            addr,
            len,
            payload: Vec::new(),
            untrusted: false,
        }
    }

    /// Creates a write request with the given payload.
    pub fn write(addr: u64, payload: Vec<u8>) -> Self {
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            kind: RequestKind::Write,
            addr,
            len: payload.len(),
            payload,
            untrusted: false,
        }
    }

    /// Marks the request as attacker-issued.
    pub fn untrusted(mut self) -> Self {
        self.untrusted = true;
        self
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            RequestKind::Read => "R",
            RequestKind::Write => "W",
        };
        write!(f, "{kind}#{} {:#x}+{}", self.id, self.addr, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let a = MemRequest::read(0, 1);
        let b = MemRequest::read(0, 1);
        assert!(b.id > a.id);
    }

    #[test]
    fn write_captures_payload_len() {
        let req = MemRequest::write(0x80, vec![1, 2, 3, 4]);
        assert_eq!(req.len, 4);
        assert_eq!(req.kind, RequestKind::Write);
    }

    #[test]
    fn untrusted_flag() {
        let req = MemRequest::read(0, 1).untrusted();
        assert!(req.untrusted);
        assert!(!MemRequest::read(0, 1).untrusted);
    }

    #[test]
    fn display_shows_kind_and_addr() {
        let req = MemRequest::read(0x40, 8);
        let text = req.to_string();
        assert!(text.starts_with('R') && text.contains("0x40"));
    }
}
