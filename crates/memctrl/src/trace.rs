//! Request traces: generation and replay.
//!
//! Traces model the workloads that drive the evaluation — a victim's
//! DNN weight reads, background traffic, and attacker hammer loops. A
//! hammer loop alternates between two rows of the same bank so every
//! access conflicts in the row buffer and forces an ACT, the classic
//! double-sided-free hammer pattern.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::controller::{CompletedRequest, MemoryController};
use crate::error::MemCtrlError;
use crate::request::MemRequest;

/// One operation in a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Read `len` bytes at `addr`.
    Read {
        /// Physical byte address.
        addr: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Write `payload` at `addr`.
    Write {
        /// Physical byte address.
        addr: u64,
        /// Bytes to write.
        payload: Vec<u8>,
    },
}

impl TraceOp {
    fn to_request(&self, untrusted: bool) -> MemRequest {
        let req = match self {
            TraceOp::Read { addr, len } => MemRequest::read(*addr, *len),
            TraceOp::Write { addr, payload } => MemRequest::write(*addr, payload.clone()),
        };
        if untrusted {
            req.untrusted()
        } else {
            req
        }
    }
}

/// A sequence of memory operations.
///
/// # Example
///
/// ```
/// use dlk_memctrl::Trace;
/// let trace = Trace::sequential_reads(0, 8, 4, 16);
/// assert_eq!(trace.len(), 16);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<TraceOp>,
    /// Whether replayed requests are marked attacker-issued.
    pub untrusted: bool,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// `count` reads of `len` bytes each, starting at `base`, advancing
    /// by `stride` bytes.
    pub fn sequential_reads(base: u64, stride: u64, len: usize, count: usize) -> Self {
        let ops =
            (0..count).map(|i| TraceOp::Read { addr: base + i as u64 * stride, len }).collect();
        Self { ops, untrusted: false }
    }

    /// `count` uniformly random reads of `len` bytes inside
    /// `[0, capacity - len]`, deterministic for a given `seed`.
    pub fn random_reads(capacity: u64, len: usize, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = (0..count)
            .map(|_| TraceOp::Read { addr: rng.random_range(0..capacity - len as u64), len })
            .collect();
        Self { ops, untrusted: false }
    }

    /// A hammer loop: `iterations` alternating 1-byte reads of two
    /// addresses (put them in the same bank, different rows, to force a
    /// row-buffer conflict and thus an ACT per access).
    pub fn hammer_pair(addr_a: u64, addr_b: u64, iterations: usize) -> Self {
        let mut ops = Vec::with_capacity(iterations * 2);
        for _ in 0..iterations {
            ops.push(TraceOp::Read { addr: addr_a, len: 1 });
            ops.push(TraceOp::Read { addr: addr_b, len: 1 });
        }
        Self { ops, untrusted: true }
    }

    /// Replays the trace through a controller, returning completions.
    ///
    /// # Errors
    ///
    /// Stops at the first request the controller rejects.
    pub fn replay(
        &self,
        controller: &mut MemoryController,
    ) -> Result<Vec<CompletedRequest>, MemCtrlError> {
        let mut done = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            done.push(controller.service(op.to_request(self.untrusted))?);
        }
        Ok(done)
    }
}

impl Extend<TraceOp> for Trace {
    fn extend<T: IntoIterator<Item = TraceOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceOp>>(iter: T) -> Self {
        Self { ops: iter.into_iter().collect(), untrusted: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MemCtrlConfig;

    #[test]
    fn sequential_reads_layout() {
        let trace = Trace::sequential_reads(100, 10, 2, 3);
        assert_eq!(
            trace.ops(),
            &[
                TraceOp::Read { addr: 100, len: 2 },
                TraceOp::Read { addr: 110, len: 2 },
                TraceOp::Read { addr: 120, len: 2 },
            ]
        );
    }

    #[test]
    fn random_reads_are_deterministic_per_seed() {
        let a = Trace::random_reads(1 << 16, 4, 20, 7);
        let b = Trace::random_reads(1 << 16, 4, 20, 7);
        let c = Trace::random_reads(1 << 16, 4, 20, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hammer_pair_forces_activations() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let row_bytes = ctrl.geometry().row_bytes as u64;
        // Two rows in the same bank/subarray (BankSequential mapping).
        let trace = Trace::hammer_pair(10 * row_bytes, 12 * row_bytes, 50);
        let done = trace.replay(&mut ctrl).unwrap();
        assert_eq!(done.len(), 100);
        // Every access after the first misses the row buffer.
        assert_eq!(ctrl.dram().stats().row_buffer_misses, 100);
        assert!(done.iter().all(|c| c.request.untrusted));
    }

    #[test]
    fn replay_roundtrips_data() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let mut trace = Trace::new();
        trace.push(TraceOp::Write { addr: 5, payload: vec![1, 2] });
        trace.push(TraceOp::Read { addr: 5, len: 2 });
        let done = trace.replay(&mut ctrl).unwrap();
        assert_eq!(done[1].data.as_deref(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn collect_from_iterator() {
        let trace: Trace = (0..4).map(|i| TraceOp::Read { addr: i * 8, len: 1 }).collect();
        assert_eq!(trace.len(), 4);
        assert!(!trace.untrusted);
    }
}
