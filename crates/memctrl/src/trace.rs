//! Request traces: generation and replay.
//!
//! Traces model the workloads that drive the evaluation — a victim's
//! DNN weight reads, background traffic, and attacker hammer loops. A
//! hammer loop alternates between two rows of the same bank so every
//! access conflicts in the row buffer and forces an ACT, the classic
//! double-sided-free hammer pattern.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::controller::{CompletedRequest, MemoryController};
use crate::error::MemCtrlError;
use crate::request::MemRequest;

/// One operation in a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Read `len` bytes at `addr`.
    Read {
        /// Physical byte address.
        addr: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Write `payload` at `addr`.
    Write {
        /// Physical byte address.
        addr: u64,
        /// Bytes to write.
        payload: Vec<u8>,
    },
}

impl TraceOp {
    fn to_request(&self, untrusted: bool) -> MemRequest {
        let req = match self {
            TraceOp::Read { addr, len } => MemRequest::read(*addr, *len),
            TraceOp::Write { addr, payload } => MemRequest::write(*addr, payload.clone()),
        };
        if untrusted {
            req.untrusted()
        } else {
            req
        }
    }
}

/// A sequence of memory operations.
///
/// # Example
///
/// ```
/// use dlk_memctrl::Trace;
/// let trace = Trace::sequential_reads(0, 8, 4, 16);
/// assert_eq!(trace.len(), 16);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<TraceOp>,
    /// Whether replayed requests are marked attacker-issued.
    pub untrusted: bool,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// `count` reads of `len` bytes each, starting at `base`, advancing
    /// by `stride` bytes.
    pub fn sequential_reads(base: u64, stride: u64, len: usize, count: usize) -> Self {
        let ops =
            (0..count).map(|i| TraceOp::Read { addr: base + i as u64 * stride, len }).collect();
        Self { ops, untrusted: false }
    }

    /// `count` uniformly random reads of `len` bytes inside
    /// `[0, capacity - len]`, deterministic for a given `seed`.
    pub fn random_reads(capacity: u64, len: usize, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = (0..count)
            .map(|_| TraceOp::Read { addr: rng.random_range(0..capacity - len as u64), len })
            .collect();
        Self { ops, untrusted: false }
    }

    /// A hammer loop: `iterations` alternating 1-byte reads of two
    /// addresses (put them in the same bank, different rows, to force a
    /// row-buffer conflict and thus an ACT per access).
    pub fn hammer_pair(addr_a: u64, addr_b: u64, iterations: usize) -> Self {
        let mut ops = Vec::with_capacity(iterations * 2);
        for _ in 0..iterations {
            ops.push(TraceOp::Read { addr: addr_a, len: 1 });
            ops.push(TraceOp::Read { addr: addr_b, len: 1 });
        }
        Self { ops, untrusted: true }
    }

    /// Replays the trace through a controller, returning completions.
    ///
    /// # Errors
    ///
    /// Stops at the first request the controller rejects.
    pub fn replay(
        &self,
        controller: &mut MemoryController,
    ) -> Result<Vec<CompletedRequest>, MemCtrlError> {
        let mut done = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            done.push(controller.service(op.to_request(self.untrusted))?);
        }
        Ok(done)
    }

    /// The requests this trace issues, in order, with the trace's trust
    /// level applied — the routing-friendly form consumed by the
    /// sharded execution engine.
    pub fn requests(&self) -> impl Iterator<Item = MemRequest> + '_ {
        self.ops.iter().map(|op| op.to_request(self.untrusted))
    }

    /// Serializes the trace to the workspace's line-based trace-file
    /// format (the vendored `serde` stub is marker-only, so this codec
    /// *is* the on-disk representation recorded traces replay from):
    ///
    /// ```text
    /// # dlk-trace v1 untrusted=1
    /// R 0x1000 4
    /// W 0x2040 0a0bff
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = format!("# dlk-trace v1 untrusted={}\n", u8::from(self.untrusted));
        for op in &self.ops {
            match op {
                TraceOp::Read { addr, len } => {
                    out.push_str(&format!("R {addr:#x} {len}\n"));
                }
                TraceOp::Write { addr, payload } => {
                    out.push_str(&format!("W {addr:#x} "));
                    if payload.is_empty() {
                        // Explicit marker so the record keeps three
                        // fields and round-trips.
                        out.push('-');
                    }
                    for byte in payload {
                        out.push_str(&format!("{byte:02x}"));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parses a trace from the format produced by [`Trace::to_text`].
    /// Blank lines and `#` comments are skipped (the header comment is
    /// recognized for the `untrusted` flag).
    ///
    /// # Errors
    ///
    /// Returns [`MemCtrlError::TraceParse`] with the offending line.
    pub fn from_text(text: &str) -> Result<Self, MemCtrlError> {
        let parse_error = |line: usize, reason: &str| MemCtrlError::TraceParse {
            line,
            reason: reason.to_owned(),
        };
        let mut trace = Trace::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let record = raw.trim();
            if record.is_empty() {
                continue;
            }
            if let Some(comment) = record.strip_prefix('#') {
                // Only the codec's own header carries the trust flag;
                // free-form comments are never interpreted.
                let mut header = comment.split_whitespace();
                if header.next() == Some("dlk-trace") && header.any(|field| field == "untrusted=1")
                {
                    trace.untrusted = true;
                }
                continue;
            }
            let mut fields = record.split_whitespace();
            let kind = fields.next().expect("non-empty record has a first field");
            let addr_field =
                fields.next().ok_or_else(|| parse_error(line, "missing address field"))?;
            let addr = parse_u64(addr_field)
                .ok_or_else(|| parse_error(line, "address is not a number"))?;
            match kind {
                "R" => {
                    let len_field =
                        fields.next().ok_or_else(|| parse_error(line, "missing read length"))?;
                    let len = len_field
                        .parse::<usize>()
                        .map_err(|_| parse_error(line, "read length is not a number"))?;
                    trace.push(TraceOp::Read { addr, len });
                }
                "W" => {
                    let hex =
                        fields.next().ok_or_else(|| parse_error(line, "missing write payload"))?;
                    let payload = parse_hex(hex)
                        .ok_or_else(|| parse_error(line, "payload is not even-length hex"))?;
                    trace.push(TraceOp::Write { addr, payload });
                }
                other => {
                    return Err(parse_error(line, &format!("unknown record kind '{other}'")));
                }
            }
            if fields.next().is_some() {
                return Err(parse_error(line, "trailing fields"));
            }
        }
        Ok(trace)
    }

    /// Round-robin interleave of several tenants' traces into one
    /// stream, preserving each tenant's internal order — the
    /// multi-tenant workload the sharded engine replays. The result is
    /// untrusted iff any input is.
    pub fn interleave(tenants: &[Trace]) -> Self {
        let total = tenants.iter().map(Trace::len).sum();
        let mut ops = Vec::with_capacity(total);
        let mut cursor = 0;
        while ops.len() < total {
            for tenant in tenants {
                if let Some(op) = tenant.ops.get(cursor) {
                    ops.push(op.clone());
                }
            }
            cursor += 1;
        }
        Self { ops, untrusted: tenants.iter().any(|t| t.untrusted) }
    }
}

fn parse_u64(field: &str) -> Option<u64> {
    match field.strip_prefix("0x").or_else(|| field.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => field.parse().ok(),
    }
}

fn parse_hex(hex: &str) -> Option<Vec<u8>> {
    if hex == "-" {
        return Some(Vec::new());
    }
    // Work on bytes: fixed-offset `&str` slicing would panic on
    // multi-byte UTF-8 in a corrupted trace file.
    let digit = |byte: u8| (byte as char).to_digit(16).map(|d| d as u8);
    hex.as_bytes()
        .chunks(2)
        .map(|pair| match *pair {
            [hi, lo] => Some(digit(hi)? << 4 | digit(lo)?),
            _ => None, // odd-length payload
        })
        .collect()
}

impl Extend<TraceOp> for Trace {
    fn extend<T: IntoIterator<Item = TraceOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceOp>>(iter: T) -> Self {
        Self { ops: iter.into_iter().collect(), untrusted: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MemCtrlConfig;

    #[test]
    fn sequential_reads_layout() {
        let trace = Trace::sequential_reads(100, 10, 2, 3);
        assert_eq!(
            trace.ops(),
            &[
                TraceOp::Read { addr: 100, len: 2 },
                TraceOp::Read { addr: 110, len: 2 },
                TraceOp::Read { addr: 120, len: 2 },
            ]
        );
    }

    #[test]
    fn random_reads_are_deterministic_per_seed() {
        let a = Trace::random_reads(1 << 16, 4, 20, 7);
        let b = Trace::random_reads(1 << 16, 4, 20, 7);
        let c = Trace::random_reads(1 << 16, 4, 20, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hammer_pair_forces_activations() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let row_bytes = ctrl.geometry().row_bytes as u64;
        // Two rows in the same bank/subarray (BankSequential mapping).
        let trace = Trace::hammer_pair(10 * row_bytes, 12 * row_bytes, 50);
        let done = trace.replay(&mut ctrl).unwrap();
        assert_eq!(done.len(), 100);
        // Every access after the first misses the row buffer.
        assert_eq!(ctrl.dram().stats().row_buffer_misses, 100);
        assert!(done.iter().all(|c| c.request.untrusted));
    }

    #[test]
    fn replay_roundtrips_data() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let mut trace = Trace::new();
        trace.push(TraceOp::Write { addr: 5, payload: vec![1, 2] });
        trace.push(TraceOp::Read { addr: 5, len: 2 });
        let done = trace.replay(&mut ctrl).unwrap();
        assert_eq!(done[1].data.as_deref(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn collect_from_iterator() {
        let trace: Trace = (0..4).map(|i| TraceOp::Read { addr: i * 8, len: 1 }).collect();
        assert_eq!(trace.len(), 4);
        assert!(!trace.untrusted);
    }

    #[test]
    fn text_codec_roundtrips() {
        let mut trace = Trace::hammer_pair(0x100, 0x300, 2);
        trace.push(TraceOp::Write { addr: 5, payload: vec![0x0A, 0xFF, 0x00] });
        let text = trace.to_text();
        assert!(text.starts_with("# dlk-trace v1 untrusted=1\n"));
        assert!(text.contains("W 0x5 0aff00"));
        assert_eq!(Trace::from_text(&text).unwrap(), trace);
    }

    #[test]
    fn text_codec_accepts_decimal_and_comments() {
        let parsed = Trace::from_text("# recorded on machine X\n\nR 256 4\nW 0x10 abcd\n").unwrap();
        assert_eq!(
            parsed.ops(),
            &[
                TraceOp::Read { addr: 256, len: 4 },
                TraceOp::Write { addr: 0x10, payload: vec![0xAB, 0xCD] },
            ]
        );
        assert!(!parsed.untrusted);
    }

    #[test]
    fn text_codec_reports_the_offending_line() {
        let err = Trace::from_text("R 0x0 1\nX 0x0 1\n").unwrap_err();
        assert!(matches!(err, MemCtrlError::TraceParse { line: 2, .. }), "{err:?}");
        let err = Trace::from_text("W 0x0 abc\n").unwrap_err();
        assert!(matches!(err, MemCtrlError::TraceParse { line: 1, .. }), "{err:?}");
        assert!(Trace::from_text("R 0x0 1 extra\n").is_err());
    }

    #[test]
    fn empty_text_parses_to_empty_trace() {
        let trace = Trace::from_text("").unwrap();
        assert!(trace.is_empty());
        assert_eq!(Trace::from_text(&trace.to_text()).unwrap(), trace);
    }

    #[test]
    fn empty_write_payload_roundtrips() {
        let mut trace = Trace::new();
        trace.push(TraceOp::Write { addr: 0x40, payload: Vec::new() });
        let text = trace.to_text();
        assert!(text.contains("W 0x40 -"));
        assert_eq!(Trace::from_text(&text).unwrap(), trace);
    }

    #[test]
    fn multibyte_utf8_payload_is_an_error_not_a_panic() {
        let err = Trace::from_text("W 0x0 \u{20AC}a\n").unwrap_err();
        assert!(matches!(err, MemCtrlError::TraceParse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn only_the_codec_header_sets_the_trust_flag() {
        let text = "# note: untrusted=1 was NOT used for this capture\nR 0x0 1\n";
        assert!(!Trace::from_text(text).unwrap().untrusted);
        assert!(!Trace::from_text("# dlk-trace v1 untrusted=10\nR 0x0 1\n").unwrap().untrusted);
        assert!(Trace::from_text("# dlk-trace v1 untrusted=1\nR 0x0 1\n").unwrap().untrusted);
    }

    #[test]
    fn interleave_round_robins_tenants() {
        let a = Trace::sequential_reads(0, 8, 1, 3);
        let b = Trace::hammer_pair(100, 200, 1);
        let mix = Trace::interleave(&[a.clone(), b.clone()]);
        assert_eq!(mix.len(), a.len() + b.len());
        assert!(mix.untrusted, "one untrusted tenant taints the mix");
        assert_eq!(mix.ops()[0], a.ops()[0]);
        assert_eq!(mix.ops()[1], b.ops()[0]);
        assert_eq!(mix.ops()[2], a.ops()[1]);
        // Tenant a's internal order is preserved.
        let a_ops: Vec<_> = mix.ops().iter().filter(|op| a.ops().contains(op)).collect();
        assert_eq!(a_ops.len(), a.len());
    }
}
