//! An analytical SRAM/CAM/DRAM array model (the CACTI + Design
//! Compiler stand-in).
//!
//! Latency, energy and area follow the standard first-order scaling
//! laws: access time grows with the logarithm of capacity (decoder
//! depth) plus a wire term growing with its square root; per-access
//! energy grows with word-line/bit-line length; area is cell count
//! times a per-technology cell size (6T SRAM ≈ 146 F², ternary CAM ≈
//! 340 F², DRAM ≈ 6 F²; F = 45 nm). Constants are tuned to the usual
//! 45 nm corner figures (a 56 KB SRAM reads in ~1 ns).

use serde::{Deserialize, Serialize};

/// Memory array technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayKind {
    /// 6T SRAM.
    Sram,
    /// Ternary CAM.
    Cam,
    /// 1T1C DRAM.
    Dram,
}

impl ArrayKind {
    /// Cell size in F² at the model's technology node.
    pub fn cell_f2(&self) -> f64 {
        match self {
            ArrayKind::Sram => 146.0,
            ArrayKind::Cam => 340.0,
            ArrayKind::Dram => 6.0,
        }
    }

    /// Base access latency in nanoseconds for a 1 KB array.
    fn base_latency_ns(&self) -> f64 {
        match self {
            ArrayKind::Sram => 0.35,
            ArrayKind::Cam => 0.55,
            ArrayKind::Dram => 8.0,
        }
    }

    /// Base access energy in picojoules for a 1 KB array.
    fn base_energy_pj(&self) -> f64 {
        match self {
            ArrayKind::Sram => 0.6,
            ArrayKind::Cam => 2.4,
            ArrayKind::Dram => 18.0,
        }
    }
}

/// One modeled array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayModel {
    /// Technology.
    pub kind: ArrayKind,
    /// Capacity in bytes.
    pub bytes: u64,
    /// Access latency, ns.
    pub access_ns: f64,
    /// Per-access energy, pJ.
    pub access_pj: f64,
    /// Area, mm².
    pub area_mm2: f64,
}

/// The analytical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CactiModel {
    /// Feature size in nanometers.
    pub feature_nm: f64,
}

impl Default for CactiModel {
    fn default() -> Self {
        Self { feature_nm: 45.0 }
    }
}

impl CactiModel {
    /// Creates the 45 nm model used throughout the paper.
    pub fn nm45() -> Self {
        Self::default()
    }

    /// Models an array of `bytes` capacity in the given technology.
    pub fn array(&self, kind: ArrayKind, bytes: u64) -> ArrayModel {
        let kb = (bytes.max(1) as f64 / 1024.0).max(1.0);
        // Decoder term: log2 of capacity; wire term: sqrt of capacity.
        let access_ns = kind.base_latency_ns() * (1.0 + 0.12 * kb.log2() + 0.015 * kb.sqrt());
        let access_pj = kind.base_energy_pj() * (1.0 + 0.25 * kb.sqrt());
        let f_m = self.feature_nm * 1e-9;
        let cell_m2 = kind.cell_f2() * f_m * f_m;
        let area_mm2 = bytes as f64 * 8.0 * cell_m2 * 1e6 * 1.35; // 35% periphery
        ArrayModel { kind, bytes, access_ns, access_pj, area_mm2 }
    }

    /// The DRAM-Locker lock-table: 56 KB of SRAM.
    pub fn lock_table(&self) -> ArrayModel {
        self.array(ArrayKind::Sram, 56 * 1024)
    }

    /// Area of an added structure as a percentage of a DRAM die of
    /// `die_bytes` capacity.
    pub fn area_overhead_pct(&self, added: &ArrayModel, die_bytes: u64) -> f64 {
        let die = self.array(ArrayKind::Dram, die_bytes);
        added.area_mm2 / die.area_mm2 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_arrays_are_slower_and_hungrier() {
        let model = CactiModel::nm45();
        let small = model.array(ArrayKind::Sram, 8 * 1024);
        let large = model.array(ArrayKind::Sram, 1024 * 1024);
        assert!(large.access_ns > small.access_ns);
        assert!(large.access_pj > small.access_pj);
        assert!(large.area_mm2 > small.area_mm2);
    }

    #[test]
    fn per_bit_area_ordering_cam_sram_dram() {
        let model = CactiModel::nm45();
        let bytes = 64 * 1024;
        let cam = model.array(ArrayKind::Cam, bytes).area_mm2;
        let sram = model.array(ArrayKind::Sram, bytes).area_mm2;
        let dram = model.array(ArrayKind::Dram, bytes).area_mm2;
        assert!(cam > sram && sram > dram);
    }

    #[test]
    fn lock_table_lookup_is_fast() {
        // The lock-table check must fit in a cycle or two of the memory
        // controller (the paper charges one cycle).
        let table = CactiModel::nm45().lock_table();
        assert!(table.access_ns < 2.0, "lock-table access {} ns", table.access_ns);
    }

    #[test]
    fn locker_area_overhead_is_tiny() {
        // Table I: DRAM-Locker adds 0.02% area to a 32 GB module.
        let model = CactiModel::nm45();
        let table = model.lock_table();
        let pct = model.area_overhead_pct(&table, 32 << 30);
        assert!(pct < 0.1, "area overhead {pct}%");
    }

    #[test]
    fn dram_access_slower_than_sram() {
        let model = CactiModel::nm45();
        let sram = model.array(ArrayKind::Sram, 64 * 1024);
        let dram = model.array(ArrayKind::Dram, 64 * 1024);
        assert!(dram.access_ns > sram.access_ns);
    }
}
