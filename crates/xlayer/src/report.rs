//! Experiment output: ASCII tables, series and CSV export.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular result table.
///
/// # Example
///
/// ```
/// use dlk_xlayer::Table;
/// let mut table = Table::new("demo", &["x", "y"]);
/// table.row(&["1", "2"]);
/// let text = table.to_string();
/// assert!(text.contains("demo") && text.contains('1'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Title shown above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells.iter().map(|c| (*c).to_owned()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Serializes as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (index, cell) in cells.iter().enumerate() {
                write!(f, "| {:width$} ", cell, width = widths[index])?;
            }
            writeln!(f, "|")
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// A named (x, y) series — one curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Final y value (NaN for empty series).
    pub fn last_y(&self) -> f64 {
        self.points.last().map_or(f64::NAN, |&(_, y)| y)
    }

    /// Renders several series as a compact ASCII listing, one line per
    /// x value, one column per series.
    pub fn render_all(title: &str, series: &[Series]) -> String {
        let mut out = format!("== {title} ==\n");
        out.push('x');
        for s in series {
            out.push_str(&format!("\t{}", s.label));
        }
        out.push('\n');
        let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        for index in 0..n {
            let x = series
                .iter()
                .find_map(|s| s.points.get(index).map(|&(x, _)| x))
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{x:.0}"));
            for s in series {
                match s.points.get(index) {
                    Some(&(_, y)) => out.push_str(&format!("\t{y:.6}")),
                    None => out.push_str("\t-"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_alignment() {
        let mut table = Table::new("t", &["name", "value"]);
        table.row(&["alpha", "1"]);
        table.row(&["b", "10000"]);
        let text = table.to_string();
        assert!(text.contains("== t =="));
        assert!(text.contains("alpha"));
        assert!(text.contains("10000"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut table = Table::new("t", &["a", "b"]);
        table.row(&["only-one"]);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut table = Table::new("t", &["a", "b"]);
        table.row(&["1", "2"]);
        let csv = table.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn series_render_includes_all_labels() {
        let mut a = Series::new("bfa");
        a.push(0.0, 0.9);
        a.push(1.0, 0.5);
        let mut b = Series::new("random");
        b.push(0.0, 0.9);
        b.push(1.0, 0.8);
        let text = Series::render_all("fig", &[a.clone(), b]);
        assert!(text.contains("bfa") && text.contains("random"));
        assert_eq!(a.last_y(), 0.5);
    }
}
