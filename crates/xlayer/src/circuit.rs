//! Circuit-level Monte-Carlo of the in-DRAM SWAP (§IV-D).
//!
//! Stands in for the paper's Cadence Spectre simulation on the 45 nm
//! NCSU PDK. A RowClone copy succeeds when the charge-sharing swing on
//! the bit-line is large enough for the sense amplifier to latch before
//! the back-to-back destination activation:
//!
//! `ΔV = (VDD/2) · C_cell / (C_cell + C_bl)`, scaled by the access
//! transistor's drive strength. Cell capacitance, bit-line capacitance,
//! word-line driver strength and transistor strength all vary with
//! process; each trial draws them from a truncated Gaussian
//! (`σ = variation/3`, truncated at ±variation — the worst-case-corner
//! convention). A trial fails when the achieved margin falls below the
//! sense threshold, which is calibrated so the failure rates match the
//! paper: 0% at ±0%, ≈0.14% at ±10%, ≈9.6% at ±20% variation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Nominal 45 nm cell electricals and the calibrated sense threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Cell capacitance, fF.
    pub cell_cap_ff: f64,
    /// Bit-line capacitance, fF.
    pub bitline_cap_ff: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Sense succeeds when `margin ≥ threshold_fraction · nominal`.
    /// Calibrated to reproduce the paper's §IV-D failure rates.
    pub threshold_fraction: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self { cell_cap_ff: 24.0, bitline_cap_ff: 85.0, vdd: 1.1, threshold_fraction: 0.87 }
    }
}

impl VariationConfig {
    /// Nominal bit-line swing in volts.
    pub fn nominal_swing(&self) -> f64 {
        (self.vdd / 2.0) * self.cell_cap_ff / (self.cell_cap_ff + self.bitline_cap_ff)
    }
}

/// Result of one Monte-Carlo campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Parameter variation (e.g. 0.2 for ±20%).
    pub variation: f64,
    /// Trials run.
    pub trials: u64,
    /// Trials whose SWAP copy failed.
    pub failures: u64,
}

impl MonteCarloReport {
    /// Failure rate in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Failure rate in percent.
    pub fn failure_pct(&self) -> f64 {
        self.failure_rate() * 100.0
    }
}

/// The Monte-Carlo engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonteCarlo {
    config: VariationConfig,
}

impl MonteCarlo {
    /// Creates an engine.
    pub fn new(config: VariationConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// Samples one varied parameter multiplier: truncated Gaussian with
    /// `σ = variation/3`, clamped to ±variation.
    fn sample_factor(rng: &mut StdRng, variation: f64) -> f64 {
        if variation == 0.0 {
            return 1.0;
        }
        let sigma = variation / 3.0;
        // Box-Muller.
        let u1: f64 = rng.random_range(1e-12f64..1.0);
        let u2: f64 = rng.random_range(0.0f64..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        1.0 + (z * sigma).clamp(-variation, variation)
    }

    /// Simulates one SWAP row-copy; returns `true` on success.
    pub fn trial(&self, rng: &mut StdRng, variation: f64) -> bool {
        let cell = self.config.cell_cap_ff * Self::sample_factor(rng, variation);
        let bitline = self.config.bitline_cap_ff * Self::sample_factor(rng, variation);
        let drive = Self::sample_factor(rng, variation);
        let swing = (self.config.vdd / 2.0) * cell / (cell + bitline) * drive;
        swing >= self.config.threshold_fraction * self.config.nominal_swing()
    }

    /// Runs `trials` SWAP copies at ±`variation` (fraction, e.g. 0.2).
    pub fn run(&self, variation: f64, trials: u64, seed: u64) -> MonteCarloReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failures = 0;
        for _ in 0..trials {
            if !self.trial(&mut rng, variation) {
                failures += 1;
            }
        }
        MonteCarloReport { variation, trials, failures }
    }

    /// The paper's sweep: 10,000 trials at ±0%, ±10% and ±20%.
    pub fn paper_sweep(&self, seed: u64) -> Vec<MonteCarloReport> {
        [0.0, 0.10, 0.20].iter().map(|&v| self.run(v, 10_000, seed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_variation_never_fails() {
        let report = MonteCarlo::default().run(0.0, 10_000, 7);
        assert_eq!(report.failures, 0);
    }

    #[test]
    fn ten_percent_variation_fails_rarely() {
        // Paper: 0.14% at ±10%.
        let report = MonteCarlo::default().run(0.10, 10_000, 7);
        let pct = report.failure_pct();
        assert!(pct < 1.0, "got {pct}%");
    }

    #[test]
    fn twenty_percent_variation_fails_about_ten_percent() {
        // Paper: 9.6% at ±20%.
        let report = MonteCarlo::default().run(0.20, 10_000, 7);
        let pct = report.failure_pct();
        assert!((6.0..14.0).contains(&pct), "got {pct}%");
    }

    #[test]
    fn failure_rate_monotone_in_variation() {
        let mc = MonteCarlo::default();
        let rates: Vec<f64> = [0.0, 0.05, 0.10, 0.15, 0.20]
            .iter()
            .map(|&v| mc.run(v, 5_000, 3).failure_rate())
            .collect();
        for pair in rates.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9, "rates {rates:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mc = MonteCarlo::default();
        assert_eq!(mc.run(0.2, 1_000, 5), mc.run(0.2, 1_000, 5));
        assert_ne!(mc.run(0.2, 10_000, 5).failures, 0);
    }

    #[test]
    fn nominal_swing_is_reasonable() {
        // ~120 mV swing for 24fF/85fF at 1.1 V.
        let swing = VariationConfig::default().nominal_swing();
        assert!((0.08..0.16).contains(&swing), "swing {swing}");
    }
}
