//! The "in-house optimizer" of Fig. 6: folds memory statistics and the
//! cost models into end-to-end performance parameters.

use serde::{Deserialize, Serialize};

use dlk_dram::{DramStats, TimingParams};
use dlk_locker::LockerStats;

use crate::cacti::CactiModel;

/// End-to-end performance parameters (the optimizer's output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerformanceParams {
    /// Total simulated time, seconds.
    pub latency_s: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Defense-added latency, seconds (lock-table checks + swaps).
    pub defense_latency_s: f64,
    /// Defense-added energy, joules.
    pub defense_energy_j: f64,
    /// Application accuracy, if the workload was a DNN.
    pub accuracy: Option<f64>,
}

impl PerformanceParams {
    /// Defense latency as a fraction of total latency.
    pub fn defense_overhead_fraction(&self) -> f64 {
        if self.latency_s == 0.0 {
            0.0
        } else {
            self.defense_latency_s / self.latency_s
        }
    }
}

/// Combines statistics into [`PerformanceParams`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Optimizer {
    cacti: CactiModel,
}

impl Optimizer {
    /// Creates an optimizer with the 45 nm cost model.
    pub fn new() -> Self {
        Self { cacti: CactiModel::nm45() }
    }

    /// The cost model.
    pub fn cacti(&self) -> &CactiModel {
        &self.cacti
    }

    /// Evaluates a run: DRAM statistics, the defense's statistics and
    /// the DDR timing, plus an optional application accuracy.
    pub fn evaluate(
        &self,
        dram: &DramStats,
        locker: &LockerStats,
        timing: &TimingParams,
        accuracy: Option<f64>,
    ) -> PerformanceParams {
        let latency_s = timing.cycles_to_s(dram.cycles);
        let energy_j = dram.energy_pj * 1e-12;
        let table = self.cacti.lock_table();
        let checks = locker.rw_seen as f64;
        let defense_latency_s =
            timing.cycles_to_s(locker.swap_cycles) + checks * table.access_ns * 1e-9;
        let defense_energy_j = locker.swap_energy_pj * 1e-12 + checks * table.access_pj * 1e-12;
        PerformanceParams { latency_s, energy_j, defense_latency_s, defense_energy_j, accuracy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stats_zero_params() {
        let params = Optimizer::new().evaluate(
            &DramStats::default(),
            &LockerStats::default(),
            &TimingParams::ddr4_2400(),
            None,
        );
        assert_eq!(params.latency_s, 0.0);
        assert_eq!(params.defense_overhead_fraction(), 0.0);
    }

    #[test]
    fn swap_cycles_show_up_as_defense_latency() {
        let locker = LockerStats { swap_cycles: 1_200_000, rw_seen: 10, ..Default::default() };
        let dram = DramStats { cycles: 12_000_000, ..Default::default() };
        let params =
            Optimizer::new().evaluate(&dram, &locker, &TimingParams::ddr4_2400(), Some(0.9));
        assert!(params.defense_latency_s > 0.0009);
        assert!((params.defense_overhead_fraction() - 0.1).abs() < 0.01);
        assert_eq!(params.accuracy, Some(0.9));
    }
}
