//! # dlk-xlayer — the cross-layer evaluation framework
//!
//! The Rust analogue of the paper's Fig. 6 stack (Cadence Spectre →
//! Design Compiler → CACTI → gem5 → in-house optimizer):
//!
//! - [`circuit`]: circuit-level Monte-Carlo of the in-DRAM SWAP under
//!   process variation (§IV-D: 0%, 0.14%, 9.6% erroneous SWAPs at
//!   ±0/10/20%);
//! - [`cacti`]: an analytical SRAM/CAM/DRAM latency-energy-area model
//!   standing in for CACTI + Design Compiler;
//! - [`optimizer`]: combines memory statistics with the cost models
//!   into end-to-end performance parameters;
//! - [`report`]: ASCII tables, series and CSV export for every
//!   experiment;
//! - [`experiments`]: one module per table/figure of the paper —
//!   `fig1a`, `fig1b`, `mc_variation` (§IV-D), `table1`, `fig7a`,
//!   `fig7b`, `fig8`, `table2` and `pta` (§V prose).
//!
//! ## Example
//!
//! ```
//! use dlk_xlayer::circuit::{MonteCarlo, VariationConfig};
//!
//! let mc = MonteCarlo::new(VariationConfig::default());
//! let report = mc.run(0.0, 2_000, 1);
//! assert_eq!(report.failures, 0); // no variation, no failed swaps
//! ```

pub mod cacti;
pub mod circuit;
pub mod experiments;
pub mod optimizer;
pub mod report;

pub use crate::cacti::{ArrayKind, ArrayModel, CactiModel};
pub use crate::circuit::{MonteCarlo, MonteCarloReport, VariationConfig};
pub use crate::optimizer::{Optimizer, PerformanceParams};
pub use crate::report::{Series, Table};
