//! Fig. 7(a): defense-added latency per refresh window vs #BFA.
//!
//! SHADOW at thresholds 1k/2k/4k/8k against DRAM-Locker at the
//! worst-case TRH = 1k (with its 10% row-copy error assumption).
//! SHADOW's curves climb steeply (slope ∝ 1/threshold) and flatten at
//! their defense thresholds — the point where system integrity is
//! compromised; DRAM-Locker's curve stays lowest and never exhibits a
//! defense threshold.

use dlk_defenses::ShadowModel;

use crate::report::Series;

use super::dl_model::DlLatencyModel;
use super::Fidelity;

/// Attack TRH evaluated in the figure (the paper's worst case).
pub const TRH_ATTACK: u64 = 1000;

/// Result of the Fig. 7(a) experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7a {
    /// SHADOW curves labeled by threshold, plus the DL curve.
    pub series: Vec<Series>,
}

impl Fig7a {
    /// The DRAM-Locker curve.
    pub fn dl(&self) -> &Series {
        self.series.last().expect("series is never empty")
    }

    /// Renders all curves.
    pub fn render(&self) -> String {
        Series::render_all("Fig 7(a): latency per Tref (s) vs #BFA", &self.series)
    }
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Fig7a {
    let (max_bfa, step) = match fidelity {
        Fidelity::Fast => (20_000u64, 5_000u64),
        Fidelity::Full => (80_000, 4_000),
    };
    let mut series = Vec::new();
    for threshold in [1_000u64, 2_000, 4_000, 8_000] {
        let model = ShadowModel::new(threshold);
        let mut curve = Series::new(format!("SHADOW{threshold}"));
        let mut n = 0;
        while n <= max_bfa {
            curve.push(n as f64, model.latency_per_tref_s(n, TRH_ATTACK));
            n += step;
        }
        series.push(curve);
    }
    let dl = DlLatencyModel::default();
    let mut curve = Series::new("DL");
    let mut n = 0;
    while n <= max_bfa {
        curve.push(n as f64, dl.latency_per_tref_s(n));
        n += step;
    }
    series.push(curve);
    Fig7a { series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_curves_in_threshold_order() {
        let result = run(Fidelity::Fast);
        assert_eq!(result.series.len(), 5);
        assert_eq!(result.series[0].label, "SHADOW1000");
        assert_eq!(result.dl().label, "DL");
    }

    #[test]
    fn dl_is_lowest_curve_everywhere() {
        let result = run(Fidelity::Full);
        let dl = result.dl();
        for shadow in &result.series[..4] {
            for (index, &(_, dl_y)) in dl.points.iter().enumerate().skip(1) {
                assert!(
                    dl_y < shadow.points[index].1,
                    "DL above {} at point {index}",
                    shadow.label
                );
            }
        }
    }

    #[test]
    fn shadow_curves_ordered_by_threshold_before_saturation() {
        let result = run(Fidelity::Fast);
        // At the first nonzero x, lower thresholds cost more.
        let at1: Vec<f64> = result.series[..4].iter().map(|s| s.points[1].1).collect();
        for pair in at1.windows(2) {
            assert!(pair[0] >= pair[1], "{at1:?}");
        }
    }

    #[test]
    fn shadow1000_saturates_within_the_sweep() {
        let result = run(Fidelity::Full);
        let shadow1000 = &result.series[0];
        let last = shadow1000.points.len() - 1;
        // Flat tail: last two points equal.
        assert!(
            (shadow1000.points[last].1 - shadow1000.points[last - 1].1).abs() < 1e-12,
            "SHADOW-1000 should have hit its defense threshold"
        );
    }
}
