//! Fig. 7(b): defense time (days) per RowHammer threshold.
//!
//! How long each defense keeps the attacker's cumulative success
//! probability below 1%, assuming a 10% row-copy error rate for
//! DRAM-Locker's SWAPs. The paper reports >500 days at the 1k
//! threshold and ">4000" at the high end, with SHADOW failing within
//! (fractions of) days.

use dlk_defenses::ShadowModel;

use crate::report::Table;

use super::dl_model::DlSecurityModel;

/// Thresholds on the figure's x-axis.
pub const THRESHOLDS: [u64; 4] = [1_000, 2_000, 4_000, 8_000];

/// Runs the experiment.
pub fn run() -> Table {
    let dl = DlSecurityModel::default();
    let mut table = Table::new(
        "Fig 7(b): defense time (days) per threshold",
        &["Threshold", "SHADOW (days)", "DRAM-Locker (days)"],
    );
    for trh in THRESHOLDS {
        let shadow = ShadowModel::new(trh).defense_time_days(trh);
        let locker = dl.defense_time_days(trh);
        table.row_owned(vec![
            format!("{}K", trh / 1000),
            format!("{shadow:.4}"),
            format!("{locker:.0}"),
        ]);
    }
    table
}

/// The DRAM-Locker defense-time series (for plotting).
pub fn dl_days() -> Vec<(u64, f64)> {
    let dl = DlSecurityModel::default();
    THRESHOLDS.iter().map(|&trh| (trh, dl.defense_time_days(trh))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locker_exceeds_500_days_at_1k() {
        let days = dl_days();
        assert!(days[0].1 > 500.0, "got {} days", days[0].1);
    }

    #[test]
    fn locker_days_increase_with_threshold() {
        let days = dl_days();
        for pair in days.windows(2) {
            assert!(pair[1].1 > pair[0].1);
        }
        assert!(days[3].1 > 4000.0, "Fig 7(b) annotates >4000: {}", days[3].1);
    }

    #[test]
    fn table_shows_locker_dominating_shadow() {
        let table = run();
        for row in &table.rows {
            let shadow: f64 = row[1].parse().unwrap();
            let locker: f64 = row[2].parse().unwrap();
            assert!(locker > shadow * 100.0, "row {row:?}");
        }
    }
}
