//! Fig. 8: BFA accuracy degradation with and without DRAM-Locker.
//!
//! 100 attack iterations against (a) ResNet-20-like / CIFAR-10-like
//! and (b) VGG-11-like / CIFAR-100-like, each run through the unified
//! scenario pipeline with a DRAM-deployed weight image and the
//! [`ProgressiveBfa`] driver. Without the defense every iteration lands
//! its chosen flip. With DRAM-Locker under worst-case ±20% process
//! variation, an iteration only succeeds when an erroneous SWAP leaves
//! a window — 9.6% of the time (§IV-D) — so the attacker needs an order
//! of magnitude more iterations for the same damage.

use dlk_dnn::models::ModelKind;
use dlk_sim::{Budget, GeometrySpec, ProgressiveBfa, Scenario, VictimSpec};

use crate::report::Series;

use super::Fidelity;

/// BFA success probability under DRAM-Locker at ±20% variation.
pub const DEFENDED_SUCCESS_RATE: f64 = 0.096;

/// One panel of Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Panel {
    /// Panel label ("ResNet-20 / CIFAR-10" or "VGG-11 / CIFAR-100").
    pub label: String,
    /// Accuracy (%) vs iteration without the defense.
    pub without_locker: Series,
    /// Accuracy (%) vs iteration with DRAM-Locker.
    pub with_locker: Series,
}

impl Fig8Panel {
    /// Renders the panel.
    pub fn render(&self) -> String {
        Series::render_all(
            &format!("Fig 8: {} (accuracy % vs attack iteration)", self.label),
            &[self.without_locker.clone(), self.with_locker.clone()],
        )
    }
}

const WEIGHT_BASE: u64 = 0x400;
const MODEL_SEED: u64 = 42;

fn attack(model: ModelKind, iterations: usize, success_rate: f64, seed: u64) -> Series {
    let label = if success_rate >= 1.0 { "without DRAM-Locker" } else { "with DRAM-Locker" };
    // The big models outgrow the tiny test device; Fig. 8 deploys onto
    // the paper-scale default geometry when the image would not fit.
    let tiny = GeometrySpec::Tiny.config();
    let victim = model.victim(MODEL_SEED);
    let image_end = WEIGHT_BASE + victim.model.total_weights() as u64;
    let geometry = if image_end <= tiny.dram.geometry.capacity_bytes() {
        GeometrySpec::Tiny
    } else {
        GeometrySpec::Paper
    };
    let report = Scenario::builder()
        .label(label)
        .geometry(geometry)
        .victim(VictimSpec::model(model, MODEL_SEED, WEIGHT_BASE))
        .attack(ProgressiveBfa::new(success_rate, seed))
        .budget(Budget { max_activations: 0, check_interval: 1, iterations })
        .eval_batch(128)
        .build()
        .expect("fig8 scenario builds")
        .run()
        .expect("fig8 scenario runs");
    let mut series = Series::new(label);
    for (iteration, accuracy_pct) in report.curve {
        series.push(iteration, accuracy_pct);
    }
    series
}

/// Runs one panel.
pub fn run_panel(model: ModelKind, label: &str, iterations: usize) -> Fig8Panel {
    Fig8Panel {
        label: label.to_owned(),
        without_locker: attack(model, iterations, 1.0, 8),
        with_locker: attack(model, iterations, DEFENDED_SUCCESS_RATE, 8),
    }
}

/// Runs both panels.
pub fn run(fidelity: Fidelity) -> Vec<Fig8Panel> {
    match fidelity {
        Fidelity::Fast => vec![run_panel(ModelKind::Tiny, "tiny (fast mode)", 20)],
        Fidelity::Full => vec![
            run_panel(ModelKind::Resnet20, "ResNet-20 / CIFAR-10", 100),
            run_panel(ModelKind::Vgg11, "VGG-11 / CIFAR-100", 100),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locker_slows_degradation_dramatically() {
        let panels = run(Fidelity::Fast);
        let panel = &panels[0];
        assert!(
            panel.with_locker.last_y() > panel.without_locker.last_y() + 10.0,
            "with {} vs without {}",
            panel.with_locker.last_y(),
            panel.without_locker.last_y()
        );
    }

    #[test]
    fn both_curves_start_clean() {
        let panels = run(Fidelity::Fast);
        let panel = &panels[0];
        assert_eq!(panel.with_locker.points[0].1, panel.without_locker.points[0].1);
    }

    #[test]
    fn defended_curve_is_monotone_nonincreasing_overall() {
        // Accuracy can wobble per-iteration, but the defended end must
        // not be above the clean start.
        let panels = run(Fidelity::Fast);
        let panel = &panels[0];
        assert!(panel.with_locker.last_y() <= panel.with_locker.points[0].1 + 1e-9);
    }
}
