//! §IV-D: Monte-Carlo SWAP error rates under process variation.

use crate::circuit::{MonteCarlo, VariationConfig};
use crate::report::Table;

use super::Fidelity;

/// Runs the 10,000-trial sweep (1,000 trials in fast mode) at ±0%,
/// ±10% and ±20% variation.
pub fn run(fidelity: Fidelity) -> Table {
    let trials = match fidelity {
        Fidelity::Fast => 1_000,
        Fidelity::Full => 10_000,
    };
    let mc = MonteCarlo::new(VariationConfig::default());
    let mut table = Table::new(
        "SWAP error vs process variation (SIV-D)",
        &["Variation", "Trials", "Erroneous SWAPs", "Rate %", "Paper %"],
    );
    for (variation, paper) in [(0.0, 0.0), (0.10, 0.14), (0.20, 9.6)] {
        let report = mc.run(variation, trials, 0xD1A0);
        table.row_owned(vec![
            format!("±{:.0}%", variation * 100.0),
            report.trials.to_string(),
            report.failures.to_string(),
            format!("{:.2}", report.failure_pct()),
            format!("{paper:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_three_rows_in_paper_order() {
        let table = run(Fidelity::Fast);
        assert_eq!(table.rows.len(), 3);
        assert!(table.rows[0][0].contains('0'));
        // Zero variation row reports zero failures.
        assert_eq!(table.rows[0][2], "0");
    }

    #[test]
    fn full_mode_runs_paper_trial_count() {
        let table = run(Fidelity::Full);
        assert_eq!(table.rows[0][1], "10000");
        // ±20% lands in the paper's ballpark.
        let rate: f64 = table.rows[2][3].parse().unwrap();
        assert!((6.0..14.0).contains(&rate), "rate {rate}");
    }
}
