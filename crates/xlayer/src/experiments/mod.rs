//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig1a`] | Fig. 1(a) — targeted BFA vs random flips |
//! | [`fig1b`] | Fig. 1(b) — TRH per DRAM generation |
//! | [`mc_variation`] | §IV-D — SWAP error vs process variation |
//! | [`table1`] | Table I — hardware overhead comparison |
//! | [`fig7a`] | Fig. 7(a) — latency per Tref vs #BFA |
//! | [`fig7b`] | Fig. 7(b) — defense time vs threshold |
//! | [`fig8`] | Fig. 8 — BFA iterations vs accuracy, ±DRAM-Locker |
//! | [`table2`] | Table II — vs training-based defenses |
//! | [`pta`] | §V prose — PTA evaluation |
//! | [`overhead_inference`] | Table II prose — defense cost on victim traffic |
//! | [`generations`] | Fig. 1(b) × Fig. 7(b) — sweep across DRAM generations |
//! | [`defense_grid`] | channel × defense sweep through the spec-driven runner |
//!
//! Every experiment takes a [`Fidelity`]: `Fast` shrinks models and
//! budgets for CI/tests; `Full` reproduces the paper-scale run used by
//! the benches and EXPERIMENTS.md.

pub mod defense_grid;
pub mod dl_model;
pub mod fig1a;
pub mod fig1b;
pub mod fig7a;
pub mod fig7b;
pub mod fig8;
pub mod generations;
pub mod mc_variation;
pub mod overhead_inference;
pub mod pta;
pub mod table1;
pub mod table2;

pub use dl_model::{DlLatencyModel, DlSecurityModel};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Small models and budgets — seconds, for tests.
    Fast,
    /// Paper-scale models and budgets — minutes, for benches.
    #[default]
    Full,
}
