//! Table II: DRAM-Locker vs training-based software defenses.
//!
//! Every defense is attacked with progressive bit search until the
//! model loses half of its own clean accuracy (or the flip budget runs
//! out); the table reports clean accuracy, post-attack accuracy and
//! the flips spent. DRAM-Locker's row keeps the baseline's clean
//! accuracy untouched after the full budget of *attempted* flips.

use dlk_defenses::training::binary::{BinaryWeight, CapacityScale, RaBnn};
use dlk_defenses::training::transforms::{PiecewiseClustering, WeightReconstruction};
use dlk_defenses::training::{baseline_entry, dram_locker_entry, TableTwoEntry};
use dlk_dnn::models;

use crate::report::Table;

use super::Fidelity;

/// Runs every Table II row.
pub fn entries(fidelity: Fidelity) -> Vec<TableTwoEntry> {
    let (victim, sample, budget) = match fidelity {
        Fidelity::Fast => (models::victim_tiny(7), 32, 40),
        Fidelity::Full => (models::victim_resnet20_cifar10(7), 64, 250),
    };
    vec![
        baseline_entry(&victim, sample, budget),
        PiecewiseClustering::default().evaluate(&victim, sample, budget),
        BinaryWeight.evaluate(&victim, sample, budget),
        CapacityScale::default().evaluate(&victim, sample, budget),
        WeightReconstruction::default().evaluate(&victim, sample, budget),
        RaBnn::default().evaluate(&victim, sample, budget),
        dram_locker_entry(&victim, sample, budget.max(1150)),
    ]
}

/// Builds the rendered table.
pub fn run(fidelity: Fidelity) -> Table {
    let mut table = Table::new(
        "Table II: vs training-based defenses (ResNet-20 / CIFAR-10)",
        &["Model", "Clean Acc. (%)", "Post-Attack Acc. (%)", "Bit-Flips #"],
    );
    for entry in entries(fidelity) {
        table.row_owned(vec![
            entry.name.clone(),
            format!("{:.2}", entry.clean_acc_pct),
            format!("{:.2}", entry.post_attack_acc_pct),
            entry.bit_flips.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locker_row_preserves_clean_accuracy() {
        let rows = entries(Fidelity::Fast);
        let locker = rows.last().unwrap();
        assert_eq!(locker.name, "DRAM-Locker");
        assert_eq!(locker.clean_acc_pct, locker.post_attack_acc_pct);
        let baseline = &rows[0];
        assert!(baseline.post_attack_acc_pct < baseline.clean_acc_pct);
    }

    #[test]
    fn locker_attempted_flips_dominate() {
        let rows = entries(Fidelity::Fast);
        let locker_flips = rows.last().unwrap().bit_flips;
        for row in &rows[..rows.len() - 1] {
            assert!(locker_flips >= row.bit_flips, "{row:?}");
        }
    }

    #[test]
    fn table_has_seven_rows() {
        let table = run(Fidelity::Fast);
        assert_eq!(table.rows.len(), 7);
    }
}
