//! Table I: hardware overhead comparison at 32 GB / 16-bank DDR4.

use dlk_defenses::overhead::{table1 as overhead_rows, DramSpec};

use crate::report::Table;

fn format_bytes(bytes: u64) -> String {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;
    if bytes == 0 {
        "0".to_owned()
    } else if bytes >= MB {
        format!("{:.2}MB", bytes as f64 / MB as f64)
    } else {
        format!("{}KB", bytes / KB)
    }
}

/// Builds Table I.
pub fn run() -> Table {
    let mut table = Table::new(
        "Table I: RowHammer mitigation overheads (32GB, 16-bank DDR4)",
        &["Framework", "Involved memory", "Capacity overhead", "Area overhead"],
    );
    for row in overhead_rows(&DramSpec::paper()) {
        let kinds: Vec<String> = row
            .capacity
            .iter()
            .map(|o| o.kind.to_string())
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        let capacity: Vec<String> =
            row.capacity.iter().map(|o| format!("{} {}", format_bytes(o.bytes), o.kind)).collect();
        let area = match (row.area_pct, row.counters) {
            (Some(pct), _) => format!("{pct}%"),
            (None, Some(counters)) => format!("{counters} counter(s)"),
            (None, None) => "NULL".to_owned(),
        };
        table.row_owned(vec![
            row.framework.to_owned(),
            kinds.join("-"),
            capacity.join(" + "),
            area,
        ]);
    }
    table
}

/// Returns `(framework, total_capacity_bytes)` pairs sorted ascending —
/// the ranking that motivates the paper's SHADOW/DRAM-Locker head-to-
/// head.
pub fn capacity_ranking() -> Vec<(String, u64)> {
    let mut ranking: Vec<(String, u64)> = overhead_rows(&DramSpec::paper())
        .into_iter()
        .map(|row| (row.framework.to_owned(), row.total_bytes()))
        .collect();
    ranking.sort_by_key(|&(_, bytes)| bytes);
    ranking
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_frameworks_present() {
        let table = run();
        assert_eq!(table.rows.len(), 10);
        let text = table.to_string();
        for framework in [
            "Graphene",
            "Hydra",
            "TWiCE",
            "Counter per Row",
            "Counter Tree",
            "RRS",
            "SRS",
            "SHADOW",
            "P-PIM",
            "DRAM-Locker",
        ] {
            assert!(text.contains(framework), "missing {framework}");
        }
    }

    #[test]
    fn locker_row_shows_zero_dram_plus_56kb_sram() {
        let table = run();
        let locker = table.rows.iter().find(|r| r[0] == "DRAM-Locker").unwrap();
        assert!(locker[2].contains("0 DRAM"));
        assert!(locker[2].contains("56KB SRAM"));
        assert_eq!(locker[3], "0.02%");
    }

    #[test]
    fn ranking_puts_locker_first_or_second() {
        let ranking = capacity_ranking();
        let position = ranking.iter().position(|(f, _)| f == "DRAM-Locker").unwrap();
        assert!(position <= 1, "ranking {ranking:?}");
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(0), "0");
        assert_eq!(format_bytes(56 * 1024), "56KB");
        assert_eq!(format_bytes(4 * 1024 * 1024), "4.00MB");
    }

    #[test]
    fn involved_memory_column_consistent() {
        let table = run();
        let hydra = table.rows.iter().find(|r| r[0] == "Hydra").unwrap();
        assert_eq!(hydra[1], "SRAM-DRAM");
    }

    #[test]
    fn spec_uses_paper_module() {
        // 32 GB / 8 KiB rows = 4 Mi rows.
        assert_eq!(DramSpec::paper().total_rows(), 4 * 1024 * 1024);
        let _ = dlk_defenses::MemoryKind::Dram; // linked for the doc example
    }
}
