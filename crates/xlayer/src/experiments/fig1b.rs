//! Fig. 1(b): RowHammer thresholds per DRAM generation.

use dlk_dram::DramGeneration;

use crate::report::Table;

/// Builds the Fig. 1(b) table.
pub fn run() -> Table {
    let mut table = Table::new("Fig 1(b): RowHammer thresholds", &["DRAM Generation", "TRH"]);
    for generation in DramGeneration::ALL {
        let trh = if generation.trh_upper() != generation.trh() {
            format!(
                "{:.1}K - {:.0}K",
                generation.trh() as f64 / 1000.0,
                generation.trh_upper() as f64 / 1000.0
            )
        } else if generation.trh() % 1000 == 0 {
            format!("{}K", generation.trh() / 1000)
        } else {
            format!("{:.1}K", generation.trh() as f64 / 1000.0)
        };
        table.row_owned(vec![generation.label().to_owned(), trh]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_values() {
        let table = run();
        assert_eq!(table.rows.len(), 6);
        let text = table.to_string();
        assert!(text.contains("139K"));
        assert!(text.contains("22.4K"));
        assert!(text.contains("10K"));
        assert!(text.contains("4.8K - 9K"));
    }
}
