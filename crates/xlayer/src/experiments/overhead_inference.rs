//! Runtime overhead of DRAM-Locker on the victim's own inference
//! traffic (the "small amount of delay and energy" the paper concedes
//! in the Table II discussion).
//!
//! The victim's inference loop streams every weight byte from DRAM
//! once per batch. With the protection plan locking only the *adjacent*
//! rows, the victim's reads never touch a locked row, so the only cost
//! is the one-cycle lock-table check per request — which is the
//! argument for the adjacent-row policy in §IV-A.

use dlk_dnn::models;
use dlk_dnn::WeightLayout;
use dlk_locker::{DramLocker, LockTarget, LockerConfig, ProtectionPlan};
use dlk_memctrl::{MemCtrlConfig, MemCtrlError, MemRequest, MemoryController};

use crate::report::Table;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRun {
    /// Scenario label.
    pub label: String,
    /// Total cycles for the inference read stream.
    pub cycles: u64,
    /// DRAM energy in picojoules.
    pub energy_pj: f64,
    /// Requests denied (must be zero for the victim's own traffic).
    pub denied: u64,
}

fn stream_weights(lock_target: Option<LockTarget>) -> Result<OverheadRun, MemCtrlError> {
    let victim = models::victim_tiny(3);
    let config = MemCtrlConfig::tiny_for_tests();
    let mut ctrl = MemoryController::new(config);
    let layout = WeightLayout::new(0x400, *ctrl.mapper());
    layout.deploy(&victim.model, ctrl.dram_mut()).map_err(|_| MemCtrlError::AddressOutOfRange {
        addr: 0x400,
        capacity: ctrl.mapper().capacity(),
    })?;
    let (start, end) = layout.phys_range(&victim.model);
    let label = match lock_target {
        None => "no defense".to_owned(),
        Some(target) => {
            let mut locker = DramLocker::new(LockerConfig::default(), ctrl.geometry());
            let mut plan = ProtectionPlan::new(target);
            plan.protect_range(ctrl.mapper(), start, end)
                .map_err(|_| MemCtrlError::TranslationFault { vaddr: start })?;
            plan.apply(&mut locker).map_err(|_| MemCtrlError::TranslationFault { vaddr: start })?;
            ctrl.set_hook(Box::new(locker));
            format!("locker ({target:?})")
        }
    };
    // Ten inference batches: stream the weight image in 32-byte reads.
    for _ in 0..10 {
        let mut addr = start;
        while addr < end {
            let len = 32.min((end - addr) as usize);
            ctrl.service(MemRequest::read(addr, len))?;
            addr += len as u64;
        }
    }
    Ok(OverheadRun {
        label,
        cycles: ctrl.dram().stats().cycles,
        energy_pj: ctrl.dram().stats().energy_pj,
        denied: ctrl.stats().denied,
    })
}

/// Runs the three configurations and builds the report table.
pub fn run() -> Result<Table, MemCtrlError> {
    let mut table = Table::new(
        "Inference-traffic overhead of DRAM-Locker",
        &["Scenario", "Cycles", "Energy (nJ)", "Denied", "Cycle overhead %"],
    );
    let baseline = stream_weights(None)?;
    for run in [
        baseline.clone(),
        stream_weights(Some(LockTarget::AdjacentRows))?,
        stream_weights(Some(LockTarget::DataRows))?,
    ] {
        let overhead = (run.cycles as f64 / baseline.cycles as f64 - 1.0) * 100.0;
        table.row_owned(vec![
            run.label.clone(),
            run.cycles.to_string(),
            format!("{:.2}", run.energy_pj / 1000.0),
            run.denied.to_string(),
            format!("{overhead:.2}"),
        ]);
    }
    Ok(table)
}

/// The adjacent-rows cycle overhead as a fraction (for assertions).
pub fn adjacent_rows_overhead() -> Result<f64, MemCtrlError> {
    let baseline = stream_weights(None)?;
    let defended = stream_weights(Some(LockTarget::AdjacentRows))?;
    Ok(defended.cycles as f64 / baseline.cycles as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_row_locking_costs_almost_nothing() {
        // The paper's §IV-A argument: locking neighbours (not the hot
        // data rows) keeps the victim's own traffic unaffected.
        let overhead = adjacent_rows_overhead().unwrap();
        assert!(overhead < 0.02, "cycle overhead {overhead}");
    }

    #[test]
    fn victim_traffic_is_never_denied() {
        let run = stream_weights(Some(LockTarget::AdjacentRows)).unwrap();
        assert_eq!(run.denied, 0);
    }

    #[test]
    fn data_row_locking_is_far_more_expensive() {
        // The ablation: locking the hot data rows forces SWAP churn.
        let baseline = stream_weights(None).unwrap();
        let adjacent = stream_weights(Some(LockTarget::AdjacentRows)).unwrap();
        let data_rows = stream_weights(Some(LockTarget::DataRows)).unwrap();
        assert!(
            data_rows.cycles > adjacent.cycles,
            "data-row locking {} must exceed adjacent {} (baseline {})",
            data_rows.cycles,
            adjacent.cycles,
            baseline.cycles
        );
    }

    #[test]
    fn table_reports_three_scenarios() {
        let table = run().unwrap();
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.rows[0][4], "0.00");
    }
}
