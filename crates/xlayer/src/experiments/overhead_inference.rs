//! Runtime overhead of DRAM-Locker on the victim's own inference
//! traffic (the "small amount of delay and energy" the paper concedes
//! in the Table II discussion).
//!
//! The victim's inference loop streams every weight byte from DRAM
//! once per batch — the [`InferenceStream`] driver of the unified
//! scenario pipeline. With the protection plan locking only the
//! *adjacent* rows, the victim's reads never touch a locked row, so the
//! only cost is the one-cycle lock-table check per request — which is
//! the argument for the adjacent-row policy in §IV-A.

use dlk_dnn::models::ModelKind;
use dlk_locker::LockTarget;
use dlk_sim::{InferenceStream, LockerMitigation, Scenario, SimError, VictimSpec};

use crate::report::Table;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRun {
    /// Scenario label.
    pub label: String,
    /// Total cycles for the inference read stream.
    pub cycles: u64,
    /// DRAM energy in picojoules.
    pub energy_pj: f64,
    /// Requests denied (must be zero for the victim's own traffic).
    pub denied: u64,
}

fn stream_weights(lock_target: Option<LockTarget>) -> Result<OverheadRun, SimError> {
    let label = match lock_target {
        None => "no defense".to_owned(),
        Some(target) => format!("locker ({target:?})"),
    };
    let mut builder = Scenario::builder()
        .label(label.clone())
        .victim(VictimSpec::model(ModelKind::Tiny, 3, 0x400))
        .attack(InferenceStream { batches: 10, chunk: 32 });
    builder = match lock_target {
        None => builder,
        Some(LockTarget::AdjacentRows) => builder.defense(LockerMitigation::adjacent()),
        Some(LockTarget::DataRows) => builder.defense(LockerMitigation::data_rows()),
        Some(LockTarget::Both) => builder
            .defense(LockerMitigation::new(dlk_locker::LockerConfig::default(), LockTarget::Both)),
    };
    let report = builder.build()?.run()?;
    Ok(OverheadRun {
        label,
        cycles: report.cycles,
        energy_pj: report.energy_pj,
        denied: report.denied,
    })
}

/// Runs the three configurations and builds the report table.
///
/// # Errors
///
/// Propagates scenario failures.
pub fn run() -> Result<Table, SimError> {
    let mut table = Table::new(
        "Inference-traffic overhead of DRAM-Locker",
        &["Scenario", "Cycles", "Energy (nJ)", "Denied", "Cycle overhead %"],
    );
    let baseline = stream_weights(None)?;
    for run in [
        baseline.clone(),
        stream_weights(Some(LockTarget::AdjacentRows))?,
        stream_weights(Some(LockTarget::DataRows))?,
    ] {
        let overhead = (run.cycles as f64 / baseline.cycles as f64 - 1.0) * 100.0;
        table.row_owned(vec![
            run.label.clone(),
            run.cycles.to_string(),
            format!("{:.2}", run.energy_pj / 1000.0),
            run.denied.to_string(),
            format!("{overhead:.2}"),
        ]);
    }
    Ok(table)
}

/// The adjacent-rows cycle overhead as a fraction (for assertions).
///
/// # Errors
///
/// Propagates scenario failures.
pub fn adjacent_rows_overhead() -> Result<f64, SimError> {
    let baseline = stream_weights(None)?;
    let defended = stream_weights(Some(LockTarget::AdjacentRows))?;
    Ok(defended.cycles as f64 / baseline.cycles as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_row_locking_costs_almost_nothing() {
        // The paper's §IV-A argument: locking neighbours (not the hot
        // data rows) keeps the victim's own traffic unaffected.
        let overhead = adjacent_rows_overhead().unwrap();
        assert!(overhead < 0.02, "cycle overhead {overhead}");
    }

    #[test]
    fn victim_traffic_is_never_denied() {
        let run = stream_weights(Some(LockTarget::AdjacentRows)).unwrap();
        assert_eq!(run.denied, 0);
    }

    #[test]
    fn data_row_locking_is_far_more_expensive() {
        // The ablation: locking the hot data rows forces SWAP churn.
        let baseline = stream_weights(None).unwrap();
        let adjacent = stream_weights(Some(LockTarget::AdjacentRows)).unwrap();
        let data_rows = stream_weights(Some(LockTarget::DataRows)).unwrap();
        assert!(
            data_rows.cycles > adjacent.cycles,
            "data-row locking {} must exceed adjacent {} (baseline {})",
            data_rows.cycles,
            adjacent.cycles,
            baseline.cycles
        );
    }

    #[test]
    fn table_reports_three_scenarios() {
        let table = run().unwrap();
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.rows[0][4], "0.00");
    }
}
