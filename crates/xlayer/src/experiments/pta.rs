//! §V: the Page Table Attack evaluation.
//!
//! End-to-end through the full stack: the victim's quantized weights
//! live in physical frames mapped by a DRAM-resident page table; the
//! attacker stages a corrupted copy of a weight page at the frame the
//! PTE would point to after one PFN-bit flip, then hammers the PTE row.
//! Undefended, translation silently redirects and the victim loads
//! poisoned weights. With DRAM-Locker guarding the page-table rows
//! (locking their aggressor-candidate neighbours), every hammer access
//! is denied and the weights survive untouched.

use dlk_attacks::hammer::HammerConfig;
use dlk_attacks::pta::{PtaAttack, PtaConfig};
use dlk_dnn::models::{self, Victim};
use dlk_dnn::QuantizedMlp;
use dlk_locker::{DramLocker, LockTarget, LockerConfig, ProtectionPlan};
use dlk_memctrl::{
    MemCtrlConfig, MemCtrlError, MemoryController, PageTable, PageTableConfig, VirtAddr,
};

use crate::report::Table;

/// Result of one PTA run.
#[derive(Debug, Clone, PartialEq)]
pub struct PtaRun {
    /// Scenario label.
    pub label: String,
    /// Whether the PTE was corrupted.
    pub redirected: bool,
    /// Attacker requests denied by the defense.
    pub denied: u64,
    /// Victim accuracy before the attack, percent.
    pub accuracy_before_pct: f64,
    /// Victim accuracy after reloading weights through translation.
    pub accuracy_after_pct: f64,
}

const PAGE_SIZE: u64 = 256;
const WEIGHT_PFN: u64 = 8;
const TABLE_BASE: u64 = 4096;

struct PtaBench {
    controller: MemoryController,
    table: PageTable,
    victim: Victim,
    pages: u64,
}

impl PtaBench {
    fn new(victim: Victim, defended: bool) -> Result<Self, MemCtrlError> {
        let config = MemCtrlConfig::tiny_for_tests();
        let weight_bytes = victim.model.weight_bytes();
        let pages = (weight_bytes.len() as u64).div_ceil(PAGE_SIZE);
        let table = PageTable::new(PageTableConfig {
            page_size: PAGE_SIZE,
            base_phys: TABLE_BASE,
            num_pages: pages,
        });
        let mut controller = MemoryController::new(config);
        let mapper = *controller.mapper();
        // Install translations and deposit the weight image frame by
        // frame.
        for page in 0..pages {
            table.map(controller.dram_mut(), &mapper, page, WEIGHT_PFN + page)?;
            let start = (page * PAGE_SIZE) as usize;
            let end = (start + PAGE_SIZE as usize).min(weight_bytes.len());
            let phys = (WEIGHT_PFN + page) * PAGE_SIZE;
            let mut offset = 0usize;
            while start + offset < end {
                let (row, col) = mapper.to_dram(phys + offset as u64)?;
                let take = (mapper.geometry().row_bytes - col).min(end - start - offset);
                let mut row_data = controller.dram().read_row(row).map_err(MemCtrlError::Dram)?;
                row_data[col..col + take]
                    .copy_from_slice(&weight_bytes[start + offset..start + offset + take]);
                controller.dram_mut().write_row(row, &row_data).map_err(MemCtrlError::Dram)?;
                offset += take;
            }
        }
        // The OS isolates kernel page tables and the victim's frames;
        // the attacker can only activate its own (adjacent) rows.
        let table_bytes = pages * 8;
        controller.os_protect_range(TABLE_BASE, TABLE_BASE + table_bytes);
        controller.os_protect_range(WEIGHT_PFN * PAGE_SIZE, (WEIGHT_PFN + pages) * PAGE_SIZE);
        if defended {
            // DRAM-Locker guards the page-table rows: the protection
            // plan locks the rows an attacker must hammer.
            let mut locker = DramLocker::new(LockerConfig::default(), mapper.geometry().to_owned());
            let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);

            plan.protect_range(&mapper, TABLE_BASE, TABLE_BASE + table_bytes)
                .map_err(|_| MemCtrlError::TranslationFault { vaddr: TABLE_BASE })?;
            plan.apply(&mut locker)
                .map_err(|_| MemCtrlError::TranslationFault { vaddr: TABLE_BASE })?;
            controller.set_hook(Box::new(locker));
        }
        Ok(Self { controller, table, victim, pages })
    }

    /// Loads the model weights exactly as the victim process would:
    /// virtual addresses, page walks, DRAM reads.
    fn load_via_translation(&mut self) -> Result<QuantizedMlp, MemCtrlError> {
        let total = self.victim.model.total_weights();
        let mapper = *self.controller.mapper();
        let mut bytes = Vec::with_capacity(total);
        while bytes.len() < total {
            let vaddr = VirtAddr(bytes.len() as u64);
            let pa = self.table.translate(self.controller.dram(), &mapper, vaddr)?;
            let row_bytes = mapper.geometry().row_bytes as u64;
            let take = (PAGE_SIZE - pa % PAGE_SIZE)
                .min(row_bytes - pa % row_bytes)
                .min((total - bytes.len()) as u64);
            let request = dlk_memctrl::MemRequest::read(pa, take as usize);
            let done = self.controller.service(request)?;
            bytes.extend_from_slice(done.data.as_deref().unwrap_or(&[]));
        }
        let mut model = self.victim.model.clone();
        model.load_weight_bytes(&bytes).map_err(|_| MemCtrlError::TranslationFault { vaddr: 0 })?;
        Ok(model)
    }

    fn accuracy_pct(&self, model: &QuantizedMlp) -> f64 {
        let (x, y) = self.victim.dataset.test_sample(64, 0);
        model.accuracy(&x, &y).expect("shapes consistent") * 100.0
    }
}

/// Runs the PTA end to end, with or without DRAM-Locker.
pub fn run_scenario(defended: bool) -> Result<PtaRun, MemCtrlError> {
    let victim = models::victim_tiny(21);
    let mut bench = PtaBench::new(victim, defended)?;
    let clean = bench.load_via_translation()?;
    let accuracy_before = bench.accuracy_pct(&clean);

    // Attacker stages a poisoned copy of page 0 (every weight's MSB
    // flipped) at the frame one PFN-bit flip away, then hammers.
    let attack = PtaAttack::new(PtaConfig {
        pfn_bit: 1,
        hammer: HammerConfig { max_activations: 20_000, check_interval: 8 },
    });
    let mut payload = bench.victim.model.weight_bytes();
    payload.truncate(PAGE_SIZE as usize);
    for byte in &mut payload {
        *byte ^= 0x80;
    }
    attack.stage_payload(&mut bench.controller, &bench.table, 0, &payload)?;
    let outcome = attack.execute(&mut bench.controller, &bench.table, 0)?;

    let after = bench.load_via_translation()?;
    let accuracy_after = bench.accuracy_pct(&after);
    let _ = bench.pages;
    Ok(PtaRun {
        label: if defended { "with DRAM-Locker" } else { "without DRAM-Locker" }.to_owned(),
        redirected: outcome.redirected,
        denied: outcome.hammer.denied,
        accuracy_before_pct: accuracy_before,
        accuracy_after_pct: accuracy_after,
    })
}

/// Runs both scenarios and builds the report table.
pub fn run() -> Result<Table, MemCtrlError> {
    let mut table = Table::new(
        "PTA evaluation (SV): page-table attack on DNN weights",
        &["Scenario", "PTE redirected", "Denied accesses", "Acc before %", "Acc after %"],
    );
    for defended in [false, true] {
        let run = run_scenario(defended)?;
        table.row_owned(vec![
            run.label.clone(),
            run.redirected.to_string(),
            run.denied.to_string(),
            format!("{:.2}", run.accuracy_before_pct),
            format!("{:.2}", run.accuracy_after_pct),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefended_pta_poisons_the_model() {
        let run = run_scenario(false).unwrap();
        assert!(run.redirected, "{run:?}");
        assert_eq!(run.denied, 0);
        assert!(
            run.accuracy_after_pct < run.accuracy_before_pct - 10.0,
            "poisoned page must hurt accuracy: {run:?}"
        );
    }

    #[test]
    fn defended_pta_is_denied_and_harmless() {
        let run = run_scenario(true).unwrap();
        assert!(!run.redirected, "{run:?}");
        assert!(run.denied > 0);
        assert_eq!(run.accuracy_before_pct, run.accuracy_after_pct);
    }

    #[test]
    fn report_table_has_both_scenarios() {
        let table = run().unwrap();
        assert_eq!(table.rows.len(), 2);
        let text = table.to_string();
        assert!(text.contains("without DRAM-Locker") && text.contains("with DRAM-Locker"));
    }
}
