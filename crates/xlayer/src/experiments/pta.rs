//! §V: the Page Table Attack evaluation.
//!
//! End-to-end through the unified [`Scenario`](dlk_sim::Scenario)
//! pipeline: the victim's quantized weights live in physical frames
//! mapped by a DRAM-resident page table ([`VictimSpec::paged`]); the
//! attacker stages a corrupted copy of a weight page at the frame the
//! PTE would point to after one PFN-bit flip, then hammers the PTE row
//! ([`PageTablePoison`]). Undefended, translation silently redirects
//! and the victim loads poisoned weights. With DRAM-Locker guarding the
//! page-table rows (locking their aggressor-candidate neighbours),
//! every hammer access is denied and the weights survive untouched.

use dlk_dnn::models::ModelKind;
use dlk_sim::{
    Budget, LockerMitigation, PageTablePoison, Scenario, ScenarioBuilder, SimError, VictimSpec,
};

use crate::report::Table;

/// Result of one PTA run.
#[derive(Debug, Clone, PartialEq)]
pub struct PtaRun {
    /// Scenario label.
    pub label: String,
    /// Whether the PTE was corrupted.
    pub redirected: bool,
    /// Attacker requests denied by the defense.
    pub denied: u64,
    /// Victim accuracy before the attack, percent.
    pub accuracy_before_pct: f64,
    /// Victim accuracy after reloading weights through translation.
    pub accuracy_after_pct: f64,
}

/// The PTA scenario, with or without DRAM-Locker mounted.
pub fn scenario(defended: bool) -> ScenarioBuilder {
    let builder = Scenario::builder()
        .label(if defended { "with DRAM-Locker" } else { "without DRAM-Locker" })
        .victim(VictimSpec::paged(ModelKind::Tiny, 21))
        .attack(PageTablePoison { pfn_bit: 1, payload_xor: 0x80 })
        .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
        .eval_batch(64);
    if defended {
        builder.defense(LockerMitigation::adjacent())
    } else {
        builder
    }
}

/// Runs the PTA end to end, with or without DRAM-Locker.
///
/// # Errors
///
/// Propagates scenario build/run failures.
pub fn run_scenario(defended: bool) -> Result<PtaRun, SimError> {
    let report = scenario(defended).build()?.run()?;
    let victim = report.victim().clone();
    Ok(PtaRun {
        label: report.scenario,
        redirected: report.redirected,
        denied: report.denied,
        accuracy_before_pct: victim.accuracy_before_pct.unwrap_or(0.0),
        accuracy_after_pct: victim.accuracy_after_pct.unwrap_or(0.0),
    })
}

/// Runs both scenarios and builds the report table.
///
/// # Errors
///
/// Propagates scenario failures.
pub fn run() -> Result<Table, SimError> {
    let mut table = Table::new(
        "PTA evaluation (SV): page-table attack on DNN weights",
        &["Scenario", "PTE redirected", "Denied accesses", "Acc before %", "Acc after %"],
    );
    for defended in [false, true] {
        let run = run_scenario(defended)?;
        table.row_owned(vec![
            run.label.clone(),
            run.redirected.to_string(),
            run.denied.to_string(),
            format!("{:.2}", run.accuracy_before_pct),
            format!("{:.2}", run.accuracy_after_pct),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefended_pta_poisons_the_model() {
        let run = run_scenario(false).unwrap();
        assert!(run.redirected, "{run:?}");
        assert_eq!(run.denied, 0);
        assert!(
            run.accuracy_after_pct < run.accuracy_before_pct - 10.0,
            "poisoned page must hurt accuracy: {run:?}"
        );
    }

    #[test]
    fn defended_pta_is_denied_and_harmless() {
        let run = run_scenario(true).unwrap();
        assert!(!run.redirected, "{run:?}");
        assert!(run.denied > 0);
        assert_eq!(run.accuracy_before_pct, run.accuracy_after_pct);
    }

    #[test]
    fn report_table_has_both_scenarios() {
        let table = run().unwrap();
        assert_eq!(table.rows.len(), 2);
        let text = table.to_string();
        assert!(text.contains("without DRAM-Locker") && text.contains("with DRAM-Locker"));
    }
}
