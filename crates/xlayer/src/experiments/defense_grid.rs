//! The channel × defense grid: the paper's head-to-head matchup
//! rendered as one declarative sweep.
//!
//! A hammer campaign against a guarded row victim is expanded over
//! {1, 2, 4 channels} × {no defense, DRAM-Locker} by a
//! [`SweepGrid`], executed across worker threads by a [`SweepRunner`]
//! (results bit-identical to serial execution — the determinism suite
//! asserts it) and exported through the unified
//! [`metrics::Table`](dlk_sim::metrics::Table). This is the experiment
//! CI prints as CSV so figure data is visible in the job log.

use dlk_sim::sweep::{SweepGrid, SweepRunner};
use dlk_sim::{metrics, DefenseSpec, ScenarioSpec, SimError};

/// The swept channel counts.
pub const CHANNELS: [usize; 3] = [1, 2, 4];

/// The expanded spec list: {1,2,4 channels} × {none, dram-locker} over
/// the catalog's `hammer-vs-none` base scenario.
///
/// # Errors
///
/// Propagates the catalog lookup (the base entry is always present).
pub fn specs() -> Result<Vec<ScenarioSpec>, SimError> {
    let base = dlk_sim::find("hammer-vs-none")?.spec;
    Ok(SweepGrid::over(base)
        .channels(CHANNELS)
        .defenses([vec![], vec![DefenseSpec::locker_adjacent()]])
        .expand())
}

/// Runs the grid on `runner` and builds the metrics table.
///
/// # Errors
///
/// Propagates the first failing scenario, in spec order.
pub fn run_on(runner: SweepRunner) -> Result<metrics::Table, SimError> {
    let reports = runner.run_reports(&specs()?)?;
    Ok(metrics::Table::from_reports(&reports))
}

/// Runs the grid across worker threads.
///
/// # Errors
///
/// Propagates the first failing scenario, in spec order.
pub fn run() -> Result<metrics::Table, SimError> {
    run_on(SweepRunner::parallel())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_channels_times_defenses() {
        let specs = specs().unwrap();
        assert_eq!(specs.len(), 6);
        assert!(specs.iter().any(|s| s.label == "hammer-vs-none/dram-locker/4ch"));
    }

    #[test]
    fn locker_rows_deny_and_undefended_rows_flip() {
        let table = run().unwrap();
        assert_eq!(table.rows().len(), 6);
        let column = |name: &str| {
            table.columns().iter().position(|c| c == name).unwrap_or_else(|| panic!("{name}"))
        };
        let (denied, flips) = (column("denied"), column("landed_flips"));
        for row in table.rows() {
            if row[0].contains("dram-locker") {
                assert_ne!(row[denied], "0", "{row:?}");
                assert_eq!(row[flips], "0", "{row:?}");
            } else {
                assert_eq!(row[denied], "0", "{row:?}");
                assert_eq!(row[flips], "1", "{row:?}");
            }
        }
    }

    #[test]
    fn parallel_table_equals_serial_table() {
        let parallel = run_on(SweepRunner::parallel()).unwrap();
        let serial = run_on(SweepRunner::serial()).unwrap();
        assert_eq!(parallel, serial);
    }
}
