//! Fig. 1(a): targeted BFA vs random bit flips.
//!
//! An 8-bit quantized VGG-11-like network on the CIFAR-100-like
//! dataset. The targeted attack collapses accuracy within tens of
//! flips; uniformly random flips barely move it — the gap DRAM-Locker
//! aims to enforce on every attacker.

use dlk_attacks::bfa::{BfaConfig, BitSearch};
use dlk_attacks::random::RandomAttack;
use dlk_dnn::models;

use crate::report::Series;

use super::Fidelity;

/// Result of the Fig. 1(a) experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1a {
    /// Targeted-attack accuracy curve (x = flips, y = accuracy %).
    pub bfa: Series,
    /// Random-attack accuracy curve averaged over several seeds.
    pub random: Series,
}

impl Fig1a {
    /// Renders both curves.
    pub fn render(&self) -> String {
        Series::render_all(
            "Fig 1(a): targeted BFA vs random flips (accuracy %)",
            &[self.bfa.clone(), self.random.clone()],
        )
    }
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Fig1a {
    let (victim, flips, sample) = match fidelity {
        Fidelity::Fast => (models::victim_tiny(42), 15, 32),
        Fidelity::Full => (models::victim_vgg11_cifar100(42), 100, 128),
    };
    let (x, y) = victim.dataset.test_sample(sample, 0);

    let mut bfa_model = victim.model.clone();
    let bfa_curve = BitSearch::new(BfaConfig::default()).run(&mut bfa_model, &x, &y, flips);
    let mut bfa = Series::new("BFA");
    for point in &bfa_curve.points {
        bfa.push(point.flips as f64, point.accuracy * 100.0);
    }

    // Average the random baseline over a few seeds.
    let seeds = 3u64;
    let mut sums = vec![0.0f64; flips + 1];
    for seed in 0..seeds {
        let mut model = victim.model.clone();
        let curve = RandomAttack::new(seed).run(&mut model, &x, &y, flips);
        for (index, point) in curve.points.iter().enumerate() {
            sums[index] += point.accuracy * 100.0;
        }
    }
    let mut random = Series::new("Random");
    for (index, sum) in sums.iter().enumerate() {
        random.push(index as f64, sum / seeds as f64);
    }

    Fig1a { bfa, random }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfa_ends_well_below_random() {
        let result = run(Fidelity::Fast);
        assert!(
            result.bfa.last_y() < result.random.last_y() - 5.0,
            "BFA {} vs random {}",
            result.bfa.last_y(),
            result.random.last_y()
        );
    }

    #[test]
    fn curves_start_at_the_same_clean_accuracy() {
        let result = run(Fidelity::Fast);
        let (_, bfa0) = result.bfa.points[0];
        let (_, rnd0) = result.random.points[0];
        assert!((bfa0 - rnd0).abs() < 1e-9);
        assert!(bfa0 > 50.0);
    }

    #[test]
    fn render_mentions_both_attacks() {
        let text = run(Fidelity::Fast).render();
        assert!(text.contains("BFA") && text.contains("Random"));
    }
}
