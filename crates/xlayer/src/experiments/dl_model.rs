//! Analytical DRAM-Locker latency/security models for Fig. 7.
//!
//! The working implementation lives in `dlk-locker`; these closed-form
//! models scale its measured behaviour to the 80,000-BFA / multi-year
//! regimes of Fig. 7 that are impractical to simulate cycle by cycle.

use serde::{Deserialize, Serialize};

use dlk_defenses::shadow::defense_days;
use dlk_dram::TimingParams;

/// DRAM-Locker's added latency per refresh window.
///
/// Denied attacker instructions are *skipped* — they add only the
/// one-cycle lock-table check, which overlaps request decode. The only
/// real cost is the occasional SWAP + re-lock pair, incurred when the
/// victim's own traffic touches a locked row while an attack campaign
/// runs. `touch_probability` is the fraction of attack campaigns that
/// coincide with such a legitimate access (measured from the
/// end-to-end simulation; see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DlLatencyModel {
    /// DDR timing.
    pub timing: TimingParams,
    /// Probability a BFA campaign forces one SWAP + re-lock pair.
    pub touch_probability: f64,
    /// Cycles per SWAP (three RowClone copies).
    pub swap_cycles: u64,
}

impl Default for DlLatencyModel {
    fn default() -> Self {
        let timing = TimingParams::ddr4_2400();
        Self { timing, touch_probability: 0.05, swap_cycles: 3 * timing.rowclone_cycles() }
    }
}

impl DlLatencyModel {
    /// Added latency per refresh window in seconds for `n_bfa` attack
    /// campaigns. Unlike SHADOW there is no defense threshold: the
    /// curve keeps its (shallow) slope for any attack intensity.
    pub fn latency_per_tref_s(&self, n_bfa: u64) -> f64 {
        let swaps = n_bfa as f64 * self.touch_probability;
        // SWAP out + swap back at the re-lock deadline.
        self.timing.cycles_to_s((2 * self.swap_cycles) as f64 as u64) * swaps
    }
}

/// DRAM-Locker's defense time under SWAP errors (Fig. 7(b)).
///
/// With perfect SWAPs the defense is unconditional — denied rows are
/// never activated. The residual risk comes from *erroneous* row
/// copies (§IV-D): a copy error is a stray bit flip that could, with
/// vanishing probability, land exactly on the attacker's target bit in
/// the attacker's target row during an attack window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DlSecurityModel {
    /// DDR timing.
    pub timing: TimingParams,
    /// Per-row-copy error rate (the paper evaluates 10%).
    pub copy_error_rate: f64,
    /// Probability an erroneous copy's stray flip aligns with the
    /// attacker's exact target (row, bit and window). Calibrated so the
    /// 1k-threshold defense time lands at the paper's "exceeding 500
    /// days" (see EXPERIMENTS.md for the derivation).
    pub alignment_probability: f64,
}

impl Default for DlSecurityModel {
    fn default() -> Self {
        Self {
            timing: TimingParams::ddr4_2400(),
            copy_error_rate: 0.10,
            alignment_probability: 3.5e-14,
        }
    }
}

impl DlSecurityModel {
    /// Probability a whole three-copy SWAP contains at least one error.
    pub fn swap_error_probability(&self) -> f64 {
        1.0 - (1.0 - self.copy_error_rate).powi(3)
    }

    /// Attacker success probability per refresh window at threshold
    /// `trh`.
    pub fn p_win_per_window(&self, trh: u64) -> f64 {
        let opportunities = (self.timing.hammers_per_window() / trh.max(1)) as f64;
        opportunities * self.swap_error_probability() * self.alignment_probability
    }

    /// Defense time in days at threshold `trh` (attacker success kept
    /// below 1%).
    pub fn defense_time_days(&self, trh: u64) -> f64 {
        defense_days(self.p_win_per_window(trh), &self.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_defenses::ShadowModel;

    #[test]
    fn dl_latency_grows_but_stays_low() {
        let model = DlLatencyModel::default();
        let low = model.latency_per_tref_s(10_000);
        let high = model.latency_per_tref_s(80_000);
        assert!(high > low);
        // Fig. 7(a): DL stays in single-digit milliseconds where
        // SHADOW-1000 reaches tens of milliseconds.
        assert!(high < 0.01, "DL latency {high}");
    }

    #[test]
    fn dl_below_shadow_at_all_attack_intensities() {
        let dl = DlLatencyModel::default();
        let shadow = ShadowModel::new(1000);
        for n in [1_000u64, 10_000, 40_000, 80_000] {
            assert!(
                dl.latency_per_tref_s(n) < shadow.latency_per_tref_s(n, 1000),
                "DL must undercut SHADOW-1000 at n={n}"
            );
        }
    }

    #[test]
    fn defense_time_exceeds_500_days_at_1k() {
        // The paper's headline security number.
        let model = DlSecurityModel::default();
        let days = model.defense_time_days(1000);
        assert!(days > 500.0, "defense time {days} days");
    }

    #[test]
    fn defense_time_exceeds_4000_days_at_8k() {
        // Fig. 7(b) annotates ">4000" at higher thresholds.
        let model = DlSecurityModel::default();
        assert!(model.defense_time_days(8000) > 4000.0);
    }

    #[test]
    fn dl_outlasts_shadow_by_orders_of_magnitude() {
        let dl = DlSecurityModel::default();
        for trh in [1000u64, 2000, 4000, 8000] {
            let shadow = ShadowModel::new(trh).defense_time_days(trh);
            assert!(
                dl.defense_time_days(trh) > shadow * 100.0,
                "DL must dominate SHADOW at trh={trh}"
            );
        }
    }

    #[test]
    fn swap_error_probability_matches_copy_rate() {
        let model = DlSecurityModel::default();
        assert!((model.swap_error_probability() - 0.271).abs() < 0.001);
    }
}
