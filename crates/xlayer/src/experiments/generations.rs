//! DRAM-generation sweep: how the shrinking RowHammer threshold of
//! Fig. 1(b) translates into attack pressure and DRAM-Locker defense
//! time.
//!
//! Ties the two ends of the paper together: newer parts flip with
//! fewer activations (more attacker opportunities per refresh window),
//! yet DRAM-Locker's deny-based protection degrades only linearly in
//! the threshold — the "general applicability across various DRAM
//! chips" claim of §V.

use dlk_dram::{DramGeneration, TimingParams};

use crate::report::Table;

use super::dl_model::DlSecurityModel;

/// One row of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationRow {
    /// The DRAM generation.
    pub generation: DramGeneration,
    /// Its RowHammer threshold.
    pub trh: u64,
    /// Hammer campaigns an attacker completes per refresh window.
    pub campaigns_per_window: u64,
    /// DRAM-Locker defense time in days (10% row-copy error).
    pub locker_days: f64,
}

/// Runs the sweep.
pub fn rows() -> Vec<GenerationRow> {
    let timing = TimingParams::ddr4_2400();
    let model = DlSecurityModel::default();
    DramGeneration::ALL
        .iter()
        .map(|&generation| {
            let trh = generation.trh();
            GenerationRow {
                generation,
                trh,
                campaigns_per_window: timing.hammers_per_window() / trh,
                locker_days: model.defense_time_days(trh),
            }
        })
        .collect()
}

/// Builds the report table.
pub fn run() -> Table {
    let mut table = Table::new(
        "DRAM-Locker across DRAM generations",
        &["Generation", "TRH", "Campaigns/window", "DL defense (days)"],
    );
    for row in rows() {
        table.row_owned(vec![
            row.generation.label().to_owned(),
            row.trh.to_string(),
            row.campaigns_per_window.to_string(),
            format!("{:.0}", row.locker_days),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_generation() {
        assert_eq!(rows().len(), 6);
    }

    #[test]
    fn newer_parts_give_attackers_more_campaigns() {
        let all = rows();
        let ddr3_old = all.iter().find(|r| r.generation == DramGeneration::Ddr3Old).unwrap();
        let lpddr4_new = all.iter().find(|r| r.generation == DramGeneration::Lpddr4New).unwrap();
        assert!(lpddr4_new.campaigns_per_window > 10 * ddr3_old.campaigns_per_window);
    }

    #[test]
    fn defense_time_scales_with_threshold() {
        // Higher TRH -> fewer attacker opportunities -> longer defense.
        let all = rows();
        for pair in all.windows(2) {
            if pair[0].trh > pair[1].trh {
                assert!(pair[0].locker_days > pair[1].locker_days);
            }
        }
    }

    #[test]
    fn even_worst_generation_defends_for_years() {
        // LPDDR4 (new) at TRH = 4.8k still gives multi-year protection.
        let all = rows();
        let worst = all.iter().map(|r| r.locker_days).fold(f64::INFINITY, f64::min);
        assert!(worst > 365.0, "worst-case defense {worst} days");
    }
}
