//! Property-based tests of the DNN substrate invariants.

use proptest::prelude::*;

use dlk_dnn::layers::{cross_entropy_grad, softmax_cross_entropy};
use dlk_dnn::{models, Mlp, QuantizedMlp, Tensor};

proptest! {
    /// Softmax rows are probability distributions for any logits.
    #[test]
    fn softmax_rows_are_distributions(
        logits in proptest::collection::vec(-20.0f32..20.0, 6),
    ) {
        let t = Tensor::from_vec(2, 3, logits);
        let (_, probs) = softmax_cross_entropy(&t, &[0, 2]);
        for row in 0..2 {
            let sum: f32 = probs.row(row).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(probs.row(row).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// The cross-entropy gradient sums to zero per row (probabilities
    /// minus a one-hot, scaled).
    #[test]
    fn ce_grad_rows_sum_to_zero(
        logits in proptest::collection::vec(-10.0f32..10.0, 8),
        label in 0usize..4,
    ) {
        let t = Tensor::from_vec(2, 4, logits);
        let (_, probs) = softmax_cross_entropy(&t, &[label, (label + 1) % 4]);
        let grad = cross_entropy_grad(&probs, &[label, (label + 1) % 4]);
        for row in 0..2 {
            let sum: f32 = grad.row(row).iter().sum();
            prop_assert!(sum.abs() < 1e-5, "row {row} sums to {sum}");
        }
    }

    /// Matmul against the identity is the identity, for any contents.
    #[test]
    fn matmul_identity_any(values in proptest::collection::vec(-100.0f32..100.0, 12)) {
        let a = Tensor::from_vec(3, 4, values);
        let out = a.matmul(&Tensor::eye(4)).unwrap();
        prop_assert_eq!(out, a);
    }

    /// The blocked GEMM kernel is bit-exact with the pre-refactor
    /// scalar loops on arbitrary finite inputs, across all three
    /// product variants.
    #[test]
    fn blocked_gemm_bit_exact_any(
        m in 1usize..6,
        k in 1usize..12,
        n in 1usize..7,
        seed in 0u64..1024,
    ) {
        let a = Tensor::randn(m, k, seed);
        let b = Tensor::randn(k, n, seed + 1);
        prop_assert_eq!(a.matmul(&b).unwrap(), a.matmul_reference(&b).unwrap());
        let bt = Tensor::randn(n, k, seed + 2);
        prop_assert_eq!(
            a.matmul_transpose(&bt).unwrap(),
            a.matmul_transpose_reference(&bt).unwrap()
        );
        let a2 = Tensor::randn(k, m, seed + 3);
        prop_assert_eq!(
            a2.transpose_matmul(&b).unwrap(),
            a2.transpose_matmul_reference(&b).unwrap()
        );
    }

    /// Quantize→dequantize→quantize is a fixed point (idempotent after
    /// one round).
    #[test]
    fn quantization_idempotent(seed in 0u64..64) {
        let model = models::tiny_mlp(seed);
        let q1 = QuantizedMlp::quantize(&model);
        let q2 = QuantizedMlp::quantize(q1.to_float_model());
        for (a, b) in q1.weighted_layers().iter().zip(q2.weighted_layers()) {
            prop_assert_eq!(a.matrix().unwrap().qweights(), b.matrix().unwrap().qweights());
        }
    }

    /// Accuracy is always in [0, 1] and invariant to batch duplication.
    #[test]
    fn accuracy_bounds_and_duplication(seed in 0u64..16) {
        let model = Mlp::new(&[4, 6, 3], seed);
        let x = Tensor::randn(5, 4, seed + 100);
        let labels = vec![0usize, 1, 2, 0, 1];
        let acc = model.accuracy(&x, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
        // Duplicate the batch: accuracy unchanged.
        let mut doubled = Vec::new();
        doubled.extend_from_slice(x.as_slice());
        doubled.extend_from_slice(x.as_slice());
        let x2 = Tensor::from_vec(10, 4, doubled);
        let mut labels2 = labels.clone();
        labels2.extend_from_slice(&labels);
        prop_assert_eq!(model.accuracy(&x2, &labels2).unwrap(), acc);
    }

    /// flip_delta predicts exactly the dequantized-weight change a
    /// flip causes.
    #[test]
    fn flip_delta_is_exact(offset in 0usize..288, bit in 0u8..8) {
        let model = models::tiny_mlp(9);
        let mut quantized = QuantizedMlp::quantize(&model);
        let Some((layer, weight)) = quantized.locate_byte(offset) else {
            return Ok(());
        };
        let index = dlk_dnn::BitIndex { layer, weight, bit };
        let weight_of = |q: &QuantizedMlp| {
            q.weighted_layers()[layer].matrix().unwrap().dequantize().weight().as_slice()[weight]
        };
        let before = weight_of(&quantized);
        let predicted = quantized.flip_delta(index).unwrap();
        quantized.flip_bit(index).unwrap();
        let after = weight_of(&quantized);
        prop_assert!(((after - before) - predicted).abs() < 1e-4);
    }
}
