//! The MLP model: a stack of [`Linear`] layers with ReLU between.

use serde::{Deserialize, Serialize};

use crate::error::DnnError;
use crate::layers::{
    cross_entropy_grad, relu_backward, relu_forward, softmax_cross_entropy, Linear, LinearGrads,
};
use crate::tensor::Tensor;

/// A multi-layer perceptron.
///
/// # Example
///
/// ```
/// use dlk_dnn::{Mlp, Tensor};
/// let model = Mlp::new(&[8, 16, 4], 3);
/// let x = Tensor::zeros(2, 8);
/// let logits = model.forward(&x).unwrap();
/// assert_eq!(logits.shape(), (2, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `&[in, h1, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], seed.wrapping_add(i as u64)))
            .collect();
        Self { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable layers.
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_features)
    }

    /// Output class count.
    pub fn num_classes(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_features)
    }

    /// Total weight parameters across layers (excluding biases).
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(|l| l.weight().len()).sum()
    }

    /// Forward pass to logits.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        let mut activation = x.clone();
        for (index, layer) in self.layers.iter().enumerate() {
            activation = layer.forward(&activation)?;
            if index + 1 < self.layers.len() {
                activation.relu_inplace();
            }
        }
        Ok(activation)
    }

    /// Forward + backward: returns the mean loss and per-layer grads.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes.
    pub fn loss_and_grads(
        &self,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<(f32, Vec<LinearGrads>), DnnError> {
        // Forward with caches.
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut masks = Vec::with_capacity(self.layers.len());
        let mut activation = x.clone();
        for (index, layer) in self.layers.iter().enumerate() {
            inputs.push(activation.clone());
            activation = layer.forward(&activation)?;
            if index + 1 < self.layers.len() {
                let (y, mask) = relu_forward(&activation);
                activation = y;
                masks.push(mask);
            }
        }
        let (loss, probs) = softmax_cross_entropy(&activation, labels);
        // Backward.
        let mut d_out = cross_entropy_grad(&probs, labels);
        let mut grads = vec![None; self.layers.len()];
        for index in (0..self.layers.len()).rev() {
            let (layer_grads, d_x) = self.layers[index].backward(&inputs[index], &d_out)?;
            grads[index] = Some(layer_grads);
            d_out = if index > 0 { relu_backward(&d_x, &masks[index - 1]) } else { d_x };
        }
        Ok((loss, grads.into_iter().map(Option::unwrap).collect()))
    }

    /// One SGD step on a batch; returns the pre-update loss.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes.
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize], lr: f32) -> Result<f32, DnnError> {
        let (loss, grads) = self.loss_and_grads(x, labels)?;
        for (layer, grad) in self.layers.iter_mut().zip(&grads) {
            layer.apply_grads(grad, lr)?;
        }
        Ok(loss)
    }

    /// Predicted class per input row.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn predict(&self, x: &Tensor) -> Result<Vec<usize>, DnnError> {
        let logits = self.forward(x)?;
        Ok(argmax_rows(&logits))
    }

    /// Classification accuracy on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> Result<f64, DnnError> {
        let predictions = self.predict(x)?;
        let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }
}

/// Row-wise argmax.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    (0..logits.rows())
        .map(|row| {
            let mut best = 0;
            let mut best_value = f32::NEG_INFINITY;
            for (index, &value) in logits.row(row).iter().enumerate() {
                if value > best_value {
                    best_value = value;
                    best = index;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let model = Mlp::new(&[4, 8, 3], 1);
        let x = Tensor::zeros(5, 4);
        assert_eq!(model.forward(&x).unwrap().shape(), (5, 3));
        assert_eq!(model.num_classes(), 3);
        assert_eq!(model.in_features(), 4);
        assert_eq!(model.total_weights(), 4 * 8 + 8 * 3);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut model = Mlp::new(&[2, 16, 2], 5);
        // Two separable clusters.
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            xs.extend([sign * 2.0 + 0.01 * i as f32, sign * 2.0]);
            labels.push(usize::from(i % 2 == 1));
        }
        let x = Tensor::from_vec(20, 2, xs);
        let first = model.train_step(&x, &labels, 0.1).unwrap();
        let mut last = first;
        for _ in 0..50 {
            last = model.train_step(&x, &labels, 0.1).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert!(model.accuracy(&x, &labels).unwrap() > 0.95);
    }

    #[test]
    fn multilayer_gradient_check() {
        let model = Mlp::new(&[3, 5, 4, 2], 33);
        let x = Tensor::randn(4, 3, 34);
        let labels = vec![0, 1, 0, 1];
        let (_, grads) = model.loss_and_grads(&x, &labels).unwrap();
        let mut probe = model.clone();
        let eps = 1e-3f32;
        // Check one weight in each layer.
        for (layer_index, layer_grads) in grads.iter().enumerate() {
            let orig = probe.layers()[layer_index].weight().get(0, 0);
            probe.layers_mut()[layer_index].weight_mut().set(0, 0, orig + eps);
            let up = {
                let y = probe.forward(&x).unwrap();
                crate::layers::softmax_cross_entropy(&y, &labels).0
            };
            probe.layers_mut()[layer_index].weight_mut().set(0, 0, orig - eps);
            let down = {
                let y = probe.forward(&x).unwrap();
                crate::layers::softmax_cross_entropy(&y, &labels).0
            };
            probe.layers_mut()[layer_index].weight_mut().set(0, 0, orig);
            let numeric = (up - down) / (2.0 * eps);
            let analytic = layer_grads.weight.get(0, 0);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "layer {layer_index}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn argmax_breaks_ties_low_index() {
        let logits = Tensor::from_rows(&[&[1.0, 1.0, 0.0]]);
        assert_eq!(argmax_rows(&logits), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_sizes_panics() {
        let _ = Mlp::new(&[4], 0);
    }
}
