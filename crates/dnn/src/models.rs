//! The paper's evaluation networks, scaled.
//!
//! The paper uses ResNet-20 on CIFAR-10 and VGG-11 on CIFAR-100. Full
//! convolutional networks are out of scope for a simulation substrate
//! (and irrelevant to the *defense* being evaluated); these stand-ins
//! keep the relevant structure:
//!
//! - `resnet20_like`: deep-and-narrow (many small layers — ResNet-20's
//!   signature), for the CIFAR-10-like dataset;
//! - `vgg11_like`: wider with a big head (VGG's signature), for the
//!   CIFAR-100-like dataset;
//!
//! both trained to high accuracy and then 8-bit quantized, exactly as
//! in the paper's pipeline. DESIGN.md §3 records the substitution.

use crate::data::SyntheticDataset;
use crate::model::Mlp;
use crate::quant::{BitIndex, QuantizedMlp};
use crate::storage::WeightLayout;
use crate::tensor::Tensor;
use crate::train::{TrainConfig, Trainer};

/// A deep-narrow network for the CIFAR-10-like dataset
/// (32 → 64 → 64 → 64 → 48 → 10).
pub fn resnet20_like(seed: u64) -> Mlp {
    Mlp::new(&[32, 64, 64, 64, 48, 10], seed)
}

/// A wide network with a large head for the CIFAR-100-like dataset
/// (64 → 128 → 128 → 100).
pub fn vgg11_like(seed: u64) -> Mlp {
    Mlp::new(&[64, 128, 128, 100], seed)
}

/// A tiny MLP for unit tests (8 → 24 → 4).
pub fn tiny_mlp(seed: u64) -> Mlp {
    Mlp::new(&[8, 24, 4], seed)
}

/// A trained-and-quantized victim: model, dataset and clean accuracy.
#[derive(Debug, Clone)]
pub struct Victim {
    /// The quantized inference network deployed to DRAM.
    pub model: QuantizedMlp,
    /// Its dataset.
    pub dataset: SyntheticDataset,
    /// Test accuracy before any attack.
    pub clean_accuracy: f64,
}

/// Trains and quantizes the ResNet-20-like victim on CIFAR-10-like.
pub fn victim_resnet20_cifar10(seed: u64) -> Victim {
    build_victim(resnet20_like(seed), SyntheticDataset::cifar10_like(seed), 40)
}

/// Trains and quantizes the VGG-11-like victim on CIFAR-100-like.
pub fn victim_vgg11_cifar100(seed: u64) -> Victim {
    build_victim(vgg11_like(seed), SyntheticDataset::cifar100_like(seed), 50)
}

/// Trains and quantizes a tiny victim for tests.
pub fn victim_tiny(seed: u64) -> Victim {
    build_victim(tiny_mlp(seed), SyntheticDataset::tiny_for_tests(seed), 12)
}

/// The most damaging MSB flip among weights in the *first DRAM row* of
/// the weight image laid out by `layout`.
///
/// The OS isolates the victim's own pages, so an unprivileged attacker
/// can only hammer the unowned rows physically adjacent to the image —
/// making the image's edge row the only row whose bits are reachable.
/// This ranks the edge-row MSBs by first-order loss increase
/// `grad · Δw` on the batch `(x, y)` and returns the best, or `None`
/// when no edge-row flip increases the loss.
pub fn best_edge_target(
    model: &QuantizedMlp,
    layout: &WeightLayout,
    x: &Tensor,
    y: &[usize],
) -> Option<BitIndex> {
    let (_, grads) = model.loss_and_grads(x, y).ok()?;
    let row_bytes = layout.mapper().geometry().row_bytes;
    let base = layout.base_phys() as usize;
    let edge_bytes = row_bytes - (base % row_bytes).min(row_bytes);
    let mut best: Option<(f32, BitIndex)> = None;
    for offset in 0..edge_bytes.min(model.total_weights()) {
        let (layer, weight) = model.locate_byte(offset)?;
        let index = BitIndex { layer, weight, bit: 7 };
        let delta = model.flip_delta(index).ok()?;
        let gain = grads[layer].weight.as_slice()[weight] * delta;
        if gain > 0.0 && best.is_none_or(|(b, _)| gain > b) {
            best = Some((gain, index));
        }
    }
    best.map(|(_, index)| index)
}

fn build_victim(mut model: Mlp, dataset: SyntheticDataset, epochs: usize) -> Victim {
    let config = TrainConfig { epochs, ..TrainConfig::default() };
    Trainer::new(config).fit(&mut model, &dataset);
    let quantized = QuantizedMlp::quantize(&model);
    let clean_accuracy =
        quantized.accuracy(&dataset.test_x, &dataset.test_y).expect("victim shapes are consistent");
    Victim { model: quantized, dataset, clean_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_victim_trains_well() {
        let victim = victim_tiny(11);
        assert!(victim.clean_accuracy > 0.7, "clean accuracy {}", victim.clean_accuracy);
    }

    #[test]
    fn victims_are_deterministic() {
        let a = victim_tiny(4);
        let b = victim_tiny(4);
        assert_eq!(a.model, b.model);
        assert_eq!(a.clean_accuracy, b.clean_accuracy);
    }

    #[test]
    fn architectures_have_expected_shapes() {
        assert_eq!(resnet20_like(0).num_layers(), 5);
        assert_eq!(resnet20_like(0).num_classes(), 10);
        assert_eq!(vgg11_like(0).num_classes(), 100);
        // Deep-narrow vs wide: resnet-like has more layers, vgg-like
        // more parameters per layer on average.
        let r = resnet20_like(0);
        let v = vgg11_like(0);
        assert!(r.num_layers() > v.num_layers());
        assert!(v.total_weights() / v.num_layers() > r.total_weights() / r.num_layers());
    }
}
