//! The paper's evaluation networks.
//!
//! The paper uses ResNet-20 on CIFAR-10 and VGG-11 on CIFAR-100. Two
//! families of stand-ins are provided, both trained to high accuracy
//! and 8-bit quantized exactly as in the paper's pipeline:
//!
//! - MLP stand-ins (`resnet20_like`, `vgg11_like`): the original
//!   dense-only substrate, still used by the training-time defense
//!   baselines (Table II) whose transforms are MLP-specific;
//! - convolutional stand-ins (`resnet20_cnn`, `vgg11_cnn`,
//!   `tiny_cnn`): real conv/pool/residual topologies on the
//!   [`Network`] substrate — scaled to 1×8×8 synthetic images so
//!   functional simulation stays test-sized, but with the papers'
//!   structural signatures (ResNet-20: a conv stem and three stages of
//!   three identity-skip residual blocks; VGG-11: eight convs with
//!   interleaved max-pools and a three-layer dense head). Their conv
//!   kernels quantize, deploy to DRAM rows and are attacked bit-by-bit
//!   through exactly the same [`BitIndex`] machinery as dense weights.
//!
//! DESIGN.md §3 records the dataset substitution.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::conv::{Conv2d, ConvSpec, Pool2d};
use crate::data::SyntheticDataset;
use crate::layers::Linear;
use crate::model::Mlp;
use crate::network::{Layer, Network};
use crate::quant::{BitIndex, QuantizedMlp};
use crate::storage::WeightLayout;
use crate::tensor::Tensor;
use crate::train::{TrainConfig, Trainable, Trainer};

/// A deep-narrow network for the CIFAR-10-like dataset
/// (32 → 64 → 64 → 64 → 48 → 10).
pub fn resnet20_like(seed: u64) -> Mlp {
    Mlp::new(&[32, 64, 64, 64, 48, 10], seed)
}

/// A wide network with a large head for the CIFAR-100-like dataset
/// (64 → 128 → 128 → 100).
pub fn vgg11_like(seed: u64) -> Mlp {
    Mlp::new(&[64, 128, 128, 100], seed)
}

/// A tiny MLP for unit tests (8 → 24 → 4).
pub fn tiny_mlp(seed: u64) -> Mlp {
    Mlp::new(&[8, 24, 4], seed)
}

/// A 3×3/stride-1/pad-1 convolution at the given feature-map size.
fn conv3(in_c: usize, out_c: usize, h: usize, w: usize, seed: u64) -> Layer {
    Layer::Conv(Conv2d::new(
        ConvSpec { in_c, in_h: h, in_w: w, out_c, k: 3, stride: 1, pad: 1 },
        seed,
    ))
}

/// One identity-skip residual basic block (conv–relu–conv, add, relu).
fn res_block(layers: &mut Vec<Layer>, c: usize, h: usize, w: usize, seed: u64) {
    layers.push(Layer::SkipStart);
    layers.push(conv3(c, c, h, w, seed));
    layers.push(Layer::Relu);
    layers.push(conv3(c, c, h, w, seed + 1));
    layers.push(Layer::SkipAdd);
    layers.push(Layer::Relu);
}

/// The ResNet-20-shaped CNN for 1×8×8 CIFAR-10-like images: conv stem,
/// three stages of three residual blocks (widths 4/8/12) with
/// average-pool downsampling between stages, dense classifier — 22
/// weighted layers, ~13.8k quantized weights.
pub fn resnet20_cnn(seed: u64) -> Network {
    let mut layers = Vec::new();
    layers.push(conv3(1, 4, 8, 8, seed));
    layers.push(Layer::Relu);
    for block in 0..3 {
        res_block(&mut layers, 4, 8, 8, seed + 1 + 2 * block);
    }
    layers.push(conv3(4, 8, 8, 8, seed + 7));
    layers.push(Layer::Relu);
    layers.push(Layer::AvgPool(Pool2d::halve(8, 8, 8)));
    for block in 0..3 {
        res_block(&mut layers, 8, 4, 4, seed + 8 + 2 * block);
    }
    layers.push(conv3(8, 12, 4, 4, seed + 14));
    layers.push(Layer::Relu);
    layers.push(Layer::AvgPool(Pool2d::halve(12, 4, 4)));
    for block in 0..3 {
        res_block(&mut layers, 12, 2, 2, seed + 15 + 2 * block);
    }
    layers.push(Layer::Dense(Linear::new(12 * 2 * 2, 10, seed + 21)));
    Network::new(layers)
}

/// The VGG-11-shaped CNN for 1×8×8 CIFAR-100-like images: eight 3×3
/// convs (widths 4/8/16/16/24/24/24/24) with max-pool halvings after
/// the first two, and a three-layer dense head — 11 weighted layers,
/// ~38k quantized weights.
pub fn vgg11_cnn(seed: u64) -> Network {
    let mut layers = vec![conv3(1, 4, 8, 8, seed), Layer::Relu];
    layers.push(Layer::MaxPool(Pool2d::halve(4, 8, 8)));
    layers.push(conv3(4, 8, 4, 4, seed + 1));
    layers.push(Layer::Relu);
    layers.push(Layer::MaxPool(Pool2d::halve(8, 4, 4)));
    layers.push(conv3(8, 16, 2, 2, seed + 2));
    layers.push(Layer::Relu);
    layers.push(conv3(16, 16, 2, 2, seed + 3));
    layers.push(Layer::Relu);
    layers.push(conv3(16, 24, 2, 2, seed + 4));
    layers.push(Layer::Relu);
    for i in 0..3 {
        layers.push(conv3(24, 24, 2, 2, seed + 5 + i));
        layers.push(Layer::Relu);
    }
    layers.push(Layer::Dense(Linear::new(24 * 2 * 2, 64, seed + 8)));
    layers.push(Layer::Relu);
    layers.push(Layer::Dense(Linear::new(64, 64, seed + 9)));
    layers.push(Layer::Relu);
    layers.push(Layer::Dense(Linear::new(64, 100, seed + 10)));
    Network::new(layers)
}

/// A miniature residual CNN for unit tests (1×6×6 images, 4 classes):
/// conv stem, two residual blocks around an average-pool transition,
/// dense head — 7 weighted layers, ~1.2k weights.
pub fn tiny_cnn(seed: u64) -> Network {
    let mut layers = vec![conv3(1, 3, 6, 6, seed), Layer::Relu];
    res_block(&mut layers, 3, 6, 6, seed + 1);
    layers.push(conv3(3, 6, 6, 6, seed + 3));
    layers.push(Layer::Relu);
    layers.push(Layer::AvgPool(Pool2d::halve(6, 6, 6)));
    res_block(&mut layers, 6, 3, 3, seed + 4);
    layers.push(Layer::Dense(Linear::new(6 * 3 * 3, 4, seed + 6)));
    Network::new(layers)
}

/// The enumerable victim-model zoo: every trained victim the scenario
/// layer can name *as data*. A `(ModelKind, seed)` pair fully
/// determines a [`Victim`] (training is deterministic per seed), which
/// is what lets scenario specs and sweep grids carry victims as plain
/// values instead of closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Tiny MLP for tests ([`victim_tiny`]).
    Tiny,
    /// Miniature residual CNN for tests ([`victim_tiny_cnn`]).
    TinyCnn,
    /// ResNet-20-like MLP stand-in on CIFAR-10-like
    /// ([`victim_resnet20_cifar10`]).
    Resnet20,
    /// VGG-11-like MLP stand-in on CIFAR-100-like
    /// ([`victim_vgg11_cifar100`]).
    Vgg11,
    /// ResNet-20-shaped CNN on CIFAR-10 image stand-ins
    /// ([`victim_resnet20_cnn`]).
    Resnet20Cnn,
    /// VGG-11-shaped CNN on CIFAR-100 image stand-ins
    /// ([`victim_vgg11_cnn`]).
    Vgg11Cnn,
}

impl ModelKind {
    /// Every model kind, in zoo order.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Tiny,
        ModelKind::TinyCnn,
        ModelKind::Resnet20,
        ModelKind::Vgg11,
        ModelKind::Resnet20Cnn,
        ModelKind::Vgg11Cnn,
    ];

    /// Trains (or fetches the memoized copy of) this kind's victim for
    /// `seed`.
    pub fn victim(self, seed: u64) -> Victim {
        match self {
            ModelKind::Tiny => victim_tiny(seed),
            ModelKind::TinyCnn => victim_tiny_cnn(seed),
            ModelKind::Resnet20 => victim_resnet20_cifar10(seed),
            ModelKind::Vgg11 => victim_vgg11_cifar100(seed),
            ModelKind::Resnet20Cnn => victim_resnet20_cnn(seed),
            ModelKind::Vgg11Cnn => victim_vgg11_cnn(seed),
        }
    }

    /// The stable spec-file token for this kind.
    pub fn token(self) -> &'static str {
        match self {
            ModelKind::Tiny => "tiny",
            ModelKind::TinyCnn => "tiny-cnn",
            ModelKind::Resnet20 => "resnet20",
            ModelKind::Vgg11 => "vgg11",
            ModelKind::Resnet20Cnn => "resnet20-cnn",
            ModelKind::Vgg11Cnn => "vgg11-cnn",
        }
    }

    /// Parses a [`token`](ModelKind::token) back into a kind.
    pub fn from_token(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.token() == token)
    }

    /// Number of weighted layers (dense + conv) in this kind's
    /// architecture — available *without* training the victim, so
    /// static analyzers can sanity-check layer-indexed attack
    /// parameters before a run. Pinned to the constructors (see the
    /// `weighted_layers_match_constructed_networks` test).
    pub fn weighted_layers(self) -> usize {
        match self {
            ModelKind::Tiny => 2,
            ModelKind::TinyCnn => 7,
            ModelKind::Resnet20 => 5,
            ModelKind::Vgg11 => 3,
            ModelKind::Resnet20Cnn => 22,
            ModelKind::Vgg11Cnn => 11,
        }
    }
}

/// A trained-and-quantized victim: model, dataset and clean accuracy.
#[derive(Debug, Clone)]
pub struct Victim {
    /// The quantized inference network deployed to DRAM.
    pub model: QuantizedMlp,
    /// Its dataset.
    pub dataset: SyntheticDataset,
    /// Test accuracy before any attack.
    pub clean_accuracy: f64,
}

/// Trains and quantizes the ResNet-20-like victim on CIFAR-10-like
/// (memoized per seed).
pub fn victim_resnet20_cifar10(seed: u64) -> Victim {
    cached_victim("resnet20", seed, || {
        build_victim(resnet20_like(seed), SyntheticDataset::cifar10_like(seed), 40, 0.3)
    })
}

/// Trains and quantizes the VGG-11-like victim on CIFAR-100-like
/// (memoized per seed).
pub fn victim_vgg11_cifar100(seed: u64) -> Victim {
    cached_victim("vgg11", seed, || {
        build_victim(vgg11_like(seed), SyntheticDataset::cifar100_like(seed), 50, 0.3)
    })
}

/// Trains and quantizes a tiny victim for tests (memoized per seed:
/// sweeps and spec-built scenarios request the same victim repeatedly).
pub fn victim_tiny(seed: u64) -> Victim {
    cached_victim("tiny", seed, || {
        build_victim(tiny_mlp(seed), SyntheticDataset::tiny_for_tests(seed), 12, 0.3)
    })
}

/// Trains and quantizes the ResNet-20-shaped CNN victim on CIFAR-10
/// image stand-ins. Memoized per seed: CNN training is the expensive
/// step of a scenario, and sweeps build the same victim repeatedly.
pub fn victim_resnet20_cnn(seed: u64) -> Victim {
    cached_victim("resnet20-cnn", seed, || {
        build_victim(resnet20_cnn(seed), SyntheticDataset::cifar10_images(seed), 20, 0.12)
    })
}

/// Trains and quantizes the VGG-11-shaped CNN victim on CIFAR-100
/// image stand-ins (memoized per seed).
pub fn victim_vgg11_cnn(seed: u64) -> Victim {
    cached_victim("vgg11-cnn", seed, || {
        build_victim(vgg11_cnn(seed), SyntheticDataset::cifar100_images(seed), 30, 0.15)
    })
}

/// Trains and quantizes the miniature residual CNN for tests
/// (memoized per seed).
pub fn victim_tiny_cnn(seed: u64) -> Victim {
    cached_victim("tiny-cnn", seed, || {
        build_victim(tiny_cnn(seed), SyntheticDataset::tiny_images_for_tests(seed), 30, 0.05)
    })
}

/// The most damaging MSB flip among weights in the *first DRAM row* of
/// the weight image laid out by `layout`.
///
/// The OS isolates the victim's own pages, so an unprivileged attacker
/// can only hammer the unowned rows physically adjacent to the image —
/// making the image's edge row the only row whose bits are reachable.
/// This ranks the edge-row MSBs by first-order loss increase
/// `grad · Δw` on the batch `(x, y)` and returns the best, or `None`
/// when no edge-row flip increases the loss. For CNN victims the edge
/// row holds the first conv kernels, so the search walks conv-kernel
/// bits through the same flat indexing.
pub fn best_edge_target(
    model: &QuantizedMlp,
    layout: &WeightLayout,
    x: &Tensor,
    y: &[usize],
) -> Option<BitIndex> {
    let (_, grads) = model.loss_and_grads(x, y).ok()?;
    let row_bytes = layout.mapper().geometry().row_bytes;
    let base = layout.base_phys() as usize;
    let edge_bytes = row_bytes - (base % row_bytes).min(row_bytes);
    let mut best: Option<(f32, BitIndex)> = None;
    for offset in 0..edge_bytes.min(model.total_weights()) {
        let (layer, weight) = model.locate_byte(offset)?;
        let index = BitIndex { layer, weight, bit: 7 };
        let delta = model.flip_delta(index).ok()?;
        let gain = grads[layer].weight[weight] * delta;
        if gain > 0.0 && best.is_none_or(|(b, _)| gain > b) {
            best = Some((gain, index));
        }
    }
    best.map(|(_, index)| index)
}

fn build_victim<M>(mut model: M, dataset: SyntheticDataset, epochs: usize, lr: f32) -> Victim
where
    M: Trainable,
    for<'a> &'a M: Into<Network>,
{
    let config = TrainConfig { epochs, lr, ..TrainConfig::default() };
    Trainer::new(config).fit(&mut model, &dataset);
    let quantized = QuantizedMlp::quantize(&model);
    let clean_accuracy =
        quantized.accuracy(&dataset.test_x, &dataset.test_y).expect("victim shapes are consistent");
    Victim { model: quantized, dataset, clean_accuracy }
}

/// Returns the cached victim for `(kind, seed)`, training it on first
/// use. Victims are deterministic per seed, so caching is observable
/// only as saved time.
fn cached_victim(kind: &'static str, seed: u64, build: impl FnOnce() -> Victim) -> Victim {
    static CACHE: OnceLock<Mutex<HashMap<(&'static str, u64), Victim>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(victim) = cache.lock().expect("victim cache lock").get(&(kind, seed)) {
        return victim.clone();
    }
    let victim = build();
    cache.lock().expect("victim cache lock").insert((kind, seed), victim.clone());
    victim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_victim_trains_well() {
        let victim = victim_tiny(11);
        assert!(victim.clean_accuracy > 0.7, "clean accuracy {}", victim.clean_accuracy);
    }

    #[test]
    fn victims_are_deterministic() {
        let a = victim_tiny(4);
        let b = victim_tiny(4);
        assert_eq!(a.model, b.model);
        assert_eq!(a.clean_accuracy, b.clean_accuracy);
    }

    #[test]
    fn architectures_have_expected_shapes() {
        assert_eq!(resnet20_like(0).num_layers(), 5);
        assert_eq!(resnet20_like(0).num_classes(), 10);
        assert_eq!(vgg11_like(0).num_classes(), 100);
        // Deep-narrow vs wide: resnet-like has more layers, vgg-like
        // more parameters per layer on average.
        let r = resnet20_like(0);
        let v = vgg11_like(0);
        assert!(r.num_layers() > v.num_layers());
        assert!(v.total_weights() / v.num_layers() > r.total_weights() / r.num_layers());
    }

    #[test]
    fn cnn_topologies_have_the_papers_shapes() {
        let r = resnet20_cnn(0);
        // Stem + 9 residual blocks × 2 convs + 2 transition convs +
        // dense head — ResNet-20's ~20 weighted layers.
        assert_eq!(r.weighted_count(), 22);
        assert_eq!(r.num_classes(), 10);
        assert_eq!(r.in_features(), 64);
        let skips = r.layers().iter().filter(|l| matches!(l, Layer::SkipAdd)).count();
        assert_eq!(skips, 9, "three stages of three residual blocks");

        let v = vgg11_cnn(0);
        assert_eq!(v.weighted_count(), 11, "VGG-11: 8 convs + 3 dense");
        assert_eq!(v.num_classes(), 100);
        // VGG's signature vs ResNet's: fewer, fatter layers.
        assert!(v.total_weights() > r.total_weights());
        assert!(r.weighted_count() > v.weighted_count());

        let t = tiny_cnn(0);
        assert_eq!(t.weighted_count(), 7);
        assert_eq!(t.num_classes(), 4);
    }

    #[test]
    fn weighted_layers_match_constructed_networks() {
        assert_eq!(ModelKind::Tiny.weighted_layers(), tiny_mlp(0).num_layers());
        assert_eq!(ModelKind::Resnet20.weighted_layers(), resnet20_like(0).num_layers());
        assert_eq!(ModelKind::Vgg11.weighted_layers(), vgg11_like(0).num_layers());
        assert_eq!(ModelKind::TinyCnn.weighted_layers(), tiny_cnn(0).weighted_count());
        assert_eq!(ModelKind::Resnet20Cnn.weighted_layers(), resnet20_cnn(0).weighted_count());
        assert_eq!(ModelKind::Vgg11Cnn.weighted_layers(), vgg11_cnn(0).weighted_count());
    }

    #[test]
    fn tiny_cnn_victim_trains_well_and_is_cached() {
        let victim = victim_tiny_cnn(11);
        assert!(victim.clean_accuracy > 0.7, "clean accuracy {}", victim.clean_accuracy);
        // Same seed returns the identical cached victim.
        let again = victim_tiny_cnn(11);
        assert_eq!(victim.model, again.model);
        // The quantized model is a real CNN, not an MLP.
        assert!(victim.model.to_mlp().is_none());
    }

    #[test]
    fn cnn_forward_is_deterministic_per_seed() {
        let a = tiny_cnn(3);
        let b = tiny_cnn(3);
        let c = tiny_cnn(4);
        let x = Tensor::randn(2, 36, 5);
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        assert_ne!(a.forward(&x).unwrap(), c.forward(&x).unwrap());
    }
}
