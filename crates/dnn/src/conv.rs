//! Convolutional and pooling layers with hand-written backprop.
//!
//! Feature maps travel between layers as the workspace's 2-D
//! [`Tensor`]: each batch row is one image flattened channel-major,
//! `features[c * h * w + y * w + x]`. A [`ConvSpec`] carries the
//! spatial interpretation, so a convolution is self-describing — it
//! validates its input width and produces the next layer's width.
//!
//! The forward path uses im2col: every receptive field is unrolled
//! into a row of a patch matrix, turning the convolution into one
//! matrix product against the `(out_c, in_c·k·k)` kernel matrix. That
//! matrix is quantized, deployed to DRAM and attacked bit-by-bit
//! exactly like a fully-connected weight matrix — which is what lets
//! BFA walk conv kernels through the same [`BitIndex`] machinery.
//!
//! [`BitIndex`]: crate::quant::BitIndex

use serde::{Deserialize, Serialize};

use crate::error::DnnError;
use crate::tensor::Tensor;

/// Spatial specification of a 2-D convolution with square kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel side length.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each spatial border.
    pub pad: usize,
}

impl ConvSpec {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Flattened input width `in_c·in_h·in_w`.
    pub fn in_features(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    /// Flattened output width `out_c·out_h·out_w`.
    pub fn out_features(&self) -> usize {
        self.out_c * self.out_h() * self.out_w()
    }

    /// Unrolled receptive-field length `in_c·k·k` — the kernel
    /// matrix's inner dimension.
    pub fn patch_len(&self) -> usize {
        self.in_c * self.k * self.k
    }
}

/// A 2-D convolution layer storing its kernels as the im2col matrix
/// `(out_c, in_c·k·k)`.
///
/// # Example
///
/// ```
/// use dlk_dnn::conv::{Conv2d, ConvSpec};
/// use dlk_dnn::Tensor;
///
/// let spec = ConvSpec { in_c: 1, in_h: 4, in_w: 4, out_c: 2, k: 3, stride: 1, pad: 1 };
/// let conv = Conv2d::new(spec, 7);
/// let x = Tensor::zeros(5, spec.in_features());
/// let y = conv.forward(&x).unwrap();
/// assert_eq!(y.shape(), (5, spec.out_features()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    weight: Tensor,
    bias: Vec<f32>,
    spec: ConvSpec,
}

/// Gradients of one convolution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvGrads {
    /// dL/dW in kernel-matrix form `(out_c, in_c·k·k)`.
    pub weight: Tensor,
    /// dL/db, length `out_c`.
    pub bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a layer with Kaiming-random kernels and zero bias.
    pub fn new(spec: ConvSpec, seed: u64) -> Self {
        Self {
            weight: Tensor::randn(spec.out_c, spec.patch_len(), seed),
            bias: vec![0.0; spec.out_c],
            spec,
        }
    }

    /// Creates a layer from an explicit kernel matrix.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not `(out_c, in_c·k·k)` or `bias` is not
    /// `out_c` long.
    pub fn from_parts(weight: Tensor, bias: Vec<f32>, spec: ConvSpec) -> Self {
        assert_eq!(weight.shape(), (spec.out_c, spec.patch_len()), "kernel matrix shape");
        assert_eq!(bias.len(), spec.out_c, "bias length must equal out channels");
        Self { weight, bias, spec }
    }

    /// The spatial specification.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// The kernel matrix `(out_c, in_c·k·k)`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable kernel matrix.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    fn check_input(&self, x: &Tensor) -> Result<(), DnnError> {
        if x.cols() != self.spec.in_features() {
            return Err(DnnError::ShapeMismatch {
                op: "conv2d",
                lhs: x.shape(),
                rhs: (self.spec.out_c, self.spec.in_features()),
            });
        }
        Ok(())
    }

    /// Unrolls every receptive field of `x` into a patch-matrix row:
    /// `(batch·out_h·out_w, in_c·k·k)`, zero-filled where the kernel
    /// overhangs the padding border.
    fn im2col(&self, x: &Tensor) -> Tensor {
        let s = &self.spec;
        let (oh, ow, plen) = (s.out_h(), s.out_w(), s.patch_len());
        let mut cols = Tensor::zeros(x.rows() * oh * ow, plen);
        let data = cols.as_mut_slice();
        for b in 0..x.rows() {
            let image = x.row(b);
            for oy in 0..oh {
                for ox in 0..ow {
                    let base = ((b * oh + oy) * ow + ox) * plen;
                    for c in 0..s.in_c {
                        for ky in 0..s.k {
                            let iy = oy * s.stride + ky;
                            if iy < s.pad || iy >= s.in_h + s.pad {
                                continue;
                            }
                            let iy = iy - s.pad;
                            for kx in 0..s.k {
                                let ix = ox * s.stride + kx;
                                if ix < s.pad || ix >= s.in_w + s.pad {
                                    continue;
                                }
                                let ix = ix - s.pad;
                                data[base + (c * s.k + ky) * s.k + kx] =
                                    image[(c * s.in_h + iy) * s.in_w + ix];
                            }
                        }
                    }
                }
            }
        }
        cols
    }

    /// Scatter-adds patch-matrix gradients back onto the input image —
    /// the exact adjoint of [`Conv2d::im2col`].
    fn col2im(&self, d_cols: &Tensor, batch: usize) -> Tensor {
        let s = &self.spec;
        let (oh, ow, plen) = (s.out_h(), s.out_w(), s.patch_len());
        let mut d_x = Tensor::zeros(batch, s.in_features());
        let out = d_x.as_mut_slice();
        for b in 0..batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = d_cols.row((b * oh + oy) * ow + ox);
                    debug_assert_eq!(row.len(), plen);
                    for c in 0..s.in_c {
                        for ky in 0..s.k {
                            let iy = oy * s.stride + ky;
                            if iy < s.pad || iy >= s.in_h + s.pad {
                                continue;
                            }
                            let iy = iy - s.pad;
                            for kx in 0..s.k {
                                let ix = ox * s.stride + kx;
                                if ix < s.pad || ix >= s.in_w + s.pad {
                                    continue;
                                }
                                let ix = ix - s.pad;
                                out[b * s.in_features() + (c * s.in_h + iy) * s.in_w + ix] +=
                                    row[(c * s.k + ky) * s.k + kx];
                            }
                        }
                    }
                }
            }
        }
        d_x
    }

    /// Forward pass via im2col: `x (batch, in_c·in_h·in_w)` →
    /// `(batch, out_c·out_h·out_w)`, channel-major.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        self.check_input(x)?;
        let s = &self.spec;
        let (oh, ow) = (s.out_h(), s.out_w());
        let cols = self.im2col(x);
        // (batch·oh·ow, out_c)
        let y = cols.matmul_transpose(&self.weight)?;
        let mut out = Tensor::zeros(x.rows(), s.out_features());
        let data = out.as_mut_slice();
        for b in 0..x.rows() {
            for p in 0..oh * ow {
                let src = y.row(b * oh * ow + p);
                for (c, &v) in src.iter().enumerate() {
                    data[b * s.out_features() + c * oh * ow + p] = v + self.bias[c];
                }
            }
        }
        Ok(out)
    }

    /// Reference forward pass with naive nested loops — the oracle the
    /// im2col path is tested against.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward_naive(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        self.check_input(x)?;
        let s = &self.spec;
        let (oh, ow) = (s.out_h(), s.out_w());
        let mut out = Tensor::zeros(x.rows(), s.out_features());
        for b in 0..x.rows() {
            let image = x.row(b);
            for oc in 0..s.out_c {
                let kernel = self.weight.row(oc);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias[oc];
                        for c in 0..s.in_c {
                            for ky in 0..s.k {
                                for kx in 0..s.k {
                                    let iy = (oy * s.stride + ky) as i64 - s.pad as i64;
                                    let ix = (ox * s.stride + kx) as i64 - s.pad as i64;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= s.in_h as i64
                                        || ix >= s.in_w as i64
                                    {
                                        continue;
                                    }
                                    acc += kernel[(c * s.k + ky) * s.k + kx]
                                        * image[(c * s.in_h + iy as usize) * s.in_w + ix as usize];
                                }
                            }
                        }
                        out.set(b, (oc * oh + oy) * ow + ox, acc);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Backward pass. Given the forward input `x` and upstream gradient
    /// `d_out (batch, out_c·out_h·out_w)`, returns `(grads, d_x)`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes.
    pub fn backward(&self, x: &Tensor, d_out: &Tensor) -> Result<(ConvGrads, Tensor), DnnError> {
        self.check_input(x)?;
        let s = &self.spec;
        let (oh, ow) = (s.out_h(), s.out_w());
        if d_out.shape() != (x.rows(), s.out_features()) {
            return Err(DnnError::ShapeMismatch {
                op: "conv2d backward",
                lhs: d_out.shape(),
                rhs: (x.rows(), s.out_features()),
            });
        }
        // Fold the channel-major output gradient back into patch-row
        // order (batch·oh·ow, out_c).
        let mut d_y = Tensor::zeros(x.rows() * oh * ow, s.out_c);
        let mut d_bias = vec![0.0f32; s.out_c];
        for b in 0..x.rows() {
            let grad = d_out.row(b);
            for c in 0..s.out_c {
                for p in 0..oh * ow {
                    let v = grad[c * oh * ow + p];
                    d_y.set(b * oh * ow + p, c, v);
                    d_bias[c] += v;
                }
            }
        }
        let cols = self.im2col(x);
        // dW = d_yᵀ × cols  (out_c, in_c·k·k)
        let d_weight = d_y.transpose_matmul(&cols)?;
        // d_cols = d_y × W  (batch·oh·ow, in_c·k·k)
        let d_cols = d_y.matmul(&self.weight)?;
        let d_x = self.col2im(&d_cols, x.rows());
        Ok((ConvGrads { weight: d_weight, bias: d_bias }, d_x))
    }
}

/// A 2-D pooling window (shared by max and average pooling, which
/// carry no parameters — the [`Layer`](crate::network::Layer) variant
/// picks the reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool2d {
    /// Channels (pooling is per-channel).
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Window side length.
    pub k: usize,
    /// Stride.
    pub stride: usize,
}

impl Pool2d {
    /// The ubiquitous 2×2/stride-2 halving window.
    pub fn halve(channels: usize, in_h: usize, in_w: usize) -> Self {
        Self { channels, in_h, in_w, k: 2, stride: 2 }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w - self.k) / self.stride + 1
    }

    /// Flattened input width.
    pub fn in_features(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    /// Flattened output width.
    pub fn out_features(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }

    fn check_input(&self, x: &Tensor) -> Result<(), DnnError> {
        if x.cols() != self.in_features() {
            return Err(DnnError::ShapeMismatch {
                op: "pool2d",
                lhs: x.shape(),
                rhs: (self.channels, self.in_features()),
            });
        }
        Ok(())
    }

    /// Max-pool forward. Returns the output and, per output element,
    /// the flat in-row index of the winning input (for backward).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward_max(&self, x: &Tensor) -> Result<(Tensor, Vec<usize>), DnnError> {
        self.check_input(x)?;
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = Tensor::zeros(x.rows(), self.out_features());
        let mut switches = vec![0usize; x.rows() * self.out_features()];
        for b in 0..x.rows() {
            let image = x.row(b);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_index = 0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let index = (c * self.in_h + iy) * self.in_w + ix;
                                if image[index] > best {
                                    best = image[index];
                                    best_index = index;
                                }
                            }
                        }
                        let o = (c * oh + oy) * ow + ox;
                        out.set(b, o, best);
                        switches[b * self.out_features() + o] = best_index;
                    }
                }
            }
        }
        Ok((out, switches))
    }

    /// Max-pool backward: route each output gradient to the input that
    /// won the forward max.
    ///
    /// # Panics
    ///
    /// Panics if `switches` does not match `d_out`'s element count.
    pub fn backward_max(&self, d_out: &Tensor, switches: &[usize]) -> Tensor {
        assert_eq!(switches.len(), d_out.len(), "switch/grad size mismatch");
        let mut d_x = Tensor::zeros(d_out.rows(), self.in_features());
        let out = d_x.as_mut_slice();
        for b in 0..d_out.rows() {
            let grad = d_out.row(b);
            for (o, &g) in grad.iter().enumerate() {
                out[b * self.in_features() + switches[b * self.out_features() + o]] += g;
            }
        }
        d_x
    }

    /// Average-pool forward.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward_avg(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        self.check_input(x)?;
        let (oh, ow) = (self.out_h(), self.out_w());
        let norm = 1.0 / (self.k * self.k) as f32;
        let mut out = Tensor::zeros(x.rows(), self.out_features());
        for b in 0..x.rows() {
            let image = x.row(b);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                acc += image[(c * self.in_h + iy) * self.in_w + ix];
                            }
                        }
                        out.set(b, (c * oh + oy) * ow + ox, acc * norm);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Average-pool backward: spread each output gradient uniformly
    /// over its window.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong gradient width.
    pub fn backward_avg(&self, d_out: &Tensor) -> Result<Tensor, DnnError> {
        if d_out.cols() != self.out_features() {
            return Err(DnnError::ShapeMismatch {
                op: "pool2d backward",
                lhs: d_out.shape(),
                rhs: (self.channels, self.out_features()),
            });
        }
        let (oh, ow) = (self.out_h(), self.out_w());
        let norm = 1.0 / (self.k * self.k) as f32;
        let mut d_x = Tensor::zeros(d_out.rows(), self.in_features());
        let out = d_x.as_mut_slice();
        for b in 0..d_out.rows() {
            let grad = d_out.row(b);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad[(c * oh + oy) * ow + ox] * norm;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                out[b * self.in_features()
                                    + (c * self.in_h + iy) * self.in_w
                                    + ix] += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(d_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_3x3() -> ConvSpec {
        ConvSpec { in_c: 2, in_h: 5, in_w: 4, out_c: 3, k: 3, stride: 1, pad: 1 }
    }

    #[test]
    fn im2col_forward_matches_naive_reference() {
        for spec in [
            spec_3x3(),
            ConvSpec { in_c: 1, in_h: 6, in_w: 6, out_c: 2, k: 3, stride: 2, pad: 0 },
            ConvSpec { in_c: 3, in_h: 4, in_w: 4, out_c: 4, k: 2, stride: 2, pad: 1 },
            ConvSpec { in_c: 2, in_h: 1, in_w: 1, out_c: 2, k: 3, stride: 1, pad: 1 },
        ] {
            let mut conv = Conv2d::new(spec, 11);
            for (i, b) in conv.bias_mut().iter_mut().enumerate() {
                *b = 0.1 * i as f32 - 0.05;
            }
            let x = Tensor::randn(3, spec.in_features(), 12);
            let fast = conv.forward(&x).unwrap();
            let naive = conv.forward_naive(&x).unwrap();
            assert_eq!(fast.shape(), naive.shape());
            for (a, b) in fast.as_slice().iter().zip(naive.as_slice()) {
                assert!((a - b).abs() < 1e-4, "im2col {a} vs naive {b} in {spec:?}");
            }
        }
    }

    #[test]
    fn conv_shapes_and_wrong_input_rejected() {
        let spec = spec_3x3();
        let conv = Conv2d::new(spec, 1);
        assert_eq!(spec.out_h(), 5);
        assert_eq!(spec.out_w(), 4);
        let y = conv.forward(&Tensor::zeros(2, spec.in_features())).unwrap();
        assert_eq!(y.shape(), (2, spec.out_features()));
        assert!(conv.forward(&Tensor::zeros(2, spec.in_features() + 1)).is_err());
    }

    #[test]
    fn conv_gradient_check_weights_bias_and_input() {
        let spec = ConvSpec { in_c: 2, in_h: 3, in_w: 3, out_c: 2, k: 2, stride: 1, pad: 0 };
        let mut conv = Conv2d::new(spec, 21);
        let x = Tensor::randn(2, spec.in_features(), 22);
        // Scalar loss: sum of squared outputs / 2, so dL/dy = y.
        let loss_of = |conv: &Conv2d, x: &Tensor| -> f32 {
            conv.forward(x).unwrap().as_slice().iter().map(|v| v * v * 0.5).sum()
        };
        let y = conv.forward(&x).unwrap();
        let (grads, d_x) = conv.backward(&x, &y).unwrap();

        let eps = 1e-2f32;
        for index in [0usize, 3, 7, spec.out_c * spec.patch_len() - 1] {
            let orig = conv.weight().as_slice()[index];
            conv.weight_mut().as_mut_slice()[index] = orig + eps;
            let up = loss_of(&conv, &x);
            conv.weight_mut().as_mut_slice()[index] = orig - eps;
            let down = loss_of(&conv, &x);
            conv.weight_mut().as_mut_slice()[index] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.weight.as_slice()[index];
            assert!(
                (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                "weight {index}: numeric {numeric} vs analytic {analytic}"
            );
        }
        {
            let orig = conv.bias()[1];
            conv.bias_mut()[1] = orig + eps;
            let up = loss_of(&conv, &x);
            conv.bias_mut()[1] = orig - eps;
            let down = loss_of(&conv, &x);
            conv.bias_mut()[1] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - grads.bias[1]).abs() < 2e-2 * grads.bias[1].abs().max(1.0));
        }
        {
            let mut probe = x.clone();
            let orig = probe.get(1, 4);
            probe.set(1, 4, orig + eps);
            let up = loss_of(&conv, &probe);
            probe.set(1, 4, orig - eps);
            let down = loss_of(&conv, &probe);
            let numeric = (up - down) / (2.0 * eps);
            let analytic = d_x.get(1, 4);
            assert!(
                (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                "input: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn max_pool_selects_maxima_and_routes_gradient() {
        let pool = Pool2d::halve(1, 4, 4);
        #[rustfmt::skip]
        let x = Tensor::from_rows(&[&[
            1.0, 5.0,  2.0, 0.0,
            3.0, 4.0,  1.0, 8.0,
            0.0, 0.0,  9.0, 1.0,
            2.0, 1.0,  1.0, 1.0,
        ]]);
        let (y, switches) = pool.forward_max(&x).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 8.0, 2.0, 9.0]);
        let d = pool.backward_max(&Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]), &switches);
        assert_eq!(d.get(0, 1), 1.0); // the 5.0
        assert_eq!(d.get(0, 7), 2.0); // the 8.0
        assert_eq!(d.get(0, 12), 3.0); // the 2.0
        assert_eq!(d.get(0, 10), 4.0); // the 9.0
        assert_eq!(d.as_slice().iter().sum::<f32>(), 10.0);
    }

    #[test]
    fn avg_pool_averages_and_spreads_gradient() {
        let pool = Pool2d::halve(1, 2, 2);
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 6.0]]);
        let y = pool.forward_avg(&x).unwrap();
        assert_eq!(y.as_slice(), &[3.0]);
        let d = pool.backward_avg(&Tensor::from_rows(&[&[4.0]])).unwrap();
        assert_eq!(d.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avg_pool_gradient_check() {
        let pool = Pool2d { channels: 2, in_h: 4, in_w: 4, k: 2, stride: 2 };
        let x = Tensor::randn(2, pool.in_features(), 5);
        let loss_of = |x: &Tensor| -> f32 { pool.forward_avg(x).unwrap().as_slice().iter().sum() };
        let ones = Tensor::from_vec(2, pool.out_features(), vec![1.0; 2 * pool.out_features()]);
        let d_x = pool.backward_avg(&ones).unwrap();
        let eps = 1e-2f32;
        let mut probe = x.clone();
        let orig = probe.get(0, 5);
        probe.set(0, 5, orig + eps);
        let up = loss_of(&probe);
        probe.set(0, 5, orig - eps);
        let down = loss_of(&probe);
        let numeric = (up - down) / (2.0 * eps);
        assert!((numeric - d_x.get(0, 5)).abs() < 1e-2);
    }

    #[test]
    fn pool_rejects_wrong_width() {
        let pool = Pool2d::halve(2, 4, 4);
        assert!(pool.forward_max(&Tensor::zeros(1, 3)).is_err());
        assert!(pool.forward_avg(&Tensor::zeros(1, 3)).is_err());
        assert!(pool.backward_avg(&Tensor::zeros(1, 3)).is_err());
    }
}
