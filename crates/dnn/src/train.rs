//! SGD training.

use serde::{Deserialize, Serialize};

use crate::data::SyntheticDataset;
use crate::error::DnnError;
use crate::model::Mlp;
use crate::network::Network;
use crate::tensor::Tensor;

/// A model the SGD [`Trainer`] can fit: anything with a batched
/// train step and an accuracy probe ([`Mlp`] and [`Network`]).
pub trait Trainable {
    /// One SGD step on a batch; returns the pre-update loss.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes.
    fn train_step(&mut self, x: &Tensor, labels: &[usize], lr: f32) -> Result<f32, DnnError>;

    /// Classification accuracy on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    fn accuracy(&self, x: &Tensor, labels: &[usize]) -> Result<f64, DnnError>;
}

impl Trainable for Mlp {
    fn train_step(&mut self, x: &Tensor, labels: &[usize], lr: f32) -> Result<f32, DnnError> {
        Mlp::train_step(self, x, labels, lr)
    }

    fn accuracy(&self, x: &Tensor, labels: &[usize]) -> Result<f64, DnnError> {
        Mlp::accuracy(self, x, labels)
    }
}

impl Trainable for Network {
    fn train_step(&mut self, x: &Tensor, labels: &[usize], lr: f32) -> Result<f32, DnnError> {
        Network::train_step(self, x, labels, lr)
    }

    fn accuracy(&self, x: &Tensor, labels: &[usize]) -> Result<f64, DnnError> {
        Network::accuracy(self, x, labels)
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Epochs over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Multiplicative LR decay applied each epoch.
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { lr: 0.3, epochs: 40, batch_size: 32, lr_decay: 0.98 }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast_for_tests() -> Self {
        Self { lr: 0.3, epochs: 20, batch_size: 16, lr_decay: 1.0 }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final epoch mean training loss.
    pub final_loss: f32,
    /// Accuracy on the training set.
    pub train_accuracy: f64,
    /// Accuracy on the test set.
    pub test_accuracy: f64,
    /// Epochs actually run.
    pub epochs: usize,
}

/// Mini-batch SGD trainer.
///
/// # Example
///
/// ```
/// use dlk_dnn::{Mlp, SyntheticDataset, TrainConfig, Trainer};
///
/// let dataset = SyntheticDataset::tiny_for_tests(1);
/// let mut model = Mlp::new(&[8, 24, 4], 1);
/// let report = Trainer::new(TrainConfig::fast_for_tests()).fit(&mut model, &dataset);
/// assert!(report.test_accuracy > dataset.chance_accuracy());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `dataset`, returning a report.
    ///
    /// Batches are taken in a fixed round-robin order (the dataset
    /// generator already interleaves classes), keeping training fully
    /// deterministic.
    pub fn fit<M: Trainable>(&self, model: &mut M, dataset: &SyntheticDataset) -> TrainReport {
        let n = dataset.train_x.rows();
        let dim = dataset.dim;
        let batch = self.config.batch_size.max(1).min(n);
        let mut lr = self.config.lr;
        let mut final_loss = f32::NAN;
        // Interleave classes within batches by striding.
        let stride = (n / batch).max(1);
        for _ in 0..self.config.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for start in 0..stride {
                let indices: Vec<usize> = (0..batch).map(|k| (start + k * stride) % n).collect();
                let mut xs = Vec::with_capacity(batch * dim);
                let mut ys = Vec::with_capacity(batch);
                for &index in &indices {
                    xs.extend_from_slice(dataset.train_x.row(index));
                    ys.push(dataset.train_y[index]);
                }
                let x = Tensor::from_vec(batch, dim, xs);
                let loss = model
                    .train_step(&x, &ys, lr)
                    .expect("training shapes are consistent by construction");
                epoch_loss += loss;
                batches += 1;
            }
            final_loss = epoch_loss / batches as f32;
            lr *= self.config.lr_decay;
        }
        let train_accuracy = model
            .accuracy(&dataset.train_x, &dataset.train_y)
            .expect("train shapes are consistent");
        let test_accuracy =
            model.accuracy(&dataset.test_x, &dataset.test_y).expect("test shapes are consistent");
        TrainReport { final_loss, train_accuracy, test_accuracy, epochs: self.config.epochs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_beats_chance_substantially() {
        let dataset = SyntheticDataset::tiny_for_tests(7);
        let mut model = Mlp::new(&[8, 24, 4], 7);
        let report = Trainer::new(TrainConfig::fast_for_tests()).fit(&mut model, &dataset);
        assert!(
            report.test_accuracy > 0.7,
            "expected >70% on separable blobs, got {}",
            report.test_accuracy
        );
        assert!(report.final_loss < 1.0);
    }

    #[test]
    fn training_is_deterministic() {
        let dataset = SyntheticDataset::tiny_for_tests(3);
        let run = || {
            let mut model = Mlp::new(&[8, 16, 4], 3);
            Trainer::new(TrainConfig::fast_for_tests()).fit(&mut model, &dataset);
            model
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_reflects_epochs() {
        let dataset = SyntheticDataset::tiny_for_tests(1);
        let mut model = Mlp::new(&[8, 8, 4], 1);
        let config = TrainConfig { epochs: 3, ..TrainConfig::fast_for_tests() };
        let report = Trainer::new(config).fit(&mut model, &dataset);
        assert_eq!(report.epochs, 3);
    }
}
