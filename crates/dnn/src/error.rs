//! Error type for DNN operations.

use std::error::Error;
use std::fmt;

use dlk_dram::DramError;

/// Errors returned by DNN operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnnError {
    /// Tensor shapes do not match an operation's requirements.
    ShapeMismatch {
        /// Description of the failed operation.
        op: &'static str,
        /// Left-hand shape (rows, cols).
        lhs: (usize, usize),
        /// Right-hand shape (rows, cols).
        rhs: (usize, usize),
    },
    /// A weight index is out of range.
    BadWeightIndex {
        /// Layer index.
        layer: usize,
        /// Flat weight index within the layer.
        index: usize,
    },
    /// DRAM rejected a storage operation.
    Dram(DramError),
    /// The model does not fit the provided DRAM region.
    RegionTooSmall {
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// A network's `SkipStart`/`SkipAdd` residual markers are not
    /// properly paired.
    UnbalancedSkip,
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            DnnError::BadWeightIndex { layer, index } => {
                write!(f, "weight index {index} out of range in layer {layer}")
            }
            DnnError::Dram(err) => write!(f, "dram error: {err}"),
            DnnError::RegionTooSmall { needed, available } => {
                write!(f, "model needs {needed} bytes but region has {available}")
            }
            DnnError::UnbalancedSkip => {
                write!(f, "unbalanced SkipStart/SkipAdd residual markers")
            }
        }
    }
}

impl Error for DnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DnnError::Dram(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DramError> for DnnError {
    fn from(err: DramError) -> Self {
        DnnError::Dram(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_shapes() {
        let err = DnnError::ShapeMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        let text = err.to_string();
        assert!(text.contains("matmul") && text.contains("(2, 3)"));
    }

    #[test]
    fn dram_source_preserved() {
        let err = DnnError::from(DramError::InvalidBank(2));
        assert!(Error::source(&err).is_some());
    }
}
