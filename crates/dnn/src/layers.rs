//! Fully-connected layers with hand-written backprop.

use serde::{Deserialize, Serialize};

use crate::error::DnnError;
use crate::tensor::Tensor;

/// A fully-connected layer `y = x Wᵀ + b` with weights `(out, in)`.
///
/// # Example
///
/// ```
/// use dlk_dnn::{Linear, Tensor};
/// let layer = Linear::new(4, 2, 7);
/// let x = Tensor::zeros(3, 4);
/// let y = layer.forward(&x).unwrap();
/// assert_eq!(y.shape(), (3, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Tensor,
    bias: Vec<f32>,
}

/// Gradients of one linear layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGrads {
    /// dL/dW, shape `(out, in)`.
    pub weight: Tensor,
    /// dL/db, length `out`.
    pub bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Kaiming-random weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            weight: Tensor::randn(out_features, in_features, seed),
            bias: vec![0.0; out_features],
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weight.rows()`.
    pub fn from_parts(weight: Tensor, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), weight.rows(), "bias length must equal out features");
        Self { weight, bias }
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// The weight matrix `(out, in)`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight matrix.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Forward pass: `x (batch, in) -> (batch, out)`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        let mut y = x.matmul_transpose(&self.weight)?;
        for row in 0..y.rows() {
            for col in 0..y.cols() {
                let v = y.get(row, col) + self.bias[col];
                y.set(row, col, v);
            }
        }
        Ok(y)
    }

    /// Backward pass. Given upstream gradient `d_out (batch, out)` and
    /// the forward input `x (batch, in)`, returns `(grads, d_x)`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes.
    pub fn backward(&self, x: &Tensor, d_out: &Tensor) -> Result<(LinearGrads, Tensor), DnnError> {
        // dW = d_outᵀ × x  (out, in)
        let d_weight = d_out.transpose_matmul(x)?;
        // db = column sums of d_out.
        let mut d_bias = vec![0.0f32; self.out_features()];
        for row in 0..d_out.rows() {
            for (col, db) in d_bias.iter_mut().enumerate() {
                *db += d_out.get(row, col);
            }
        }
        // dX = d_out × W  (batch, in)
        let d_x = d_out.matmul(&self.weight)?;
        Ok((LinearGrads { weight: d_weight, bias: d_bias }, d_x))
    }

    /// SGD update: `p -= lr * grad`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if grads have wrong shapes.
    pub fn apply_grads(&mut self, grads: &LinearGrads, lr: f32) -> Result<(), DnnError> {
        if grads.weight.shape() != self.weight.shape() {
            return Err(DnnError::ShapeMismatch {
                op: "apply_grads",
                lhs: self.weight.shape(),
                rhs: grads.weight.shape(),
            });
        }
        for (w, g) in self.weight.as_mut_slice().iter_mut().zip(grads.weight.as_slice()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&grads.bias) {
            *b -= lr * g;
        }
        Ok(())
    }
}

/// Softmax cross-entropy over logits.
///
/// Returns `(mean_loss, probabilities)`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let mut probs = logits.clone();
    let mut loss = 0.0f32;
    for row in 0..logits.rows() {
        let slice = &mut probs.as_mut_slice()[row * logits.cols()..(row + 1) * logits.cols()];
        let max = slice.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for value in slice.iter_mut() {
            *value = (*value - max).exp();
            sum += *value;
        }
        for value in slice.iter_mut() {
            *value /= sum;
        }
        loss -= (slice[labels[row]] + 1e-12).ln();
    }
    (loss / logits.rows() as f32, probs)
}

/// Gradient of the mean softmax cross-entropy w.r.t. logits:
/// `(probs - onehot) / batch`.
///
/// # Panics
///
/// Panics if `labels.len() != probs.rows()`.
pub fn cross_entropy_grad(probs: &Tensor, labels: &[usize]) -> Tensor {
    assert_eq!(labels.len(), probs.rows(), "one label per row");
    let mut grad = probs.clone();
    let batch = probs.rows() as f32;
    for (row, &label) in labels.iter().enumerate() {
        let v = grad.get(row, label);
        grad.set(row, label, v - 1.0);
    }
    grad.scale(1.0 / batch);
    grad
}

/// ReLU forward that remembers the mask for backward.
pub fn relu_forward(x: &Tensor) -> (Tensor, Vec<bool>) {
    let mask: Vec<bool> = x.as_slice().iter().map(|&v| v > 0.0).collect();
    let mut y = x.clone();
    y.relu_inplace();
    (y, mask)
}

/// ReLU backward: zero gradient where the forward input was ≤ 0.
///
/// # Panics
///
/// Panics if mask length differs from the gradient element count.
pub fn relu_backward(d_out: &Tensor, mask: &[bool]) -> Tensor {
    assert_eq!(mask.len(), d_out.len(), "mask/grad size mismatch");
    let mut d_x = d_out.clone();
    for (value, &keep) in d_x.as_mut_slice().iter_mut().zip(mask) {
        if !keep {
            *value = 0.0;
        }
    }
    d_x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_bias() {
        let weight = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let layer = Linear::from_parts(weight, vec![10.0, 20.0]);
        let x = Tensor::from_rows(&[&[1.0, 2.0]]);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn softmax_probs_sum_to_one() {
        let logits = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let (loss, probs) = softmax_cross_entropy(&logits, &[2, 0]);
        for row in 0..2 {
            let sum: f32 = probs.row(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(loss > 0.0);
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_rows(&[&[100.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn numerical_gradient_check_weights() {
        // Finite-difference check of dL/dW on a tiny layer.
        let mut layer = Linear::new(3, 2, 11);
        let x = Tensor::randn(4, 3, 12);
        let labels = vec![0, 1, 1, 0];

        let loss_of = |layer: &Linear| {
            let y = layer.forward(&x).unwrap();
            softmax_cross_entropy(&y, &labels).0
        };

        let y = layer.forward(&x).unwrap();
        let (_, probs) = softmax_cross_entropy(&y, &labels);
        let d_logits = cross_entropy_grad(&probs, &labels);
        let (grads, _) = layer.backward(&x, &d_logits).unwrap();

        let eps = 1e-3f32;
        for index in [0usize, 1, 4, 5] {
            let orig = layer.weight().as_slice()[index];
            layer.weight_mut().as_mut_slice()[index] = orig + eps;
            let up = loss_of(&layer);
            layer.weight_mut().as_mut_slice()[index] = orig - eps;
            let down = loss_of(&layer);
            layer.weight_mut().as_mut_slice()[index] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.weight.as_slice()[index];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "index {index}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn numerical_gradient_check_input() {
        let layer = Linear::new(3, 2, 21);
        let mut x = Tensor::randn(2, 3, 22);
        let labels = vec![1, 0];
        let y = layer.forward(&x).unwrap();
        let (_, probs) = softmax_cross_entropy(&y, &labels);
        let d_logits = cross_entropy_grad(&probs, &labels);
        let (_, d_x) = layer.backward(&x, &d_logits).unwrap();

        let eps = 1e-3f32;
        let orig = x.get(0, 1);
        x.set(0, 1, orig + eps);
        let up = softmax_cross_entropy(&layer.forward(&x).unwrap(), &labels).0;
        x.set(0, 1, orig - eps);
        let down = softmax_cross_entropy(&layer.forward(&x).unwrap(), &labels).0;
        let numeric = (up - down) / (2.0 * eps);
        assert!((numeric - d_x.get(0, 1)).abs() < 1e-2);
    }

    #[test]
    fn relu_mask_roundtrip() {
        let x = Tensor::from_rows(&[&[-1.0, 2.0, 0.0]]);
        let (y, mask) = relu_forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0]);
        let d = relu_backward(&Tensor::from_rows(&[&[5.0, 5.0, 5.0]]), &mask);
        assert_eq!(d.as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn sgd_update_moves_against_gradient() {
        let mut layer = Linear::from_parts(Tensor::zeros(1, 1), vec![0.0]);
        let grads = LinearGrads { weight: Tensor::from_rows(&[&[2.0]]), bias: vec![1.0] };
        layer.apply_grads(&grads, 0.5).unwrap();
        assert_eq!(layer.weight().get(0, 0), -1.0);
        assert_eq!(layer.bias()[0], -0.5);
    }
}
