//! The general sequential network: a flat [`Layer`] list that subsumes
//! [`Mlp`] and adds convolutions, pooling and residual skips.
//!
//! A [`Network`] executes its layers in order over the workspace's 2-D
//! [`Tensor`] (each batch row one flattened feature map). Residual
//! blocks are encoded *flat* with two structure markers instead of
//! nesting: [`Layer::SkipStart`] remembers the running activation and
//! [`Layer::SkipAdd`] adds it back (the identity shortcut of a ResNet
//! basic block). Keeping the list flat is what lets the quantized
//! attack surface address every weight as `(weighted-layer, index,
//! bit)` uniformly across MLPs and CNNs.
//!
//! ```
//! use dlk_dnn::network::{Layer, Network};
//! use dlk_dnn::{Mlp, Tensor};
//!
//! // Every MLP is a Network.
//! let mlp = Mlp::new(&[4, 8, 2], 7);
//! let net = Network::from(&mlp);
//! let x = Tensor::randn(3, 4, 9);
//! assert_eq!(net.forward(&x).unwrap(), mlp.forward(&x).unwrap());
//! assert_eq!(net.weighted_count(), mlp.num_layers());
//! ```

use serde::{Deserialize, Serialize};

use crate::conv::{Conv2d, Pool2d};
use crate::error::DnnError;
use crate::layers::{
    cross_entropy_grad, relu_backward, relu_forward, softmax_cross_entropy, Linear,
};
use crate::model::{argmax_rows, Mlp};
use crate::tensor::Tensor;

/// One step of a [`Network`]'s execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// A fully-connected layer.
    Dense(Linear),
    /// A 2-D convolution (im2col kernel matrix).
    Conv(Conv2d),
    /// Element-wise ReLU.
    Relu,
    /// 2-D max pooling.
    MaxPool(Pool2d),
    /// 2-D average pooling.
    AvgPool(Pool2d),
    /// Remembers the running activation as a residual shortcut.
    SkipStart,
    /// Adds the most recent remembered shortcut back (identity
    /// residual). Pairs with the innermost open [`Layer::SkipStart`].
    SkipAdd,
}

impl Layer {
    /// Whether this layer carries attackable weights.
    pub fn is_weighted(&self) -> bool {
        matches!(self, Layer::Dense(_) | Layer::Conv(_))
    }

    /// Number of weight parameters (excluding biases).
    pub fn num_weights(&self) -> usize {
        self.weight().map_or(0, Tensor::len)
    }

    /// The weight matrix, for weighted layers.
    pub fn weight(&self) -> Option<&Tensor> {
        match self {
            Layer::Dense(l) => Some(l.weight()),
            Layer::Conv(c) => Some(c.weight()),
            _ => None,
        }
    }

    /// Mutable weight matrix, for weighted layers.
    pub fn weight_mut(&mut self) -> Option<&mut Tensor> {
        match self {
            Layer::Dense(l) => Some(l.weight_mut()),
            Layer::Conv(c) => Some(c.weight_mut()),
            _ => None,
        }
    }
}

/// Gradients of one weighted layer, flat: `weight[i]` is dL/dw for the
/// same flat index `i` that [`BitIndex`](crate::quant::BitIndex) uses.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrads {
    /// dL/dW, flattened row-major like the layer's weight matrix.
    pub weight: Vec<f32>,
    /// dL/db.
    pub bias: Vec<f32>,
}

/// A sequential network over a flat [`Layer`] list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

/// Per-layer forward state kept for the backward pass.
enum Cache {
    /// The layer's input activation (weighted layers).
    Input(Tensor),
    /// ReLU sign mask.
    Mask(Vec<bool>),
    /// Max-pool winner indices.
    Switches(Vec<usize>),
    /// Nothing needed.
    None,
}

impl Network {
    /// Builds a network from a layer list.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// Builds the MLP topology `sizes` (Dense layers with ReLU
    /// between) — the [`Mlp`] constructor expressed as a [`Network`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn mlp(sizes: &[usize], seed: u64) -> Self {
        Self::from(&Mlp::new(sizes, seed))
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// The layer list.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer list.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// The weighted (Dense/Conv) layers in execution order — the list
    /// [`BitIndex::layer`](crate::quant::BitIndex) indexes.
    pub fn weighted_layers(&self) -> Vec<&Layer> {
        self.layers.iter().filter(|l| l.is_weighted()).collect()
    }

    /// Number of weighted layers.
    pub fn weighted_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weighted()).count()
    }

    /// Total weight parameters across layers (excluding biases).
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(Layer::num_weights).sum()
    }

    /// Input feature count (first weighted layer's input width).
    pub fn in_features(&self) -> usize {
        self.layers
            .iter()
            .find_map(|layer| match layer {
                Layer::Dense(l) => Some(l.in_features()),
                Layer::Conv(c) => Some(c.spec().in_features()),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Output class count (last weighted layer's output width).
    pub fn num_classes(&self) -> usize {
        self.layers
            .iter()
            .rev()
            .find_map(|layer| match layer {
                Layer::Dense(l) => Some(l.out_features()),
                Layer::Conv(c) => Some(c.spec().out_features()),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Reconstructs an [`Mlp`] when the plan is exactly the MLP shape
    /// `Dense (Relu Dense)*` — the inverse of [`Network::from`].
    pub fn as_mlp(&self) -> Option<Mlp> {
        let mut dense = Vec::new();
        for (index, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Dense(l) if index % 2 == 0 => dense.push(l.clone()),
                Layer::Relu if index % 2 == 1 => {}
                _ => return None,
            }
        }
        if dense.is_empty() || self.layers.len().is_multiple_of(2) {
            return None;
        }
        let sizes: Vec<usize> = std::iter::once(dense[0].in_features())
            .chain(dense.iter().map(Linear::out_features))
            .collect();
        let mut mlp = Mlp::new(&sizes, 0);
        for (dst, src) in mlp.layers_mut().iter_mut().zip(dense) {
            *dst = src;
        }
        Some(mlp)
    }

    /// Forward pass to logits.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width and
    /// [`DnnError::UnbalancedSkip`] for mismatched skip markers.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        self.run(x, None)
    }

    /// Forward with optional per-layer caches for backprop.
    fn run(&self, x: &Tensor, mut caches: Option<&mut Vec<Cache>>) -> Result<Tensor, DnnError> {
        let mut act = x.clone();
        let mut skips: Vec<Tensor> = Vec::new();
        for layer in &self.layers {
            let cache = match layer {
                Layer::Dense(l) => {
                    let input = act;
                    act = l.forward(&input)?;
                    Cache::Input(input)
                }
                Layer::Conv(c) => {
                    let input = act;
                    act = c.forward(&input)?;
                    Cache::Input(input)
                }
                Layer::Relu => {
                    let (y, mask) = relu_forward(&act);
                    act = y;
                    Cache::Mask(mask)
                }
                Layer::MaxPool(p) => {
                    let (y, switches) = p.forward_max(&act)?;
                    act = y;
                    Cache::Switches(switches)
                }
                Layer::AvgPool(p) => {
                    act = p.forward_avg(&act)?;
                    Cache::None
                }
                Layer::SkipStart => {
                    skips.push(act.clone());
                    Cache::None
                }
                Layer::SkipAdd => {
                    let skip = skips.pop().ok_or(DnnError::UnbalancedSkip)?;
                    act.add_assign(&skip)?;
                    Cache::None
                }
            };
            if let Some(caches) = caches.as_deref_mut() {
                caches.push(cache);
            }
        }
        if skips.is_empty() {
            Ok(act)
        } else {
            Err(DnnError::UnbalancedSkip)
        }
    }

    /// Forward + backward: the mean softmax cross-entropy loss and one
    /// [`LayerGrads`] per *weighted* layer, in execution order.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes and
    /// [`DnnError::UnbalancedSkip`] for mismatched skip markers.
    pub fn loss_and_grads(
        &self,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<(f32, Vec<LayerGrads>), DnnError> {
        let mut caches = Vec::with_capacity(self.layers.len());
        let logits = self.run(x, Some(&mut caches))?;
        let (loss, probs) = softmax_cross_entropy(&logits, labels);
        let mut d = cross_entropy_grad(&probs, labels);

        let mut grads_rev: Vec<LayerGrads> = Vec::with_capacity(self.weighted_count());
        let mut skip_grads: Vec<Tensor> = Vec::new();
        for (layer, cache) in self.layers.iter().zip(&caches).rev() {
            match (layer, cache) {
                (Layer::Dense(l), Cache::Input(input)) => {
                    let (g, d_x) = l.backward(input, &d)?;
                    grads_rev
                        .push(LayerGrads { weight: g.weight.as_slice().to_vec(), bias: g.bias });
                    d = d_x;
                }
                (Layer::Conv(c), Cache::Input(input)) => {
                    let (g, d_x) = c.backward(input, &d)?;
                    grads_rev
                        .push(LayerGrads { weight: g.weight.as_slice().to_vec(), bias: g.bias });
                    d = d_x;
                }
                (Layer::Relu, Cache::Mask(mask)) => d = relu_backward(&d, mask),
                (Layer::MaxPool(p), Cache::Switches(switches)) => {
                    d = p.backward_max(&d, switches);
                }
                (Layer::AvgPool(p), Cache::None) => d = p.backward_avg(&d)?,
                // Reverse of the forward stack: the add's gradient
                // flows into both the main path and the shortcut.
                (Layer::SkipAdd, Cache::None) => skip_grads.push(d.clone()),
                (Layer::SkipStart, Cache::None) => {
                    let skip = skip_grads.pop().ok_or(DnnError::UnbalancedSkip)?;
                    d.add_assign(&skip)?;
                }
                _ => unreachable!("cache kind always matches its layer"),
            }
        }
        grads_rev.reverse();
        Ok((loss, grads_rev))
    }

    /// One SGD step on a batch; returns the pre-update loss.
    ///
    /// # Errors
    ///
    /// Same as [`Network::loss_and_grads`].
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize], lr: f32) -> Result<f32, DnnError> {
        let (loss, grads) = self.loss_and_grads(x, labels)?;
        let weighted = self.layers.iter_mut().filter(|l| l.is_weighted());
        for (layer, grad) in weighted.zip(&grads) {
            match layer {
                Layer::Dense(l) => {
                    for (w, g) in l.weight_mut().as_mut_slice().iter_mut().zip(&grad.weight) {
                        *w -= lr * g;
                    }
                    for (b, g) in l.bias_mut().iter_mut().zip(&grad.bias) {
                        *b -= lr * g;
                    }
                }
                Layer::Conv(c) => {
                    for (w, g) in c.weight_mut().as_mut_slice().iter_mut().zip(&grad.weight) {
                        *w -= lr * g;
                    }
                    for (b, g) in c.bias_mut().iter_mut().zip(&grad.bias) {
                        *b -= lr * g;
                    }
                }
                _ => unreachable!("filtered to weighted layers"),
            }
        }
        Ok(loss)
    }

    /// Predicted class per input row.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn predict(&self, x: &Tensor) -> Result<Vec<usize>, DnnError> {
        Ok(argmax_rows(&self.forward(x)?))
    }

    /// Classification accuracy on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> Result<f64, DnnError> {
        let predictions = self.predict(x)?;
        let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }
}

impl From<&Mlp> for Network {
    /// Every MLP is a network: Dense layers with ReLU between.
    fn from(mlp: &Mlp) -> Self {
        let mut layers = Vec::with_capacity(mlp.num_layers() * 2 - 1);
        for (index, linear) in mlp.layers().iter().enumerate() {
            if index > 0 {
                layers.push(Layer::Relu);
            }
            layers.push(Layer::Dense(linear.clone()));
        }
        Self { layers }
    }
}

impl From<&Network> for Network {
    fn from(net: &Network) -> Self {
        net.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvSpec;

    /// A small CNN with one identity-skip residual block.
    fn tiny_residual_cnn(seed: u64) -> Network {
        let spec =
            |in_c, out_c| ConvSpec { in_c, in_h: 4, in_w: 4, out_c, k: 3, stride: 1, pad: 1 };
        Network::new(vec![
            Layer::Conv(Conv2d::new(spec(1, 3), seed)),
            Layer::Relu,
            Layer::SkipStart,
            Layer::Conv(Conv2d::new(spec(3, 3), seed + 1)),
            Layer::Relu,
            Layer::Conv(Conv2d::new(spec(3, 3), seed + 2)),
            Layer::SkipAdd,
            Layer::Relu,
            Layer::MaxPool(Pool2d::halve(3, 4, 4)),
            Layer::Dense(Linear::new(3 * 2 * 2, 2, seed + 3)),
        ])
    }

    #[test]
    fn network_subsumes_mlp_exactly() {
        let mlp = Mlp::new(&[5, 9, 4, 3], 3);
        let net = Network::from(&mlp);
        let x = Tensor::randn(6, 5, 4);
        let labels = vec![0, 1, 2, 0, 1, 2];
        assert_eq!(net.forward(&x).unwrap(), mlp.forward(&x).unwrap());
        assert_eq!(net.total_weights(), mlp.total_weights());
        assert_eq!(net.in_features(), mlp.in_features());
        assert_eq!(net.num_classes(), mlp.num_classes());
        // Gradients agree layer for layer.
        let (net_loss, net_grads) = net.loss_and_grads(&x, &labels).unwrap();
        let (mlp_loss, mlp_grads) = mlp.loss_and_grads(&x, &labels).unwrap();
        assert_eq!(net_loss, mlp_loss);
        assert_eq!(net_grads.len(), mlp_grads.len());
        for (ng, mg) in net_grads.iter().zip(&mlp_grads) {
            assert_eq!(ng.weight, mg.weight.as_slice());
            assert_eq!(ng.bias, mg.bias);
        }
        // And the round trip back to an Mlp is lossless.
        assert_eq!(net.as_mlp().unwrap(), mlp);
    }

    #[test]
    fn as_mlp_rejects_non_mlp_plans() {
        assert!(tiny_residual_cnn(1).as_mlp().is_none());
        assert!(Network::new(vec![Layer::Relu]).as_mlp().is_none());
        let trailing_relu = Network::mlp(&[3, 2], 0).push(Layer::Relu);
        assert!(trailing_relu.as_mlp().is_none());
    }

    #[test]
    fn residual_forward_adds_the_shortcut() {
        // Zero conv block: SkipAdd must reproduce the input exactly.
        let spec = ConvSpec { in_c: 1, in_h: 2, in_w: 2, out_c: 1, k: 3, stride: 1, pad: 1 };
        let zero = Conv2d::from_parts(Tensor::zeros(1, 9), vec![0.0], spec);
        let net = Network::new(vec![Layer::SkipStart, Layer::Conv(zero), Layer::SkipAdd]);
        let x = Tensor::randn(3, 4, 8);
        assert_eq!(net.forward(&x).unwrap(), x);
    }

    #[test]
    fn unbalanced_skips_are_rejected() {
        let x = Tensor::zeros(1, 4);
        let dangling = Network::new(vec![Layer::SkipStart]);
        assert!(matches!(dangling.forward(&x), Err(DnnError::UnbalancedSkip)));
        let orphan = Network::new(vec![Layer::SkipAdd]);
        assert!(matches!(orphan.forward(&x), Err(DnnError::UnbalancedSkip)));
        let orphan = Network::new(vec![Layer::SkipAdd]);
        assert!(matches!(orphan.loss_and_grads(&x, &[0]), Err(DnnError::UnbalancedSkip)));
    }

    #[test]
    fn cnn_gradient_check_through_residual_and_pool() {
        let net = tiny_residual_cnn(17);
        let x = Tensor::randn(3, 16, 18);
        let labels = vec![0, 1, 0];
        let (_, grads) = net.loss_and_grads(&x, &labels).unwrap();
        assert_eq!(grads.len(), net.weighted_count());
        let eps = 1e-2f32;
        // One weight in every weighted layer, including both residual
        // convs (whose gradient flows through the skip add).
        for (weighted_index, check_index) in [(0usize, 2usize), (1, 5), (2, 0), (3, 3)] {
            let mut probe = net.clone();
            let loss_at = |probe: &Network| {
                let logits = probe.forward(&x).unwrap();
                softmax_cross_entropy(&logits, &labels).0
            };
            let layer_pos = probe
                .layers()
                .iter()
                .enumerate()
                .filter(|(_, l)| l.is_weighted())
                .map(|(i, _)| i)
                .nth(weighted_index)
                .unwrap();
            let orig = probe.layers()[layer_pos].weight().unwrap().as_slice()[check_index];
            let slice = probe.layers_mut()[layer_pos].weight_mut().unwrap().as_mut_slice();
            slice[check_index] = orig + eps;
            let up = loss_at(&probe);
            probe.layers_mut()[layer_pos].weight_mut().unwrap().as_mut_slice()[check_index] =
                orig - eps;
            let down = loss_at(&probe);
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads[weighted_index].weight[check_index];
            assert!(
                (numeric - analytic).abs() < 3e-2 * analytic.abs().max(1.0),
                "weighted layer {weighted_index}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn cnn_trains_on_separable_images() {
        let mut net = tiny_residual_cnn(5);
        // Two classes: bright top half vs bright bottom half.
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let class = i % 2;
            let mut image = vec![0.1 * (i % 5) as f32; 16];
            for p in 0..8 {
                image[if class == 0 { p } else { 8 + p }] += 2.0;
            }
            xs.extend(image);
            labels.push(class);
        }
        let x = Tensor::from_vec(24, 16, xs);
        let first = net.train_step(&x, &labels, 0.05).unwrap();
        let mut last = first;
        for _ in 0..60 {
            last = net.train_step(&x, &labels, 0.05).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert!(net.accuracy(&x, &labels).unwrap() > 0.9);
    }

    #[test]
    fn weighted_layers_skip_structure_markers() {
        let net = tiny_residual_cnn(2);
        assert_eq!(net.layers().len(), 10);
        assert_eq!(net.weighted_count(), 4);
        assert_eq!(net.weighted_layers().len(), 4);
        assert!(net.total_weights() > 0);
    }
}
