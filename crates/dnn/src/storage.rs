//! The DRAM weight layout.
//!
//! Deploys a [`QuantizedMlp`]'s weight bytes into DRAM rows at a base
//! physical address and reads them back. This closes the loop that
//! makes the attacks *physical*: a RowHammer disturbance in a weight
//! row is an actual bit flip in the byte image that the next
//! [`WeightLayout::load`] turns into a corrupted model.
//!
//! The layout also answers the two geometry questions the rest of the
//! system asks:
//!
//! - attacker: "which DRAM row and bit do I hammer to flip bit `b` of
//!   weight `w`?" — [`WeightLayout::bit_location`];
//! - defender: "which rows hold weights, so I can lock their
//!   neighbours?" — [`WeightLayout::rows_spanned`].

use dlk_dram::{DramDevice, RowAddr};
use dlk_memctrl::{AddressMapper, Trace, TraceOp};

use crate::error::DnnError;
use crate::quant::{BitIndex, QuantizedMlp};

/// Maps a quantized model's weights onto DRAM rows.
///
/// # Example
///
/// ```
/// use dlk_dram::{DramConfig, DramDevice};
/// use dlk_memctrl::{AddressMapper, MappingScheme};
/// use dlk_dnn::{models, QuantizedMlp, WeightLayout};
///
/// # fn main() -> Result<(), dlk_dnn::DnnError> {
/// let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
/// let mapper = AddressMapper::new(*dram.geometry(), MappingScheme::BankSequential);
/// let model = QuantizedMlp::quantize(&models::tiny_mlp(1));
/// let layout = WeightLayout::new(0x0, mapper);
/// layout.deploy(&model, &mut dram)?;
/// let mut reloaded = model.clone();
/// layout.load(&mut reloaded, &dram)?;
/// assert_eq!(reloaded, model);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightLayout {
    base_phys: u64,
    mapper: AddressMapper,
}

impl WeightLayout {
    /// Creates a layout placing weights at physical address `base_phys`.
    pub fn new(base_phys: u64, mapper: AddressMapper) -> Self {
        Self { base_phys, mapper }
    }

    /// Base physical address of the weight image.
    pub fn base_phys(&self) -> u64 {
        self.base_phys
    }

    /// The address mapper.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Bytes the model occupies.
    pub fn required_bytes(&self, model: &QuantizedMlp) -> u64 {
        model.total_weights() as u64
    }

    /// Physical byte address of a weight.
    pub fn weight_phys_addr(
        &self,
        model: &QuantizedMlp,
        layer: usize,
        weight: usize,
    ) -> Option<u64> {
        model.byte_offset(layer, weight).map(|offset| self.base_phys + offset as u64)
    }

    /// DRAM location of one weight *bit*: `(row, bit-within-row)`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadWeightIndex`] for out-of-range indices or
    /// a DRAM error if the image exceeds capacity.
    pub fn bit_location(
        &self,
        model: &QuantizedMlp,
        index: BitIndex,
    ) -> Result<(RowAddr, usize), DnnError> {
        let phys = self
            .weight_phys_addr(model, index.layer, index.weight)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let (row, col) = self.mapper.to_dram(phys).map_err(|_| DnnError::RegionTooSmall {
            needed: phys,
            available: self.mapper.capacity(),
        })?;
        Ok((row, col * 8 + (index.bit & 7) as usize))
    }

    /// The DRAM row holding a weight byte.
    ///
    /// # Errors
    ///
    /// Same as [`WeightLayout::bit_location`].
    pub fn weight_row(
        &self,
        model: &QuantizedMlp,
        layer: usize,
        weight: usize,
    ) -> Result<RowAddr, DnnError> {
        self.bit_location(model, BitIndex { layer, weight, bit: 0 }).map(|(row, _)| row)
    }

    /// Every DRAM row the weight image touches, in address order.
    ///
    /// # Errors
    ///
    /// Returns an error if the image exceeds DRAM capacity.
    pub fn rows_spanned(&self, model: &QuantizedMlp) -> Result<Vec<RowAddr>, DnnError> {
        let bytes = self.required_bytes(model);
        let row_bytes = self.mapper.geometry().row_bytes as u64;
        let mut rows = Vec::new();
        let mut phys = self.base_phys;
        let end = self.base_phys + bytes;
        while phys < end {
            let (row, _) = self.mapper.to_dram(phys).map_err(|_| DnnError::RegionTooSmall {
                needed: end,
                available: self.mapper.capacity(),
            })?;
            rows.push(row);
            phys = (phys / row_bytes + 1) * row_bytes;
        }
        Ok(rows)
    }

    /// The physical byte range `[start, end)` of the weight image —
    /// what the victim registers with the protection plan.
    pub fn phys_range(&self, model: &QuantizedMlp) -> (u64, u64) {
        (self.base_phys, self.base_phys + self.required_bytes(model))
    }

    /// The weight-fetch trace of `batches` inference passes: the read
    /// stream a victim process issues to pull the whole weight image
    /// through the memory controller, `chunk` bytes per request,
    /// split at DRAM row boundaries. Replaying this trace through a
    /// sharded engine is how model inference drives the multi-channel
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error if the image exceeds DRAM capacity.
    pub fn fetch_trace(
        &self,
        model: &QuantizedMlp,
        batches: usize,
        chunk: usize,
    ) -> Result<Trace, DnnError> {
        let total = self.required_bytes(model);
        let row_bytes = self.mapper.geometry().row_bytes as u64;
        let chunk = chunk.max(1) as u64;
        let mut trace = Trace::new();
        for _ in 0..batches {
            let mut offset = 0u64;
            while offset < total {
                let phys = self.base_phys + offset;
                let (_, col) = self.mapper.to_dram(phys).map_err(|_| DnnError::RegionTooSmall {
                    needed: self.base_phys + total,
                    available: self.mapper.capacity(),
                })?;
                let take = chunk.min(total - offset).min(row_bytes - col as u64);
                trace.push(TraceOp::Read { addr: phys, len: take as usize });
                offset += take;
            }
        }
        Ok(trace)
    }

    /// Writes the model's weight bytes into DRAM (functional writes —
    /// deployment happens once, off the timed path).
    ///
    /// # Errors
    ///
    /// Returns an error if the image exceeds DRAM capacity.
    pub fn deploy(&self, model: &QuantizedMlp, dram: &mut DramDevice) -> Result<(), DnnError> {
        let bytes = model.weight_bytes();
        let row_bytes = self.mapper.geometry().row_bytes;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let phys = self.base_phys + offset as u64;
            let (row, col) = self.mapper.to_dram(phys).map_err(|_| DnnError::RegionTooSmall {
                needed: bytes.len() as u64,
                available: self.mapper.capacity(),
            })?;
            let take = (row_bytes - col).min(bytes.len() - offset);
            let mut row_data = dram.read_row(row)?;
            row_data[col..col + take].copy_from_slice(&bytes[offset..offset + take]);
            dram.write_row(row, &row_data)?;
            offset += take;
        }
        Ok(())
    }

    /// Reads the weight image back from DRAM into the model —
    /// inference always runs on what DRAM currently holds.
    ///
    /// # Errors
    ///
    /// Returns an error if the image exceeds DRAM capacity.
    pub fn load(&self, model: &mut QuantizedMlp, dram: &DramDevice) -> Result<(), DnnError> {
        let total = model.total_weights();
        let row_bytes = self.mapper.geometry().row_bytes;
        let mut bytes = Vec::with_capacity(total);
        while bytes.len() < total {
            let phys = self.base_phys + bytes.len() as u64;
            let (row, col) = self.mapper.to_dram(phys).map_err(|_| DnnError::RegionTooSmall {
                needed: total as u64,
                available: self.mapper.capacity(),
            })?;
            let take = (row_bytes - col).min(total - bytes.len());
            let row_data = dram.read_row(row)?;
            bytes.extend_from_slice(&row_data[col..col + take]);
        }
        model.load_weight_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use dlk_dram::DramConfig;
    use dlk_memctrl::MappingScheme;

    fn setup() -> (DramDevice, WeightLayout, QuantizedMlp) {
        let dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mapper = AddressMapper::new(*dram.geometry(), MappingScheme::BankSequential);
        let model = QuantizedMlp::quantize(&models::tiny_mlp(9));
        (dram, WeightLayout::new(128, mapper), model)
    }

    #[test]
    fn deploy_load_roundtrip() {
        let (mut dram, layout, model) = setup();
        layout.deploy(&model, &mut dram).unwrap();
        let mut reloaded = model.clone();
        layout.load(&mut reloaded, &dram).unwrap();
        assert_eq!(reloaded, model);
    }

    #[test]
    fn dram_bit_flip_corrupts_expected_weight() {
        let (mut dram, layout, model) = setup();
        layout.deploy(&model, &mut dram).unwrap();
        let target = BitIndex { layer: 1, weight: 7, bit: 7 };
        let (row, bit) = layout.bit_location(&model, target).unwrap();
        dram.flip_bit(row, bit).unwrap();
        let mut corrupted = model.clone();
        layout.load(&mut corrupted, &dram).unwrap();
        // Exactly the targeted weight changed, by the sign bit.
        assert_eq!(corrupted.bit(target).unwrap(), !model.bit(target).unwrap());
        let byte_before = model.weighted_layers()[1].matrix().unwrap().weight_byte(7).unwrap();
        let byte_after = corrupted.weighted_layers()[1].matrix().unwrap().weight_byte(7).unwrap();
        assert_eq!(byte_before ^ byte_after, 0x80);
        // All other layers untouched.
        assert_eq!(corrupted.weighted_layers()[0], model.weighted_layers()[0]);
    }

    #[test]
    fn rows_spanned_covers_image() {
        let (_, layout, model) = setup();
        let rows = layout.rows_spanned(&model).unwrap();
        let row_bytes = 64u64;
        let expected = {
            let start = 128 / row_bytes;
            let end = (128 + model.total_weights() as u64).div_ceil(row_bytes);
            (end - start) as usize
        };
        assert_eq!(rows.len(), expected);
    }

    #[test]
    fn phys_range_matches_required_bytes() {
        let (_, layout, model) = setup();
        let (start, end) = layout.phys_range(&model);
        assert_eq!(start, 128);
        assert_eq!(end - start, layout.required_bytes(&model));
    }

    #[test]
    fn image_exceeding_capacity_rejected() {
        let (mut dram, _, model) = setup();
        let mapper = AddressMapper::new(*dram.geometry(), MappingScheme::BankSequential);
        let layout = WeightLayout::new(mapper.capacity() - 4, mapper);
        assert!(matches!(layout.deploy(&model, &mut dram), Err(DnnError::RegionTooSmall { .. })));
    }

    #[test]
    fn conv_kernel_flip_roundtrips_through_dram() {
        // The satellite acceptance: quantize → store → flip a conv
        // kernel bit in DRAM → dequantize sees exactly that change.
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mapper = AddressMapper::new(*dram.geometry(), MappingScheme::BankSequential);
        let model = QuantizedMlp::quantize(models::tiny_cnn(7));
        assert!(model.to_mlp().is_none(), "victim must be a real CNN");
        let layout = WeightLayout::new(64, mapper);
        layout.deploy(&model, &mut dram).unwrap();

        // Weighted layer 1 is the first residual conv; flip its MSB.
        let target = BitIndex { layer: 1, weight: 3, bit: 7 };
        let (row, bit) = layout.bit_location(&model, target).unwrap();
        dram.flip_bit(row, bit).unwrap();

        let mut corrupted = model.clone();
        layout.load(&mut corrupted, &dram).unwrap();
        assert_eq!(corrupted.bit(target).unwrap(), !model.bit(target).unwrap());
        let offset = model.byte_offset(target.layer, target.weight).unwrap();
        for (i, (a, b)) in model.weight_bytes().iter().zip(corrupted.weight_bytes()).enumerate() {
            if i == offset {
                assert_eq!(a ^ b, 0x80, "targeted byte flips its sign bit");
            } else {
                assert_eq!(*a, b, "byte {i} must be untouched");
            }
        }
        // The dequantized kernel moved by exactly the sign-bit delta.
        let delta = model.flip_delta(target).unwrap();
        let before = model.to_float_model();
        let after = corrupted.to_float_model();
        let w = |net: &crate::network::Network| {
            net.weighted_layers()[target.layer].weight().unwrap().as_slice()[target.weight]
        };
        assert!((w(&after) - w(&before) - delta).abs() < 1e-6);
    }

    #[test]
    fn fetch_trace_covers_the_image_in_row_safe_chunks() {
        let (_, layout, model) = setup();
        let trace = layout.fetch_trace(&model, 2, 24).unwrap();
        let row_bytes = 64u64;
        let mut per_batch = 0u64;
        for op in trace.ops() {
            let dlk_memctrl::TraceOp::Read { addr, len } = op else {
                panic!("fetch trace only reads")
            };
            assert!(*len <= 24);
            assert_eq!((addr % row_bytes + *len as u64 - 1) / row_bytes, 0, "no row spans");
            per_batch += *len as u64;
        }
        assert_eq!(per_batch, 2 * layout.required_bytes(&model));
        assert_eq!(trace.ops()[0], dlk_memctrl::TraceOp::Read { addr: 128, len: 24 });
    }

    #[test]
    fn weight_phys_addr_is_contiguous() {
        let (_, layout, model) = setup();
        let a = layout.weight_phys_addr(&model, 0, 0).unwrap();
        let b = layout.weight_phys_addr(&model, 0, 1).unwrap();
        assert_eq!(b, a + 1);
        assert_eq!(layout.weight_phys_addr(&model, 99, 0), None);
    }
}
