//! Deterministic synthetic classification datasets.
//!
//! The paper evaluates on CIFAR-10 (ResNet-20) and CIFAR-100 (VGG-11).
//! Real CIFAR is unavailable offline, so we substitute Gaussian-cluster
//! datasets with the same class counts: each class is an anisotropic
//! Gaussian blob around a random unit-norm centroid. This preserves
//! everything BFA dynamics depend on — a trained, quantized network
//! whose accuracy collapses to chance under targeted weight corruption
//! (see DESIGN.md §3).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tensor::Tensor;

/// A labelled train/test split.
///
/// # Example
///
/// ```
/// use dlk_dnn::SyntheticDataset;
/// let dataset = SyntheticDataset::generate(10, 16, 50, 20, 1.8, 42);
/// assert_eq!(dataset.num_classes, 10);
/// assert_eq!(dataset.train_x.rows(), 500);
/// assert_eq!(dataset.test_x.rows(), 200);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Training inputs `(n_train, dim)`.
    pub train_x: Tensor,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test inputs `(n_test, dim)`.
    pub test_x: Tensor,
    /// Test labels.
    pub test_y: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates a dataset of `classes` Gaussian blobs in `dim`
    /// dimensions with `per_class_train`/`per_class_test` samples per
    /// class. `separation` scales centroid distance relative to the
    /// unit noise; ~2.0 gives a problem a small MLP solves with >90%
    /// test accuracy without being trivial.
    pub fn generate(
        classes: usize,
        dim: usize,
        per_class_train: usize,
        per_class_test: usize,
        separation: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let centroids: Vec<Vec<f32>> = (0..classes)
            .map(|_| {
                let v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                v.into_iter().map(|x| x / norm * separation).collect()
            })
            .collect();

        let sample = |count: usize, rng: &mut StdRng| {
            let mut xs = Vec::with_capacity(classes * count * dim);
            let mut ys = Vec::with_capacity(classes * count);
            for (class, centroid) in centroids.iter().enumerate() {
                for _ in 0..count {
                    for &c in centroid {
                        xs.push(c + gaussian(rng));
                    }
                    ys.push(class);
                }
            }
            (Tensor::from_vec(classes * count, dim, xs), ys)
        };
        let (train_x, train_y) = sample(per_class_train, &mut rng);
        let (test_x, test_y) = sample(per_class_test, &mut rng);
        Self { num_classes: classes, dim, train_x, train_y, test_x, test_y }
    }

    /// The CIFAR-10 stand-in: 10 classes, 32 features.
    pub fn cifar10_like(seed: u64) -> Self {
        Self::generate(10, 32, 80, 32, 3.7, seed)
    }

    /// The CIFAR-100 stand-in: 100 classes, 64 features.
    pub fn cifar100_like(seed: u64) -> Self {
        Self::generate(100, 64, 24, 8, 4.2, seed)
    }

    /// A tiny dataset for unit tests: 4 classes, 8 features.
    pub fn tiny_for_tests(seed: u64) -> Self {
        Self::generate(4, 8, 30, 12, 3.0, seed)
    }

    /// Generates an *image* dataset of `classes` patterns on a `h`×`w`
    /// single-channel grid. Class centroids are random fields smoothed
    /// with repeated 3×3 box filters, so class evidence lives in the
    /// low spatial frequencies — the structure convolution and pooling
    /// exploit (white per-pixel Gaussian noise is added per sample, as
    /// in [`SyntheticDataset::generate`]).
    pub fn images(
        classes: usize,
        h: usize,
        w: usize,
        per_class_train: usize,
        per_class_test: usize,
        separation: f32,
        seed: u64,
    ) -> Self {
        let dim = h * w;
        let mut rng = StdRng::seed_from_u64(seed);
        let centroids: Vec<Vec<f32>> = (0..classes)
            .map(|_| {
                let mut p: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
                // Two smoothing passes concentrate energy in low
                // frequencies without flattening the pattern.
                for _ in 0..2 {
                    p = box_smooth(&p, h, w);
                }
                let norm = p.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                p.into_iter().map(|x| x / norm * separation).collect()
            })
            .collect();
        let sample = |count: usize, rng: &mut StdRng| {
            let mut xs = Vec::with_capacity(classes * count * dim);
            let mut ys = Vec::with_capacity(classes * count);
            for (class, centroid) in centroids.iter().enumerate() {
                for _ in 0..count {
                    for &c in centroid {
                        xs.push(c + gaussian(rng));
                    }
                    ys.push(class);
                }
            }
            (Tensor::from_vec(classes * count, dim, xs), ys)
        };
        let (train_x, train_y) = sample(per_class_train, &mut rng);
        let (test_x, test_y) = sample(per_class_test, &mut rng);
        Self { num_classes: classes, dim, train_x, train_y, test_x, test_y }
    }

    /// The CIFAR-10 stand-in for *convolutional* victims: 10 classes of
    /// 1×8×8 images (64 features, interpreted channel-major by the CNN
    /// models in [`models`](crate::models)).
    pub fn cifar10_images(seed: u64) -> Self {
        Self::images(10, 8, 8, 40, 16, 6.0, seed)
    }

    /// The CIFAR-100 stand-in for convolutional victims: 100 classes of
    /// 1×8×8 images.
    pub fn cifar100_images(seed: u64) -> Self {
        Self::images(100, 8, 8, 16, 6, 7.0, seed)
    }

    /// A tiny image dataset for CNN unit tests: 4 classes of 1×6×6
    /// images (36 features).
    pub fn tiny_images_for_tests(seed: u64) -> Self {
        Self::images(4, 6, 6, 30, 12, 5.0, seed)
    }

    /// Random accuracy level (1 / classes) — what a destroyed model
    /// converges to.
    pub fn chance_accuracy(&self) -> f64 {
        1.0 / self.num_classes as f64
    }

    /// A deterministic evaluation subsample of the test set of up to
    /// `n` rows (the paper uses 128-image samples for the attacks).
    pub fn test_sample(&self, n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let total = self.test_x.rows();
        let take = n.min(total);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..total).collect();
        // Fisher-Yates shuffle, then take the prefix.
        for i in (1..total).rev() {
            let j = rng.random_range(0..=i);
            indices.swap(i, j);
        }
        let mut xs = Vec::with_capacity(take * self.dim);
        let mut ys = Vec::with_capacity(take);
        for &index in indices.iter().take(take) {
            xs.extend_from_slice(self.test_x.row(index));
            ys.push(self.test_y[index]);
        }
        (Tensor::from_vec(take, self.dim, xs), ys)
    }
}

/// One 3×3 box-filter pass over an `h`×`w` grid (edge-clamped).
fn box_smooth(p: &[f32], h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; p.len()];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            let mut n = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (sy, sx) = (y as i64 + dy, x as i64 + dx);
                    if sy >= 0 && sx >= 0 && (sy as usize) < h && (sx as usize) < w {
                        acc += p[sy as usize * w + sx as usize];
                        n += 1.0;
                    }
                }
            }
            out[y * w + x] = acc / n;
        }
    }
    out
}

/// Standard normal sample via Box-Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random_range(1e-7f32..1.0);
    let u2: f32 = rng.random_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels_consistent() {
        let ds = SyntheticDataset::generate(3, 5, 10, 4, 2.0, 1);
        assert_eq!(ds.train_x.shape(), (30, 5));
        assert_eq!(ds.train_y.len(), 30);
        assert_eq!(ds.test_x.shape(), (12, 5));
        assert!(ds.train_y.iter().all(|&y| y < 3));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(SyntheticDataset::tiny_for_tests(5), SyntheticDataset::tiny_for_tests(5));
        assert_ne!(SyntheticDataset::tiny_for_tests(5), SyntheticDataset::tiny_for_tests(6));
    }

    #[test]
    fn classes_are_balanced() {
        let ds = SyntheticDataset::generate(4, 3, 7, 2, 2.0, 9);
        for class in 0..4 {
            assert_eq!(ds.train_y.iter().filter(|&&y| y == class).count(), 7);
            assert_eq!(ds.test_y.iter().filter(|&&y| y == class).count(), 2);
        }
    }

    #[test]
    fn chance_accuracy_is_reciprocal() {
        let ds = SyntheticDataset::cifar10_like(0);
        assert!((ds.chance_accuracy() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn test_sample_deterministic_and_bounded() {
        let ds = SyntheticDataset::tiny_for_tests(2);
        let (xa, ya) = ds.test_sample(10, 3);
        let (xb, yb) = ds.test_sample(10, 3);
        assert_eq!(xa, xb);
        assert_eq!(ya, yb);
        assert_eq!(xa.rows(), 10);
        let (all, _) = ds.test_sample(10_000, 3);
        assert_eq!(all.rows(), ds.test_x.rows());
    }

    #[test]
    fn cifar100_like_has_100_classes() {
        let ds = SyntheticDataset::cifar100_like(1);
        assert_eq!(ds.num_classes, 100);
        assert!(ds.train_x.rows() >= 100);
    }
}
