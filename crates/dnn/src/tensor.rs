//! A minimal 2-D tensor (row-major `f32` matrix).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::DnnError;

/// A row-major 2-D tensor of `f32`.
///
/// # Example
///
/// ```
/// use dlk_dnn::Tensor;
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.set(i, i, 1.0);
        }
        t
    }

    /// Builds a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Self { rows: rows.len(), cols, data: rows.iter().flat_map(|r| r.iter().copied()).collect() }
    }

    /// Builds a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Self { rows, cols, data }
    }

    /// Kaiming-style random init: N(0, sqrt(2/fan_in)), deterministic
    /// per seed.
    pub fn randn(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = (2.0 / cols as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| {
                // Box-Muller from two uniforms.
                let u1: f32 = rng.random_range(1e-7f32..1.0);
                let u2: f32 = rng.random_range(0.0f32..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
            })
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// Sets element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row * self.cols + col] = value;
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The explicit transpose `(cols, rows)` — the bridge that lets
    /// every matrix-product variant run through the one blocked GEMM
    /// kernel.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &value) in row.iter().enumerate() {
                out.data[j * self.rows + i] = value;
            }
        }
        out
    }

    /// Matrix product `self (m,k) × other (k,n) -> (m,n)` via the
    /// blocked kernel ([`gemm_acc`]).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.cols != other.rows {
            return Err(DnnError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Tensor::zeros(self.rows, other.cols);
        gemm_acc(&mut out.data, &self.data, &other.data, self.rows, self.cols, other.cols);
        Ok(out)
    }

    /// `self (m,k) × otherᵀ (n,k) -> (m,n)` — the forward-pass product
    /// behind every dense layer and the im2col convolution. Runs the
    /// same blocked kernel as [`Tensor::matmul`] over the materialized
    /// transpose: the row-blocked, unrolled accumulation vectorizes,
    /// where the old per-output scalar dot product was bound by the
    /// floating-point add latency chain.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul_transpose(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.cols != other.cols {
            return Err(DnnError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let bt = other.transposed();
        let mut out = Tensor::zeros(self.rows, other.rows);
        gemm_acc(&mut out.data, &self.data, &bt.data, self.rows, self.cols, other.rows);
        Ok(out)
    }

    /// `selfᵀ (k,m) × other (k,n) -> (m,n)` (used for weight
    /// gradients: `dW = dYᵀ X`), through the same blocked kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if row counts differ.
    pub fn transpose_matmul(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.rows != other.rows {
            return Err(DnnError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let at = self.transposed();
        let mut out = Tensor::zeros(self.cols, other.cols);
        gemm_acc(&mut out.data, &at.data, &other.data, self.cols, self.rows, other.cols);
        Ok(out)
    }

    /// Pre-refactor scalar `matmul`, kept as the oracle for the
    /// blocked kernel (exact-equivalence tests; `benches/hot_path.rs`
    /// reports the MFLOP/s ratio).
    #[doc(hidden)]
    pub fn matmul_reference(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.cols != other.rows {
            return Err(DnnError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let lhs_row = i * other.cols;
                for j in 0..other.cols {
                    out.data[lhs_row + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        Ok(out)
    }

    /// Pre-refactor scalar `matmul_transpose`, kept as the oracle for
    /// the blocked kernel.
    #[doc(hidden)]
    pub fn matmul_transpose_reference(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.cols != other.cols {
            return Err(DnnError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[j * other.cols + k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Pre-refactor scalar `transpose_matmul`, kept as the oracle for
    /// the blocked kernel.
    #[doc(hidden)]
    pub fn transpose_matmul_reference(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.rows != other.rows {
            return Err(DnnError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Tensor::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        Ok(out)
    }

    /// Element-wise in-place addition.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), DnnError> {
        if self.shape() != other.shape() {
            return Err(DnnError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scale by a constant.
    pub fn scale(&mut self, factor: f32) {
        for value in &mut self.data {
            *value *= factor;
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// In-place ReLU.
    pub fn relu_inplace(&mut self) {
        for value in &mut self.data {
            if *value < 0.0 {
                *value = 0.0;
            }
        }
    }
}

/// `k`-block width of the shared GEMM kernel: a 256-element slice of a
/// `b` row is 1 KiB, so one block of `b` rows stays resident in L1/L2
/// while the `i` loop streams over it.
const GEMM_KC: usize = 256;

/// `j`-unroll width: eight independent output accumulators per step,
/// wide enough for LLVM to keep the inner loop in vector registers.
const GEMM_JU: usize = 8;

/// The one blocked GEMM kernel behind [`Tensor::matmul`],
/// [`Tensor::matmul_transpose`] and [`Tensor::transpose_matmul`]:
/// `out (m,n) += a (m,k) × b (k,n)`, all row-major.
///
/// Bit-exact with the pre-refactor scalar loops: each output element
/// accumulates its products in ascending-`k` order (the `k` blocks are
/// visited in order, and within a block `k` ascends), and the
/// zero-skip only elides `±0.0` contributions, which cannot change an
/// accumulator that starts at `+0.0` for finite inputs.
fn gemm_acc(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    for k0 in (0..k).step_by(GEMM_KC) {
        let kb = GEMM_KC.min(k - k0);
        for i in 0..m {
            let a_row = &a[i * k + k0..i * k + k0 + kb];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (dk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[(k0 + dk) * n..(k0 + dk + 1) * n];
                let mut out_chunks = out_row.chunks_exact_mut(GEMM_JU);
                let mut b_chunks = b_row.chunks_exact(GEMM_JU);
                for (oc, bc) in out_chunks.by_ref().zip(b_chunks.by_ref()) {
                    for u in 0..GEMM_JU {
                        oc[u] += av * bc[u];
                    }
                }
                for (o, &bv) in out_chunks.into_remainder().iter_mut().zip(b_chunks.remainder()) {
                    *o += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let out = a.matmul(&b).unwrap();
        assert_eq!(out.shape(), (1, 1));
        assert_eq!(out.get(0, 0), 14.0);
    }

    #[test]
    fn matmul_shape_mismatch_rejected() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Tensor::randn(3, 4, 1);
        let b = Tensor::randn(5, 4, 2);
        // a (3,4) x b^T (4,5) = (3,5)
        let direct = a.matmul_transpose(&b).unwrap();
        // Build b^T explicitly and compare.
        let mut bt = Tensor::zeros(4, 5);
        for i in 0..5 {
            for j in 0..4 {
                bt.set(j, i, b.get(i, j));
            }
        }
        let explicit = a.matmul(&bt).unwrap();
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_matmul_matches() {
        let a = Tensor::randn(6, 3, 3);
        let b = Tensor::randn(6, 2, 4);
        let got = a.transpose_matmul(&b).unwrap(); // (3,2)
        assert_eq!(got.shape(), (3, 2));
        // Element (i,j) = sum_k a[k,i] * b[k,j]
        let mut want = 0.0;
        for k in 0..6 {
            want += a.get(k, 1) * b.get(k, 0);
        }
        assert!((got.get(1, 0) - want).abs() < 1e-5);
    }

    #[test]
    fn randn_is_deterministic_and_seed_sensitive() {
        assert_eq!(Tensor::randn(4, 4, 9), Tensor::randn(4, 4, 9));
        assert_ne!(Tensor::randn(4, 4, 9), Tensor::randn(4, 4, 10));
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor::from_rows(&[&[-1.0, 2.0], &[0.5, -3.0]]);
        t.relu_inplace();
        assert_eq!(t.as_slice(), &[0.0, 2.0, 0.5, 0.0]);
    }

    #[test]
    fn abs_max_over_signs() {
        let t = Tensor::from_rows(&[&[-5.0, 2.0]]);
        assert_eq!(t.abs_max(), 5.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        a.add_assign(&b).unwrap();
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[8.0, 12.0]);
        assert!(a.add_assign(&Tensor::zeros(2, 2)).is_err());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn transposed_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transposed(), a);
    }

    /// Shapes chosen to hit every kernel corner: empty, 1×1, sizes
    /// below/at/above the `GEMM_JU` unroll remainder, and a `k` larger
    /// than `GEMM_KC` so multiple blocks run.
    fn equivalence_shapes() -> Vec<(usize, usize, usize)> {
        vec![(0, 0, 0), (1, 1, 1), (2, 3, 5), (3, 7, 8), (5, 9, 11), (4, 300, 17), (8, 513, 9)]
    }

    #[test]
    fn blocked_matmul_bit_exact_vs_reference() {
        for (seed, (m, k, n)) in equivalence_shapes().into_iter().enumerate() {
            let a = Tensor::randn(m, k, seed as u64);
            let b = Tensor::randn(k, n, seed as u64 + 100);
            let new = a.matmul(&b).unwrap();
            let old = a.matmul_reference(&b).unwrap();
            assert_eq!(new.as_slice(), old.as_slice(), "matmul {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_transpose_bit_exact_vs_reference() {
        for (seed, (m, k, n)) in equivalence_shapes().into_iter().enumerate() {
            let a = Tensor::randn(m, k, seed as u64 + 200);
            let b = Tensor::randn(n, k, seed as u64 + 300);
            let new = a.matmul_transpose(&b).unwrap();
            let old = a.matmul_transpose_reference(&b).unwrap();
            assert_eq!(new.as_slice(), old.as_slice(), "matmul_transpose {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_transpose_matmul_bit_exact_vs_reference() {
        for (seed, (m, k, n)) in equivalence_shapes().into_iter().enumerate() {
            let a = Tensor::randn(k, m, seed as u64 + 400);
            let b = Tensor::randn(k, n, seed as u64 + 500);
            let new = a.transpose_matmul(&b).unwrap();
            let old = a.transpose_matmul_reference(&b).unwrap();
            assert_eq!(new.as_slice(), old.as_slice(), "transpose_matmul {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_kernel_bit_exact_with_zero_rich_inputs() {
        // Sparse inputs exercise the zero-skip path; exact zeros must
        // not perturb the accumulation order of the nonzero terms.
        let mut a = Tensor::randn(6, 40, 77);
        for i in 0..6 {
            for j in 0..40 {
                if (i + j) % 3 != 0 {
                    a.set(i, j, 0.0);
                }
            }
        }
        let b = Tensor::randn(40, 5, 78);
        assert_eq!(a.matmul(&b).unwrap(), a.matmul_reference(&b).unwrap());
        let bt = Tensor::randn(5, 40, 79);
        assert_eq!(a.matmul_transpose(&bt).unwrap(), a.matmul_transpose_reference(&bt).unwrap());
        let a2 = a.transposed();
        assert_eq!(a2.transpose_matmul(&b).unwrap(), a2.transpose_matmul_reference(&b).unwrap());
    }

    #[test]
    fn reference_paths_reject_same_shape_mismatches() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(a.matmul_reference(&b).is_err());
        assert!(a.matmul_transpose(&Tensor::zeros(2, 4)).is_err());
        assert!(a.matmul_transpose_reference(&Tensor::zeros(2, 4)).is_err());
        assert!(a.transpose_matmul(&Tensor::zeros(3, 3)).is_err());
        assert!(a.transpose_matmul_reference(&Tensor::zeros(3, 3)).is_err());
    }
}
