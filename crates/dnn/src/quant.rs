//! Symmetric 8-bit quantization and the quantized inference network.
//!
//! Weights are quantized per layer: `scale = max|w| / 127`,
//! `q = round(w / scale)` clamped to `[-127, 127]`, stored as `i8` in
//! two's complement. A bit flip in the stored byte therefore changes
//! the effective weight by `±2^bit · scale` for magnitude bits — and
//! flips of bit 7 (the sign bit in two's complement) swing the weight
//! by up to `128·scale`, which is why BFA overwhelmingly targets MSBs.

use serde::{Deserialize, Serialize};

use crate::error::DnnError;
use crate::layers::{Linear, LinearGrads};
use crate::model::{argmax_rows, Mlp};
use crate::tensor::Tensor;

/// Identifies one bit of one quantized weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BitIndex {
    /// Layer index.
    pub layer: usize,
    /// Flat weight index within the layer.
    pub weight: usize,
    /// Bit position (0 = LSB, 7 = sign bit).
    pub bit: u8,
}

/// A quantized fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantLinear {
    qweight: Vec<i8>,
    out_features: usize,
    in_features: usize,
    scale: f32,
    bias: Vec<f32>,
}

impl QuantLinear {
    /// Quantizes a float layer.
    pub fn quantize(layer: &Linear) -> Self {
        let abs_max = layer.weight().abs_max();
        let scale = if abs_max == 0.0 { 1.0 } else { abs_max / 127.0 };
        let qweight = layer
            .weight()
            .as_slice()
            .iter()
            .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            qweight,
            out_features: layer.out_features(),
            in_features: layer.in_features(),
            scale,
            bias: layer.bias().to_vec(),
        }
    }

    /// Quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of weights.
    pub fn num_weights(&self) -> usize {
        self.qweight.len()
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The quantized weights.
    pub fn qweights(&self) -> &[i8] {
        &self.qweight
    }

    /// Raw weight byte (two's complement) at `index`.
    pub fn weight_byte(&self, index: usize) -> Option<u8> {
        self.qweight.get(index).map(|&q| q as u8)
    }

    /// Overwrites the raw weight byte at `index`.
    pub fn set_weight_byte(&mut self, index: usize, byte: u8) -> bool {
        if let Some(slot) = self.qweight.get_mut(index) {
            *slot = byte as i8;
            true
        } else {
            false
        }
    }

    /// Dequantizes to a float layer.
    pub fn dequantize(&self) -> Linear {
        let weight = Tensor::from_vec(
            self.out_features,
            self.in_features,
            self.qweight.iter().map(|&q| q as f32 * self.scale).collect(),
        );
        Linear::from_parts(weight, self.bias.clone())
    }

    /// Forward pass using dequantized weights.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        self.dequantize().forward(x)
    }
}

/// The quantized inference network — BFA's attack surface.
///
/// # Example
///
/// ```
/// use dlk_dnn::{Mlp, QuantizedMlp, BitIndex};
///
/// let model = Mlp::new(&[4, 8, 2], 3);
/// let mut quantized = QuantizedMlp::quantize(&model);
/// let bit = BitIndex { layer: 0, weight: 0, bit: 7 };
/// let before = quantized.layers()[0].qweights()[0];
/// quantized.flip_bit(bit).unwrap();
/// assert_ne!(quantized.layers()[0].qweights()[0], before);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantLinear>,
}

impl QuantizedMlp {
    /// Quantizes every layer of a float model.
    pub fn quantize(model: &Mlp) -> Self {
        Self { layers: model.layers().iter().map(QuantLinear::quantize).collect() }
    }

    /// The layers.
    pub fn layers(&self) -> &[QuantLinear] {
        &self.layers
    }

    /// Mutable layers.
    pub fn layers_mut(&mut self) -> &mut [QuantLinear] {
        &mut self.layers
    }

    /// Total quantized weights.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(QuantLinear::num_weights).sum()
    }

    /// Total weight bits (8 per weight).
    pub fn total_bits(&self) -> usize {
        self.total_weights() * 8
    }

    /// Reconstructs the float model implied by current (possibly
    /// corrupted) quantized weights.
    pub fn to_float_model(&self) -> Mlp {
        let mut model = Mlp::new(
            &self.shape_sizes(),
            0, // weights are overwritten below
        );
        for (dst, src) in model.layers_mut().iter_mut().zip(&self.layers) {
            *dst = src.dequantize();
        }
        model
    }

    fn shape_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![self.layers[0].in_features()];
        sizes.extend(self.layers.iter().map(QuantLinear::out_features));
        sizes
    }

    /// Forward pass to logits.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        let mut activation = x.clone();
        for (index, layer) in self.layers.iter().enumerate() {
            activation = layer.forward(&activation)?;
            if index + 1 < self.layers.len() {
                activation.relu_inplace();
            }
        }
        Ok(activation)
    }

    /// Classification accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> Result<f64, DnnError> {
        let logits = self.forward(x)?;
        let predictions = argmax_rows(&logits);
        let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }

    /// Mean loss and per-layer gradients w.r.t. the *dequantized*
    /// weights — the ranking signal of progressive bit search.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes.
    pub fn loss_and_grads(
        &self,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<(f32, Vec<LinearGrads>), DnnError> {
        self.to_float_model().loss_and_grads(x, labels)
    }

    /// Reads one weight bit.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadWeightIndex`] for out-of-range indices.
    pub fn bit(&self, index: BitIndex) -> Result<bool, DnnError> {
        let byte = self
            .layers
            .get(index.layer)
            .and_then(|l| l.weight_byte(index.weight))
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        Ok(byte >> (index.bit & 7) & 1 == 1)
    }

    /// Flips one weight bit; returns the new bit value.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadWeightIndex`] for out-of-range indices.
    pub fn flip_bit(&mut self, index: BitIndex) -> Result<bool, DnnError> {
        let layer = self
            .layers
            .get_mut(index.layer)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let byte = layer
            .weight_byte(index.weight)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let flipped = byte ^ (1 << (index.bit & 7));
        layer.set_weight_byte(index.weight, flipped);
        Ok(flipped >> (index.bit & 7) & 1 == 1)
    }

    /// The change in effective weight value a flip of `index` causes
    /// right now (signed, in float weight units).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadWeightIndex`] for out-of-range indices.
    pub fn flip_delta(&self, index: BitIndex) -> Result<f32, DnnError> {
        let layer = self
            .layers
            .get(index.layer)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let byte = layer
            .weight_byte(index.weight)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let before = byte as i8 as f32;
        let after = (byte ^ (1 << (index.bit & 7))) as i8 as f32;
        Ok((after - before) * layer.scale())
    }

    /// Concatenated raw weight bytes of all layers (two's complement) —
    /// the image deployed into DRAM.
    pub fn weight_bytes(&self) -> Vec<u8> {
        self.layers.iter().flat_map(|l| l.qweights().iter().map(|&q| q as u8)).collect()
    }

    /// Overwrites all weights from a concatenated byte image.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::RegionTooSmall`] if `bytes` is shorter than
    /// the weight count.
    pub fn load_weight_bytes(&mut self, bytes: &[u8]) -> Result<(), DnnError> {
        let needed = self.total_weights();
        if bytes.len() < needed {
            return Err(DnnError::RegionTooSmall {
                needed: needed as u64,
                available: bytes.len() as u64,
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            for index in 0..layer.num_weights() {
                layer.set_weight_byte(index, bytes[offset + index]);
            }
            offset += layer.num_weights();
        }
        Ok(())
    }

    /// Locates a flat byte offset (into [`QuantizedMlp::weight_bytes`])
    /// as a `(layer, weight)` pair.
    pub fn locate_byte(&self, offset: usize) -> Option<(usize, usize)> {
        let mut base = 0;
        for (layer_index, layer) in self.layers.iter().enumerate() {
            if offset < base + layer.num_weights() {
                return Some((layer_index, offset - base));
            }
            base += layer.num_weights();
        }
        None
    }

    /// Inverse of [`QuantizedMlp::locate_byte`].
    pub fn byte_offset(&self, layer: usize, weight: usize) -> Option<usize> {
        if layer >= self.layers.len() || weight >= self.layers[layer].num_weights() {
            return None;
        }
        let base: usize = self.layers[..layer].iter().map(QuantLinear::num_weights).sum();
        Some(base + weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Mlp {
        Mlp::new(&[4, 6, 3], 17)
    }

    #[test]
    fn quantization_error_is_bounded() {
        let float_model = model();
        let quantized = QuantizedMlp::quantize(&float_model);
        for (fl, ql) in float_model.layers().iter().zip(quantized.layers()) {
            let deq = ql.dequantize();
            for (a, b) in fl.weight().as_slice().iter().zip(deq.weight().as_slice()) {
                assert!((a - b).abs() <= ql.scale() / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn quantized_accuracy_close_to_float() {
        let float_model = model();
        let quantized = QuantizedMlp::quantize(&float_model);
        let x = Tensor::randn(32, 4, 3);
        let float_logits = float_model.forward(&x).unwrap();
        let quant_logits = quantized.forward(&x).unwrap();
        let agree = argmax_rows(&float_logits)
            .iter()
            .zip(argmax_rows(&quant_logits))
            .filter(|(a, b)| **a == *b)
            .count();
        assert!(agree >= 30, "8-bit quantization should barely change argmax: {agree}/32");
    }

    #[test]
    fn bit_flip_roundtrip() {
        let mut quantized = QuantizedMlp::quantize(&model());
        let bit = BitIndex { layer: 1, weight: 5, bit: 3 };
        let before = quantized.bit(bit).unwrap();
        let after = quantized.flip_bit(bit).unwrap();
        assert_ne!(before, after);
        quantized.flip_bit(bit).unwrap();
        assert_eq!(quantized.bit(bit).unwrap(), before);
    }

    #[test]
    fn msb_flip_moves_weight_most() {
        let quantized = QuantizedMlp::quantize(&model());
        let lsb = quantized.flip_delta(BitIndex { layer: 0, weight: 0, bit: 0 }).unwrap().abs();
        let msb = quantized.flip_delta(BitIndex { layer: 0, weight: 0, bit: 7 }).unwrap().abs();
        assert!(msb > lsb * 100.0, "msb {msb} vs lsb {lsb}");
    }

    #[test]
    fn out_of_range_bit_rejected() {
        let quantized = QuantizedMlp::quantize(&model());
        assert!(quantized.bit(BitIndex { layer: 9, weight: 0, bit: 0 }).is_err());
        assert!(quantized.bit(BitIndex { layer: 0, weight: 1 << 20, bit: 0 }).is_err());
    }

    #[test]
    fn weight_bytes_roundtrip() {
        let quantized = QuantizedMlp::quantize(&model());
        let bytes = quantized.weight_bytes();
        assert_eq!(bytes.len(), quantized.total_weights());
        let mut other = quantized.clone();
        // Corrupt then restore.
        let mut corrupted = bytes.clone();
        corrupted[0] ^= 0x80;
        other.load_weight_bytes(&corrupted).unwrap();
        assert_ne!(other, quantized);
        other.load_weight_bytes(&bytes).unwrap();
        assert_eq!(other, quantized);
    }

    #[test]
    fn locate_byte_is_inverse_of_byte_offset() {
        let quantized = QuantizedMlp::quantize(&model());
        for offset in [0usize, 5, 23, quantized.total_weights() - 1] {
            let (layer, weight) = quantized.locate_byte(offset).unwrap();
            assert_eq!(quantized.byte_offset(layer, weight), Some(offset));
        }
        assert_eq!(quantized.locate_byte(quantized.total_weights()), None);
    }

    #[test]
    fn to_float_model_matches_forward() {
        let quantized = QuantizedMlp::quantize(&model());
        let float_model = quantized.to_float_model();
        let x = Tensor::randn(4, 4, 8);
        let a = quantized.forward(&x).unwrap();
        let b = float_model.forward(&x).unwrap();
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-5);
        }
    }
}
