//! Symmetric 8-bit quantization and the quantized inference network.
//!
//! Weights are quantized per layer: `scale = max|w| / 127`,
//! `q = round(w / scale)` clamped to `[-127, 127]`, stored as `i8` in
//! two's complement. A bit flip in the stored byte therefore changes
//! the effective weight by `±2^bit · scale` for magnitude bits — and
//! flips of bit 7 (the sign bit in two's complement) swing the weight
//! by up to `128·scale`, which is why BFA overwhelmingly targets MSBs.
//!
//! The quantized network mirrors the float [`Network`]: a flat
//! [`QuantLayer`] plan whose weighted entries (dense matrices and conv
//! kernel matrices) are the attack surface. [`BitIndex::layer`]
//! indexes the *weighted* layers in execution order, so an MLP's
//! indices are unchanged from the original all-dense substrate and a
//! CNN's conv kernels are addressed the same way.

use serde::{Deserialize, Serialize};

use crate::conv::{Conv2d, ConvSpec, Pool2d};
use crate::error::DnnError;
use crate::layers::Linear;
use crate::model::{argmax_rows, Mlp};
use crate::network::{Layer, LayerGrads, Network};
use crate::tensor::Tensor;

/// Identifies one bit of one quantized weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BitIndex {
    /// Index among the network's *weighted* layers (dense + conv), in
    /// execution order.
    pub layer: usize,
    /// Flat weight index within the layer's kernel/weight matrix.
    pub weight: usize,
    /// Bit position (0 = LSB, 7 = sign bit).
    pub bit: u8,
}

/// A quantized fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantLinear {
    qweight: Vec<i8>,
    out_features: usize,
    in_features: usize,
    scale: f32,
    bias: Vec<f32>,
}

impl QuantLinear {
    /// Quantizes a float layer.
    pub fn quantize(layer: &Linear) -> Self {
        let abs_max = layer.weight().abs_max();
        let scale = if abs_max == 0.0 { 1.0 } else { abs_max / 127.0 };
        let qweight = layer
            .weight()
            .as_slice()
            .iter()
            .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            qweight,
            out_features: layer.out_features(),
            in_features: layer.in_features(),
            scale,
            bias: layer.bias().to_vec(),
        }
    }

    /// Quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of weights.
    pub fn num_weights(&self) -> usize {
        self.qweight.len()
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The quantized weights.
    pub fn qweights(&self) -> &[i8] {
        &self.qweight
    }

    /// Raw weight byte (two's complement) at `index`.
    pub fn weight_byte(&self, index: usize) -> Option<u8> {
        self.qweight.get(index).map(|&q| q as u8)
    }

    /// Overwrites the raw weight byte at `index`.
    pub fn set_weight_byte(&mut self, index: usize, byte: u8) -> bool {
        if let Some(slot) = self.qweight.get_mut(index) {
            *slot = byte as i8;
            true
        } else {
            false
        }
    }

    /// Dequantizes to a float layer.
    pub fn dequantize(&self) -> Linear {
        let weight = Tensor::from_vec(
            self.out_features,
            self.in_features,
            self.qweight.iter().map(|&q| q as f32 * self.scale).collect(),
        );
        Linear::from_parts(weight, self.bias.clone())
    }

    /// Forward pass using dequantized weights.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        self.dequantize().forward(x)
    }
}

/// A quantized 2-D convolution: the im2col kernel matrix quantized
/// exactly like a dense layer, plus the spatial spec to execute it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantConv2d {
    matrix: QuantLinear,
    spec: ConvSpec,
}

impl QuantConv2d {
    /// Quantizes a float convolution.
    pub fn quantize(conv: &Conv2d) -> Self {
        let as_linear = Linear::from_parts(conv.weight().clone(), conv.bias().to_vec());
        Self { matrix: QuantLinear::quantize(&as_linear), spec: *conv.spec() }
    }

    /// The spatial specification.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// The quantized kernel matrix `(out_c, in_c·k·k)`.
    pub fn matrix(&self) -> &QuantLinear {
        &self.matrix
    }

    /// Mutable quantized kernel matrix.
    pub fn matrix_mut(&mut self) -> &mut QuantLinear {
        &mut self.matrix
    }

    /// Dequantizes to a float convolution.
    pub fn dequantize(&self) -> Conv2d {
        let linear = self.matrix.dequantize();
        Conv2d::from_parts(linear.weight().clone(), linear.bias().to_vec(), self.spec)
    }
}

/// One step of a [`QuantNetwork`]'s execution plan — the quantized
/// mirror of [`Layer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantLayer {
    /// A quantized fully-connected layer.
    Dense(QuantLinear),
    /// A quantized convolution.
    Conv(QuantConv2d),
    /// Element-wise ReLU.
    Relu,
    /// 2-D max pooling.
    MaxPool(Pool2d),
    /// 2-D average pooling.
    AvgPool(Pool2d),
    /// Residual shortcut marker.
    SkipStart,
    /// Residual add marker.
    SkipAdd,
}

impl QuantLayer {
    /// Whether this layer carries attackable weights.
    pub fn is_weighted(&self) -> bool {
        matches!(self, QuantLayer::Dense(_) | QuantLayer::Conv(_))
    }

    /// The quantized weight matrix of a weighted layer — the dense
    /// matrix itself, or a conv's im2col kernel matrix.
    pub fn matrix(&self) -> Option<&QuantLinear> {
        match self {
            QuantLayer::Dense(q) => Some(q),
            QuantLayer::Conv(c) => Some(c.matrix()),
            _ => None,
        }
    }

    /// Mutable quantized weight matrix of a weighted layer.
    pub fn matrix_mut(&mut self) -> Option<&mut QuantLinear> {
        match self {
            QuantLayer::Dense(q) => Some(q),
            QuantLayer::Conv(c) => Some(c.matrix_mut()),
            _ => None,
        }
    }

    /// Number of quantized weights (0 for structure layers).
    pub fn num_weights(&self) -> usize {
        self.matrix().map_or(0, QuantLinear::num_weights)
    }

    /// Quantization scale (1.0 for structure layers).
    pub fn scale(&self) -> f32 {
        self.matrix().map_or(1.0, QuantLinear::scale)
    }

    fn quantize(layer: &Layer) -> Self {
        match layer {
            Layer::Dense(l) => QuantLayer::Dense(QuantLinear::quantize(l)),
            Layer::Conv(c) => QuantLayer::Conv(QuantConv2d::quantize(c)),
            Layer::Relu => QuantLayer::Relu,
            Layer::MaxPool(p) => QuantLayer::MaxPool(*p),
            Layer::AvgPool(p) => QuantLayer::AvgPool(*p),
            Layer::SkipStart => QuantLayer::SkipStart,
            Layer::SkipAdd => QuantLayer::SkipAdd,
        }
    }

    fn dequantize(&self) -> Layer {
        match self {
            QuantLayer::Dense(q) => Layer::Dense(q.dequantize()),
            QuantLayer::Conv(c) => Layer::Conv(c.dequantize()),
            QuantLayer::Relu => Layer::Relu,
            QuantLayer::MaxPool(p) => Layer::MaxPool(*p),
            QuantLayer::AvgPool(p) => Layer::AvgPool(*p),
            QuantLayer::SkipStart => Layer::SkipStart,
            QuantLayer::SkipAdd => Layer::SkipAdd,
        }
    }
}

/// The quantized inference network — BFA's attack surface.
///
/// # Example
///
/// ```
/// use dlk_dnn::{Mlp, QuantizedMlp, BitIndex};
///
/// let model = Mlp::new(&[4, 8, 2], 3);
/// let mut quantized = QuantizedMlp::quantize(&model);
/// let bit = BitIndex { layer: 0, weight: 0, bit: 7 };
/// let before = quantized.bit(bit).unwrap();
/// quantized.flip_bit(bit).unwrap();
/// assert_ne!(quantized.bit(bit).unwrap(), before);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantNetwork {
    layers: Vec<QuantLayer>,
}

/// The historical name of the quantized network, kept because every
/// call site grew up on the all-dense substrate. A `QuantizedMlp` can
/// hold convolutions and residual skips since the CNN subsystem landed.
pub type QuantizedMlp = QuantNetwork;

impl QuantNetwork {
    /// Quantizes every layer of a float model ([`Mlp`] or [`Network`],
    /// by reference).
    pub fn quantize(model: impl Into<Network>) -> Self {
        let network: Network = model.into();
        Self { layers: network.layers().iter().map(QuantLayer::quantize).collect() }
    }

    /// The full execution plan, including structure layers.
    pub fn layers(&self) -> &[QuantLayer] {
        &self.layers
    }

    /// Mutable execution plan.
    pub fn layers_mut(&mut self) -> &mut [QuantLayer] {
        &mut self.layers
    }

    /// The weighted layers in execution order — the list
    /// [`BitIndex::layer`] indexes.
    pub fn weighted_layers(&self) -> Vec<&QuantLayer> {
        self.layers.iter().filter(|l| l.is_weighted()).collect()
    }

    /// Mutable weighted layers in execution order.
    pub fn weighted_layers_mut(&mut self) -> Vec<&mut QuantLayer> {
        self.layers.iter_mut().filter(|l| l.is_weighted()).collect()
    }

    /// Number of weighted layers.
    pub fn weighted_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weighted()).count()
    }

    /// Total quantized weights.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(QuantLayer::num_weights).sum()
    }

    /// Total weight bits (8 per weight).
    pub fn total_bits(&self) -> usize {
        self.total_weights() * 8
    }

    /// Reconstructs the float network implied by current (possibly
    /// corrupted) quantized weights.
    pub fn to_float_model(&self) -> Network {
        Network::new(self.layers.iter().map(QuantLayer::dequantize).collect())
    }

    /// Reconstructs an [`Mlp`] when the plan is the all-dense MLP
    /// shape; `None` for CNNs.
    pub fn to_mlp(&self) -> Option<Mlp> {
        self.to_float_model().as_mlp()
    }

    /// Forward pass to logits (dequantized execution).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, DnnError> {
        self.to_float_model().forward(x)
    }

    /// Classification accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on wrong input width.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> Result<f64, DnnError> {
        let logits = self.forward(x)?;
        let predictions = argmax_rows(&logits);
        let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }

    /// Mean loss and per-weighted-layer gradients w.r.t. the
    /// *dequantized* weights — the ranking signal of progressive bit
    /// search. `grads[i].weight[j]` aligns with
    /// `BitIndex { layer: i, weight: j, .. }`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] on inconsistent shapes.
    pub fn loss_and_grads(
        &self,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<(f32, Vec<LayerGrads>), DnnError> {
        self.to_float_model().loss_and_grads(x, labels)
    }

    /// The weighted layer at [`BitIndex::layer`] position `index`.
    fn weighted(&self, index: usize) -> Option<&QuantLinear> {
        self.layers.iter().filter(|l| l.is_weighted()).nth(index)?.matrix()
    }

    fn weighted_mut(&mut self, index: usize) -> Option<&mut QuantLinear> {
        self.layers.iter_mut().filter(|l| l.is_weighted()).nth(index)?.matrix_mut()
    }

    /// Reads one weight bit.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadWeightIndex`] for out-of-range indices.
    pub fn bit(&self, index: BitIndex) -> Result<bool, DnnError> {
        let byte = self
            .weighted(index.layer)
            .and_then(|l| l.weight_byte(index.weight))
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        Ok(byte >> (index.bit & 7) & 1 == 1)
    }

    /// Flips one weight bit; returns the new bit value.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadWeightIndex`] for out-of-range indices.
    pub fn flip_bit(&mut self, index: BitIndex) -> Result<bool, DnnError> {
        let layer = self
            .weighted_mut(index.layer)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let byte = layer
            .weight_byte(index.weight)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let flipped = byte ^ (1 << (index.bit & 7));
        layer.set_weight_byte(index.weight, flipped);
        Ok(flipped >> (index.bit & 7) & 1 == 1)
    }

    /// The change in effective weight value a flip of `index` causes
    /// right now (signed, in float weight units).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadWeightIndex`] for out-of-range indices.
    pub fn flip_delta(&self, index: BitIndex) -> Result<f32, DnnError> {
        let layer = self
            .weighted(index.layer)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let byte = layer
            .weight_byte(index.weight)
            .ok_or(DnnError::BadWeightIndex { layer: index.layer, index: index.weight })?;
        let before = byte as i8 as f32;
        let after = (byte ^ (1 << (index.bit & 7))) as i8 as f32;
        Ok((after - before) * layer.scale())
    }

    /// Concatenated raw weight bytes of all weighted layers (two's
    /// complement) — the image deployed into DRAM.
    pub fn weight_bytes(&self) -> Vec<u8> {
        self.layers
            .iter()
            .filter_map(QuantLayer::matrix)
            .flat_map(|l| l.qweights().iter().map(|&q| q as u8))
            .collect()
    }

    /// Overwrites all weights from a concatenated byte image.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::RegionTooSmall`] if `bytes` is shorter than
    /// the weight count.
    pub fn load_weight_bytes(&mut self, bytes: &[u8]) -> Result<(), DnnError> {
        let needed = self.total_weights();
        if bytes.len() < needed {
            return Err(DnnError::RegionTooSmall {
                needed: needed as u64,
                available: bytes.len() as u64,
            });
        }
        let mut offset = 0;
        for layer in self.layers.iter_mut().filter_map(QuantLayer::matrix_mut) {
            for index in 0..layer.num_weights() {
                layer.set_weight_byte(index, bytes[offset + index]);
            }
            offset += layer.num_weights();
        }
        Ok(())
    }

    /// Locates a flat byte offset (into [`QuantNetwork::weight_bytes`])
    /// as a `(weighted-layer, weight)` pair.
    pub fn locate_byte(&self, offset: usize) -> Option<(usize, usize)> {
        let mut base = 0;
        for (layer_index, layer) in self.layers.iter().filter(|l| l.is_weighted()).enumerate() {
            if offset < base + layer.num_weights() {
                return Some((layer_index, offset - base));
            }
            base += layer.num_weights();
        }
        None
    }

    /// Inverse of [`QuantNetwork::locate_byte`].
    pub fn byte_offset(&self, layer: usize, weight: usize) -> Option<usize> {
        let weighted = self.weighted_layers();
        if layer >= weighted.len() || weight >= weighted[layer].num_weights() {
            return None;
        }
        let base: usize = weighted[..layer].iter().map(|l| l.num_weights()).sum();
        Some(base + weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn model() -> Mlp {
        Mlp::new(&[4, 6, 3], 17)
    }

    fn cnn() -> Network {
        let spec = ConvSpec { in_c: 1, in_h: 4, in_w: 4, out_c: 2, k: 3, stride: 1, pad: 1 };
        Network::new(vec![
            Layer::Conv(Conv2d::new(spec, 4)),
            Layer::Relu,
            Layer::SkipStart,
            Layer::Conv(Conv2d::new(ConvSpec { in_c: 2, out_c: 2, ..spec }, 5)),
            Layer::SkipAdd,
            Layer::MaxPool(Pool2d::halve(2, 4, 4)),
            Layer::Dense(Linear::new(8, 3, 6)),
        ])
    }

    #[test]
    fn quantization_error_is_bounded() {
        let float_model = model();
        let quantized = QuantizedMlp::quantize(&float_model);
        for (fl, ql) in float_model.layers().iter().zip(quantized.weighted_layers()) {
            let deq = ql.matrix().unwrap().dequantize();
            for (a, b) in fl.weight().as_slice().iter().zip(deq.weight().as_slice()) {
                assert!((a - b).abs() <= ql.scale() / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn quantized_accuracy_close_to_float() {
        let float_model = model();
        let quantized = QuantizedMlp::quantize(&float_model);
        let x = Tensor::randn(32, 4, 3);
        let float_logits = float_model.forward(&x).unwrap();
        let quant_logits = quantized.forward(&x).unwrap();
        let agree = argmax_rows(&float_logits)
            .iter()
            .zip(argmax_rows(&quant_logits))
            .filter(|(a, b)| **a == *b)
            .count();
        assert!(agree >= 30, "8-bit quantization should barely change argmax: {agree}/32");
    }

    #[test]
    fn bit_flip_roundtrip() {
        let mut quantized = QuantizedMlp::quantize(&model());
        let bit = BitIndex { layer: 1, weight: 5, bit: 3 };
        let before = quantized.bit(bit).unwrap();
        let after = quantized.flip_bit(bit).unwrap();
        assert_ne!(before, after);
        quantized.flip_bit(bit).unwrap();
        assert_eq!(quantized.bit(bit).unwrap(), before);
    }

    #[test]
    fn msb_flip_moves_weight_most() {
        let quantized = QuantizedMlp::quantize(&model());
        let lsb = quantized.flip_delta(BitIndex { layer: 0, weight: 0, bit: 0 }).unwrap().abs();
        let msb = quantized.flip_delta(BitIndex { layer: 0, weight: 0, bit: 7 }).unwrap().abs();
        assert!(msb > lsb * 100.0, "msb {msb} vs lsb {lsb}");
    }

    #[test]
    fn out_of_range_bit_rejected() {
        let quantized = QuantizedMlp::quantize(&model());
        assert!(quantized.bit(BitIndex { layer: 9, weight: 0, bit: 0 }).is_err());
        assert!(quantized.bit(BitIndex { layer: 0, weight: 1 << 20, bit: 0 }).is_err());
    }

    #[test]
    fn weight_bytes_roundtrip() {
        let quantized = QuantizedMlp::quantize(&model());
        let bytes = quantized.weight_bytes();
        assert_eq!(bytes.len(), quantized.total_weights());
        let mut other = quantized.clone();
        // Corrupt then restore.
        let mut corrupted = bytes.clone();
        corrupted[0] ^= 0x80;
        other.load_weight_bytes(&corrupted).unwrap();
        assert_ne!(other, quantized);
        other.load_weight_bytes(&bytes).unwrap();
        assert_eq!(other, quantized);
    }

    #[test]
    fn locate_byte_is_inverse_of_byte_offset() {
        let quantized = QuantizedMlp::quantize(&model());
        for offset in [0usize, 5, 23, quantized.total_weights() - 1] {
            let (layer, weight) = quantized.locate_byte(offset).unwrap();
            assert_eq!(quantized.byte_offset(layer, weight), Some(offset));
        }
        assert_eq!(quantized.locate_byte(quantized.total_weights()), None);
    }

    #[test]
    fn to_float_model_matches_forward() {
        let quantized = QuantizedMlp::quantize(&model());
        let float_model = quantized.to_float_model();
        let x = Tensor::randn(4, 4, 8);
        let a = quantized.forward(&x).unwrap();
        let b = float_model.forward(&x).unwrap();
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn mlp_bit_indices_are_unchanged_by_the_generalization() {
        // The historical contract: for an MLP, BitIndex.layer is the
        // linear-layer position, despite the interleaved ReLUs in the
        // flat plan.
        let quantized = QuantizedMlp::quantize(&model());
        assert_eq!(quantized.layers().len(), 3); // Dense Relu Dense
        assert_eq!(quantized.weighted_count(), 2);
        assert_eq!(quantized.locate_byte(0), Some((0, 0)));
        assert_eq!(quantized.locate_byte(4 * 6), Some((1, 0)));
        // The dequantized network still round-trips as an MLP, and
        // re-quantizing it is a fixed point.
        let mlp = quantized.to_mlp().unwrap();
        assert_eq!(mlp.num_layers(), 2);
        assert_eq!(QuantizedMlp::quantize(&mlp), quantized);
    }

    #[test]
    fn cnn_quantizes_and_round_trips() {
        let network = cnn();
        let quantized = QuantNetwork::quantize(&network);
        assert_eq!(quantized.weighted_count(), 3);
        assert_eq!(quantized.total_weights(), network.total_weights());
        assert!(quantized.to_mlp().is_none());
        // Quantized forward tracks the float network closely.
        let x = Tensor::randn(8, 16, 9);
        let fl = network.forward(&x).unwrap();
        let ql = quantized.forward(&x).unwrap();
        let agree =
            argmax_rows(&fl).iter().zip(argmax_rows(&ql)).filter(|(a, b)| **a == *b).count();
        assert!(agree >= 7, "{agree}/8");
    }

    #[test]
    fn conv_kernel_bits_are_flippable() {
        let mut quantized = QuantNetwork::quantize(cnn());
        // Weighted layer 1 is the residual conv: flip its first MSB.
        let bit = BitIndex { layer: 1, weight: 0, bit: 7 };
        let before = quantized.weighted_layers()[1].matrix().unwrap().weight_byte(0).unwrap();
        quantized.flip_bit(bit).unwrap();
        let after = quantized.weighted_layers()[1].matrix().unwrap().weight_byte(0).unwrap();
        assert_eq!(before ^ after, 0x80);
        // And the byte image sees the same flip at the right offset.
        let offset = quantized.byte_offset(1, 0).unwrap();
        assert_eq!(quantized.weight_bytes()[offset], after);
        let delta = quantized.flip_delta(bit).unwrap();
        assert!(delta.abs() > quantized.flip_delta(BitIndex { bit: 0, ..bit }).unwrap().abs());
    }

    #[test]
    fn cnn_grads_align_with_bit_indices() {
        let quantized = QuantNetwork::quantize(cnn());
        let x = Tensor::randn(6, 16, 10);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let (_, grads) = quantized.loss_and_grads(&x, &labels).unwrap();
        assert_eq!(grads.len(), quantized.weighted_count());
        for (grad, layer) in grads.iter().zip(quantized.weighted_layers()) {
            assert_eq!(grad.weight.len(), layer.num_weights());
        }
    }
}
