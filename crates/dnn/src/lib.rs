//! # dlk-dnn — quantized DNN substrate
//!
//! The victim workload of the DRAM-Locker paper: 8-bit quantized neural
//! networks whose weights live in DRAM rows. Everything is built from
//! scratch:
//!
//! - [`tensor`]: a minimal 2-D tensor (row-major `f32` matrix);
//! - [`layers`]: fully-connected layers with ReLU and a softmax
//!   cross-entropy head, all with hand-written backprop;
//! - [`conv`]: 2-D convolution (im2col forward/backward) and pooling;
//! - [`model`]: the [`Mlp`] network and its training-time API;
//! - [`network`]: the general sequential [`Network`] — a flat
//!   [`Layer`](network::Layer) plan with residual-skip markers that
//!   subsumes [`Mlp`] and hosts the CNN topologies;
//! - [`quant`]: symmetric 8-bit quantization and the
//!   [`QuantNetwork`] inference network (historical alias
//!   [`QuantizedMlp`]) with per-bit weight access — the attack
//!   surface of BFA, for dense *and* conv kernels;
//! - [`data`]: deterministic synthetic classification datasets
//!   standing in for CIFAR-10 / CIFAR-100 (see DESIGN.md §3 for the
//!   substitution argument);
//! - [`train`]: SGD training over any [`Trainable`] model;
//! - [`models`]: the paper's evaluation networks — MLP stand-ins plus
//!   real ResNet-20-shaped and VGG-11-shaped CNNs on the quantized
//!   substrate;
//! - [`storage`]: the DRAM weight layout — deploys quantized weights
//!   into [`dlk_dram`] rows and reads them back, so RowHammer flips in
//!   DRAM *are* weight corruptions at inference time.
//!
//! ## Example
//!
//! ```
//! use dlk_dnn::data::SyntheticDataset;
//! use dlk_dnn::models;
//! use dlk_dnn::quant::QuantizedMlp;
//! use dlk_dnn::train::{Trainer, TrainConfig};
//!
//! let dataset = SyntheticDataset::tiny_for_tests(42);
//! let mut model = models::tiny_mlp(42);
//! let report = Trainer::new(TrainConfig::fast_for_tests()).fit(&mut model, &dataset);
//! assert!(report.test_accuracy > 0.6);
//! let quantized = QuantizedMlp::quantize(&model);
//! assert!(quantized.total_weights() > 0);
//! ```

pub mod conv;
pub mod data;
pub mod error;
pub mod layers;
pub mod model;
pub mod models;
pub mod network;
pub mod quant;
pub mod storage;
pub mod tensor;
pub mod train;

pub use crate::conv::{Conv2d, ConvSpec, Pool2d};
pub use crate::data::SyntheticDataset;
pub use crate::error::DnnError;
pub use crate::layers::Linear;
pub use crate::model::Mlp;
pub use crate::network::{Layer, LayerGrads, Network};
pub use crate::quant::{
    BitIndex, QuantConv2d, QuantLayer, QuantLinear, QuantNetwork, QuantizedMlp,
};
pub use crate::storage::WeightLayout;
pub use crate::tensor::Tensor;
pub use crate::train::{TrainConfig, TrainReport, Trainable, Trainer};
