//! # dlk-dnn — quantized DNN substrate
//!
//! The victim workload of the DRAM-Locker paper: 8-bit quantized neural
//! networks whose weights live in DRAM rows. Everything is built from
//! scratch:
//!
//! - [`tensor`]: a minimal 2-D tensor (row-major `f32` matrix);
//! - [`layers`]: fully-connected layers with ReLU and a softmax
//!   cross-entropy head, all with hand-written backprop;
//! - [`model`]: the [`Mlp`] network and its training-time API;
//! - [`quant`]: symmetric 8-bit quantization and the
//!   [`QuantizedMlp`] inference network with per-bit weight access —
//!   the attack surface of BFA;
//! - [`data`]: deterministic synthetic classification datasets
//!   standing in for CIFAR-10 / CIFAR-100 (see DESIGN.md §3 for the
//!   substitution argument);
//! - [`train`]: SGD training;
//! - [`models`]: the paper's two evaluation networks, scaled:
//!   ResNet-20-like (CIFAR-10-like) and VGG-11-like (CIFAR-100-like);
//! - [`storage`]: the DRAM weight layout — deploys quantized weights
//!   into [`dlk_dram`] rows and reads them back, so RowHammer flips in
//!   DRAM *are* weight corruptions at inference time.
//!
//! ## Example
//!
//! ```
//! use dlk_dnn::data::SyntheticDataset;
//! use dlk_dnn::models;
//! use dlk_dnn::quant::QuantizedMlp;
//! use dlk_dnn::train::{Trainer, TrainConfig};
//!
//! let dataset = SyntheticDataset::tiny_for_tests(42);
//! let mut model = models::tiny_mlp(42);
//! let report = Trainer::new(TrainConfig::fast_for_tests()).fit(&mut model, &dataset);
//! assert!(report.test_accuracy > 0.6);
//! let quantized = QuantizedMlp::quantize(&model);
//! assert!(quantized.total_weights() > 0);
//! ```

pub mod data;
pub mod error;
pub mod layers;
pub mod model;
pub mod models;
pub mod quant;
pub mod storage;
pub mod tensor;
pub mod train;

pub use crate::data::SyntheticDataset;
pub use crate::error::DnnError;
pub use crate::layers::Linear;
pub use crate::model::Mlp;
pub use crate::quant::{BitIndex, QuantLinear, QuantizedMlp};
pub use crate::storage::WeightLayout;
pub use crate::tensor::Tensor;
pub use crate::train::{TrainConfig, TrainReport, Trainer};
