//! Exact and tree-structured counter trackers.
//!
//! - [`CounterPerRow`]: one counter per DRAM row — the gold standard
//!   for detection accuracy and the overhead upper bound in Table I;
//! - [`CounterTree`] (Seyedzadeh et al., CAL 2017): a binary tree over
//!   the row-id space. Counting starts coarse at the root; any node
//!   whose count crosses the split threshold is refined into two
//!   children. Leaves at maximum depth mitigate. The tree bounds
//!   storage while never undercounting a row (a row's path count is an
//!   upper bound on its true count).

use std::collections::HashMap;

use dlk_dram::RowId;

use crate::traits::RowTracker;

/// One exact counter per row.
///
/// # Example
///
/// ```
/// use dlk_defenses::{CounterPerRow, RowTracker};
/// use dlk_dram::RowId;
///
/// let mut tracker = CounterPerRow::new(3);
/// assert!(!tracker.on_activate(RowId(0)));
/// assert!(!tracker.on_activate(RowId(0)));
/// assert!(tracker.on_activate(RowId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct CounterPerRow {
    threshold: u64,
    counts: HashMap<RowId, u64>,
    total_rows_hint: u64,
}

impl CounterPerRow {
    /// Creates a tracker mitigating at `threshold`.
    pub fn new(threshold: u64) -> Self {
        Self { threshold, counts: HashMap::new(), total_rows_hint: 1 << 24 }
    }

    /// Sets the device row count (for storage accounting).
    pub fn with_total_rows(mut self, rows: u64) -> Self {
        self.total_rows_hint = rows;
        self
    }

    /// Exact count of a row.
    pub fn count(&self, row: RowId) -> u64 {
        self.counts.get(&row).copied().unwrap_or(0)
    }
}

impl RowTracker for CounterPerRow {
    fn on_activate(&mut self, row: RowId) -> bool {
        let count = self.counts.entry(row).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            *count = 0;
            true
        } else {
            false
        }
    }

    fn reset_window(&mut self) {
        self.counts.clear();
    }

    fn storage_bits(&self) -> u64 {
        // A hardware implementation stores a counter for every row.
        self.total_rows_hint * 16
    }

    fn name(&self) -> &'static str {
        "counter-per-row"
    }
}

/// A counter tree over the row-id space.
#[derive(Debug, Clone)]
pub struct CounterTree {
    /// Mitigation threshold at max-depth leaves.
    threshold: u64,
    /// A node splits into children once it reaches this count.
    split_threshold: u64,
    /// Tree depth: leaves cover `row_space >> depth` rows.
    max_depth: u32,
    /// Row-id space size (power of two covering all rows).
    row_space: u64,
    /// Sparse node counters keyed by (depth, index-at-depth).
    nodes: HashMap<(u32, u64), u64>,
}

impl CounterTree {
    /// Creates a tree over `row_space` row ids with the given depth and
    /// thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `row_space` is not a power of two.
    pub fn new(row_space: u64, max_depth: u32, split_threshold: u64, threshold: u64) -> Self {
        assert!(row_space.is_power_of_two(), "row space must be a power of two");
        Self { threshold, split_threshold, max_depth, row_space, nodes: HashMap::new() }
    }

    /// Standard sizing for a threshold over a row space.
    pub fn for_threshold(row_space: u64, trh: u64) -> Self {
        Self::new(row_space, row_space.trailing_zeros(), trh / 8, trh / 2)
    }

    fn index_at_depth(&self, row: RowId, depth: u32) -> u64 {
        // At depth d the space is divided into 2^d buckets.
        let shift = self.row_space.trailing_zeros() - depth;
        (row.0 % self.row_space) >> shift
    }

    /// Number of materialized nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The depth currently tracking `row` (coarse 0 .. fine max_depth).
    pub fn tracking_depth(&self, row: RowId) -> u32 {
        let mut depth = 0;
        for d in 1..=self.max_depth {
            if self.nodes.contains_key(&(d, self.index_at_depth(row, d))) {
                depth = d;
            } else {
                break;
            }
        }
        depth
    }
}

impl RowTracker for CounterTree {
    fn on_activate(&mut self, row: RowId) -> bool {
        // Walk down the materialized path, incrementing each node.
        let mut depth = 0;
        loop {
            let key = (depth, self.index_at_depth(row, depth));
            let count = self.nodes.entry(key).or_insert(0);
            *count += 1;
            let count = *count;
            if depth == self.max_depth {
                if count >= self.threshold {
                    self.nodes.insert(key, 0);
                    return true;
                }
                return false;
            }
            // Descend only if the child level is materialized or this
            // node just crossed the split threshold.
            let child = (depth + 1, self.index_at_depth(row, depth + 1));
            if self.nodes.contains_key(&child) {
                depth += 1;
            } else if count >= self.split_threshold {
                self.nodes.insert(child, 0);
                depth += 1;
            } else {
                return false;
            }
        }
    }

    fn reset_window(&mut self) {
        self.nodes.clear();
    }

    fn storage_bits(&self) -> u64 {
        self.nodes.len().max(1) as u64 * 20
    }

    fn name(&self) -> &'static str {
        "counter-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_row_is_exact() {
        let mut tracker = CounterPerRow::new(5);
        for i in 1..5 {
            assert!(!tracker.on_activate(RowId(9)), "activation {i}");
        }
        assert!(tracker.on_activate(RowId(9)));
        assert_eq!(tracker.count(RowId(9)), 0, "reset after mitigation");
    }

    #[test]
    fn per_row_rows_independent() {
        let mut tracker = CounterPerRow::new(3);
        tracker.on_activate(RowId(0));
        tracker.on_activate(RowId(0));
        assert!(!tracker.on_activate(RowId(1)));
        assert!(tracker.on_activate(RowId(0)));
    }

    #[test]
    fn tree_refines_under_pressure() {
        let mut tree = CounterTree::new(64, 6, 4, 16);
        let row = RowId(37);
        assert_eq!(tree.tracking_depth(row), 0);
        for _ in 0..10 {
            tree.on_activate(row);
        }
        assert!(tree.tracking_depth(row) > 0, "hot row must be refined");
    }

    #[test]
    fn tree_mitigates_hot_row() {
        let mut tree = CounterTree::new(64, 6, 2, 8);
        let row = RowId(5);
        let mut mitigated = false;
        for _ in 0..100 {
            if tree.on_activate(row) {
                mitigated = true;
                break;
            }
        }
        assert!(mitigated);
    }

    #[test]
    fn tree_storage_grows_only_with_activity() {
        let mut tree = CounterTree::new(1 << 20, 20, 8, 64);
        let idle_bits = tree.storage_bits();
        for i in 0..50u64 {
            tree.on_activate(RowId(i * 1000));
        }
        assert!(tree.storage_bits() > idle_bits);
        // Far less than a full per-row table.
        assert!(tree.storage_bits() < (1 << 20) * 16);
    }

    #[test]
    fn cold_rows_never_mitigate() {
        let mut tree = CounterTree::new(64, 6, 4, 16);
        for i in 0..64u64 {
            assert!(!tree.on_activate(RowId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_space_panics() {
        let _ = CounterTree::new(100, 4, 2, 8);
    }
}
