//! Table I: hardware overhead of RowHammer mitigation frameworks.
//!
//! All frameworks are evaluated at the paper's uniform configuration —
//! a 32 GB, 16-bank DDR4 module — so capacity and area overheads are
//! directly comparable. Where a framework's published sizing formula is
//! parametric (counters per row, tracker entries per bank, ...), the
//! formula is implemented here; the constants are chosen to match the
//! numbers the frameworks' own papers report, which are the numbers
//! Table I cites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of memory a framework spends its overhead in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Commodity DRAM (cheapest per bit).
    Dram,
    /// On-die SRAM.
    Sram,
    /// Content-addressable memory (most expensive per bit).
    Cam,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemoryKind::Dram => "DRAM",
            MemoryKind::Sram => "SRAM",
            MemoryKind::Cam => "CAM",
        })
    }
}

/// One memory budget of a framework.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overhead {
    /// Where the bytes live.
    pub kind: MemoryKind,
    /// Capacity overhead in bytes.
    pub bytes: u64,
}

impl Overhead {
    /// DRAM bytes.
    pub fn dram(bytes: u64) -> Self {
        Self { kind: MemoryKind::Dram, bytes }
    }
    /// SRAM bytes.
    pub fn sram(bytes: u64) -> Self {
        Self { kind: MemoryKind::Sram, bytes }
    }
    /// CAM bytes.
    pub fn cam(bytes: u64) -> Self {
        Self { kind: MemoryKind::Cam, bytes }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Framework name.
    pub framework: &'static str,
    /// Capacity overheads per memory kind.
    pub capacity: Vec<Overhead>,
    /// Area overhead: percent of the DRAM die, when reported that way.
    pub area_pct: Option<f64>,
    /// Area overhead: counter count, when reported that way.
    pub counters: Option<u64>,
}

impl OverheadRow {
    /// Total capacity overhead in bytes across all memory kinds.
    pub fn total_bytes(&self) -> u64 {
        self.capacity.iter().map(|o| o.bytes).sum()
    }

    /// Bytes in a specific memory kind.
    pub fn bytes_in(&self, kind: MemoryKind) -> u64 {
        self.capacity.iter().filter(|o| o.kind == kind).map(|o| o.bytes).sum()
    }
}

/// The evaluation configuration of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramSpec {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Banks in the module.
    pub banks: u64,
    /// Row size in bytes.
    pub row_bytes: u64,
}

impl DramSpec {
    /// The paper's 32 GB, 16-bank DDR4 module with 8 KiB rows.
    pub fn paper() -> Self {
        Self { capacity_bytes: 32 << 30, banks: 16, row_bytes: 8 << 10 }
    }

    /// Total rows in the module.
    pub fn total_rows(&self) -> u64 {
        self.capacity_bytes / self.row_bytes
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.total_rows() / self.banks
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Builds Table I for a DRAM module specification.
///
/// # Example
///
/// ```
/// use dlk_defenses::{table1, MemoryKind};
/// use dlk_defenses::overhead::DramSpec;
///
/// let rows = table1(&DramSpec::paper());
/// let locker = rows.iter().find(|r| r.framework == "DRAM-Locker").unwrap();
/// assert_eq!(locker.bytes_in(MemoryKind::Sram), 56 * 1024);
/// assert_eq!(locker.bytes_in(MemoryKind::Dram), 0);
/// ```
pub fn table1(spec: &DramSpec) -> Vec<OverheadRow> {
    let rows_per_bank = spec.rows_per_bank();
    vec![
        OverheadRow {
            framework: "Graphene",
            // Misra-Gries tables per bank: entries sized for the lowest
            // supported TRH; row tags in CAM, counters in SRAM. Entry
            // counts follow the Graphene paper's 0.53 MB CAM + 1.12 MB
            // SRAM total for this module size.
            capacity: vec![
                Overhead::cam((543 * KB * spec.banks) / 16),
                Overhead::sram((1147 * KB * spec.banks) / 16),
            ],
            area_pct: None,
            counters: Some(1),
        },
        OverheadRow {
            framework: "Hydra",
            // Group counters in SRAM + per-row counters spilled to DRAM.
            capacity: vec![Overhead::sram(56 * KB), Overhead::dram(4 * MB)],
            area_pct: None,
            counters: Some(1),
        },
        OverheadRow {
            framework: "TWiCE",
            // Pruned counter table: ~one entry per 1.3k rows of DRAM.
            capacity: vec![Overhead::sram(3236 * KB), Overhead::cam(1638 * KB)],
            area_pct: None,
            counters: Some(1),
        },
        OverheadRow {
            framework: "Counter per Row",
            // 16 bits per row across the module.
            capacity: vec![Overhead::dram(spec.total_rows() * 2)],
            area_pct: None,
            counters: Some(rows_per_bank / 256),
        },
        OverheadRow {
            framework: "Counter Tree",
            // 1024 counters per bank, 16 bytes of node state each.
            capacity: vec![Overhead::dram(1024 * spec.banks * 128)],
            area_pct: None,
            counters: Some(1024),
        },
        OverheadRow {
            framework: "RRS",
            // Remap table in DRAM + unreported SRAM tags.
            capacity: vec![Overhead::dram(4 * MB)],
            area_pct: None,
            counters: None,
        },
        OverheadRow {
            framework: "SRS",
            capacity: vec![Overhead::dram((126 * MB) / 100)],
            area_pct: None,
            counters: None,
        },
        OverheadRow {
            framework: "SHADOW",
            // One shuffle-tag bit group per subarray.
            capacity: vec![Overhead::dram((16 * MB) / 100)],
            area_pct: Some(0.6),
            counters: None,
        },
        OverheadRow {
            framework: "P-PIM",
            capacity: vec![Overhead::dram(4 * MB + MB / 8)],
            area_pct: Some(0.34),
            counters: None,
        },
        OverheadRow {
            framework: "DRAM-Locker",
            // The lock-table only: 56 KB SRAM, zero DRAM, no counters.
            capacity: vec![Overhead::dram(0), Overhead::sram(56 * KB)],
            area_pct: Some(0.02),
            counters: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_table() -> Vec<OverheadRow> {
        table1(&DramSpec::paper())
    }

    #[test]
    fn locker_has_smallest_area_overhead() {
        let rows = paper_table();
        let locker_area =
            rows.iter().find(|r| r.framework == "DRAM-Locker").and_then(|r| r.area_pct).unwrap();
        for row in &rows {
            if let Some(area) = row.area_pct {
                assert!(locker_area <= area, "{} has smaller area", row.framework);
            }
        }
        assert!((locker_area - 0.02).abs() < 1e-9);
    }

    #[test]
    fn locker_uses_no_dram_and_no_counters() {
        let rows = paper_table();
        let locker = rows.iter().find(|r| r.framework == "DRAM-Locker").unwrap();
        assert_eq!(locker.bytes_in(MemoryKind::Dram), 0);
        assert_eq!(locker.counters, None);
        assert_eq!(locker.total_bytes(), 56 * 1024);
    }

    #[test]
    fn counter_per_row_is_the_capacity_hog() {
        let rows = paper_table();
        let cpr = rows.iter().find(|r| r.framework == "Counter per Row").unwrap();
        // 4M rows x 2B = 8 MB in DRAM at 8 KiB rows; scales with module
        // size and dwarfs every SRAM-resident scheme.
        assert!(cpr.total_bytes() >= 8 * MB);
        let locker = rows.iter().find(|r| r.framework == "DRAM-Locker").unwrap();
        assert!(cpr.total_bytes() > 100 * locker.total_bytes());
    }

    #[test]
    fn graphene_matches_published_sizing() {
        let rows = paper_table();
        let graphene = rows.iter().find(|r| r.framework == "Graphene").unwrap();
        let cam_mb = graphene.bytes_in(MemoryKind::Cam) as f64 / MB as f64;
        let sram_mb = graphene.bytes_in(MemoryKind::Sram) as f64 / MB as f64;
        assert!((cam_mb - 0.53).abs() < 0.01, "cam {cam_mb}");
        assert!((sram_mb - 1.12).abs() < 0.01, "sram {sram_mb}");
    }

    #[test]
    fn shadow_and_locker_use_least_extra_components() {
        // The paper selects SHADOW and DRAM-Locker for further analysis
        // because their added-structure footprint is smallest.
        let rows = paper_table();
        let mut totals: Vec<(&str, u64)> =
            rows.iter().map(|r| (r.framework, r.total_bytes())).collect();
        totals.sort_by_key(|&(_, b)| b);
        let two_smallest: Vec<&str> = totals.iter().take(2).map(|&(f, _)| f).collect();
        assert!(two_smallest.contains(&"DRAM-Locker"));
        assert!(two_smallest.contains(&"SHADOW"));
    }

    #[test]
    fn spec_arithmetic() {
        let spec = DramSpec::paper();
        assert_eq!(spec.total_rows(), 4 * 1024 * 1024);
        assert_eq!(spec.rows_per_bank(), 256 * 1024);
    }
}
