//! Hydra (Qureshi et al., ISCA 2022): hybrid group + per-row tracking.
//!
//! A small SRAM array keeps one counter per *group* of rows. While a
//! group's aggregate count stays below the group threshold, no per-row
//! state exists. When it crosses, the group "splits": per-row counters
//! for that group are allocated (backed by DRAM in hardware, cached in
//! SRAM) and initialized to the group count, and further activations
//! are tracked exactly. Mitigation fires when a per-row count reaches
//! the row threshold.

use std::collections::HashMap;

use dlk_dram::RowId;

use crate::traits::RowTracker;

/// The Hydra tracker.
///
/// # Example
///
/// ```
/// use dlk_defenses::{Hydra, RowTracker};
/// use dlk_dram::RowId;
///
/// let mut tracker = Hydra::new(8, 4, 10);
/// for _ in 0..9 {
///     assert!(!tracker.on_activate(RowId(0)));
/// }
/// assert!(tracker.on_activate(RowId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Hydra {
    group_size: u64,
    group_threshold: u64,
    row_threshold: u64,
    groups: HashMap<u64, u64>,
    rows: HashMap<RowId, u64>,
    split_groups: u64,
}

impl Hydra {
    /// Creates a tracker: rows are grouped `group_size` at a time; a
    /// group splits at `group_threshold` aggregate activations; a row
    /// mitigates at `row_threshold`.
    pub fn new(group_size: u64, group_threshold: u64, row_threshold: u64) -> Self {
        Self {
            group_size,
            group_threshold,
            row_threshold,
            groups: HashMap::new(),
            rows: HashMap::new(),
            split_groups: 0,
        }
    }

    /// Standard sizing: group threshold at half the row threshold.
    pub fn for_threshold(trh: u64) -> Self {
        Self::new(128, trh / 4, trh / 2)
    }

    fn group_of(&self, row: RowId) -> u64 {
        row.0 / self.group_size
    }

    /// Whether a row's group has split to per-row tracking.
    pub fn is_split(&self, row: RowId) -> bool {
        self.groups.get(&self.group_of(row)).is_some_and(|&c| c >= self.group_threshold)
    }

    /// Groups that have split so far.
    pub fn split_groups(&self) -> u64 {
        self.split_groups
    }
}

impl RowTracker for Hydra {
    fn on_activate(&mut self, row: RowId) -> bool {
        let group = self.group_of(row);
        let group_count = self.groups.entry(group).or_insert(0);
        if *group_count < self.group_threshold {
            *group_count += 1;
            if *group_count == self.group_threshold {
                self.split_groups += 1;
            }
            false
        } else {
            // Per-row phase: the row inherits the (pessimistic) group
            // count on first sight, as in the paper.
            let count = self.rows.entry(row).or_insert(self.group_threshold);
            *count += 1;
            if *count >= self.row_threshold {
                *count = 0;
                true
            } else {
                false
            }
        }
    }

    fn reset_window(&mut self) {
        self.groups.clear();
        self.rows.clear();
    }

    fn storage_bits(&self) -> u64 {
        // SRAM group counters only (per-row counters live in DRAM).
        (self.groups.len().max(1) as u64) * 16
    }

    fn name(&self) -> &'static str {
        "hydra"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_phase_then_row_phase() {
        let mut tracker = Hydra::new(4, 6, 10);
        let row = RowId(1);
        // First 6 activations only move the group counter.
        for _ in 0..6 {
            assert!(!tracker.on_activate(row));
        }
        assert!(tracker.is_split(row));
        // Row inherits count 6; mitigates at 10.
        for _ in 0..3 {
            assert!(!tracker.on_activate(row));
        }
        assert!(tracker.on_activate(row));
    }

    #[test]
    fn sibling_rows_share_group_budget() {
        let mut tracker = Hydra::new(4, 6, 10);
        // Rows 0..3 share group 0: 6 activations split it even spread
        // over different rows.
        for i in 0..6u64 {
            tracker.on_activate(RowId(i % 4));
        }
        assert!(tracker.is_split(RowId(0)));
        assert_eq!(tracker.split_groups(), 1);
    }

    #[test]
    fn distant_rows_do_not_interact() {
        let mut tracker = Hydra::new(4, 6, 10);
        for _ in 0..6 {
            tracker.on_activate(RowId(0));
        }
        assert!(tracker.is_split(RowId(0)));
        assert!(!tracker.is_split(RowId(100)));
    }

    #[test]
    fn mitigation_cannot_be_evaded_below_trh() {
        // A row can never reach group_threshold + row_threshold
        // activations without mitigation.
        let mut tracker = Hydra::for_threshold(1000);
        let row = RowId(42);
        let mut unmitigated = 0u64;
        for _ in 0..5000 {
            if tracker.on_activate(row) {
                unmitigated = 0;
            } else {
                unmitigated += 1;
            }
            assert!(unmitigated < 1000, "row evaded mitigation for {unmitigated} acts");
        }
    }

    #[test]
    fn window_reset() {
        let mut tracker = Hydra::new(4, 2, 4);
        tracker.on_activate(RowId(0));
        tracker.on_activate(RowId(0));
        assert!(tracker.is_split(RowId(0)));
        tracker.reset_window();
        assert!(!tracker.is_split(RowId(0)));
    }
}
