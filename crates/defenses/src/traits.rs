//! The counter-tracker abstraction.
//!
//! Counter-based RowHammer defenses share one skeleton: observe
//! activations, maintain (approximate) per-row counts in some budgeted
//! structure, and fire a mitigation — a targeted row refresh (TRR) of
//! the would-be victims — when a count crosses the mitigation
//! threshold. They differ only in the counting structure, which is what
//! [`RowTracker`] captures. [`CounterDefenseHook`] adapts any tracker
//! into a [`DefenseHook`] so it can be mounted on the controller and
//! compared head-to-head with DRAM-Locker.

use dlk_dram::{DramDevice, RowAddr, RowId};
use dlk_memctrl::{DefenseHook, HookAction, MemRequest};

/// A row-activation tracker with a mitigation threshold.
///
/// Trackers must be `Send`: a mounted [`CounterDefenseHook`] lives
/// inside its channel's controller, and the sharded execution engine
/// steps channels on scoped threads.
pub trait RowTracker: Send {
    /// Observes one activation of `row`; returns `true` if the tracker
    /// demands mitigation of this row's neighbourhood now.
    fn on_activate(&mut self, row: RowId) -> bool;

    /// Resets window state (called once per refresh window).
    fn reset_window(&mut self);

    /// The tracker's SRAM/CAM budget in bits (for overhead reports).
    fn storage_bits(&self) -> u64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Adapts a [`RowTracker`] into a controller [`DefenseHook`] that
/// issues targeted refreshes.
///
/// On mitigation the hook refreshes the aggressor's victims: in the
/// disturbance model this is a [`reset_row`](dlk_dram::HammerTracker::reset_row)
/// of the aggressor's counter (recharging the victims' cells makes the
/// accumulated disturbance harmless, which is equivalent to restarting
/// the aggressor's count).
#[derive(Debug)]
pub struct CounterDefenseHook<T> {
    tracker: T,
    /// Extra latency per request (tracker lookup), cycles.
    pub check_cycles: u64,
    mitigations: u64,
}

impl<T: RowTracker> CounterDefenseHook<T> {
    /// Wraps a tracker.
    pub fn new(tracker: T) -> Self {
        Self { tracker, check_cycles: 1, mitigations: 0 }
    }

    /// The wrapped tracker.
    pub fn tracker(&self) -> &T {
        &self.tracker
    }

    /// Mitigations (targeted refreshes) issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }
}

impl<T: RowTracker + 'static> DefenseHook for CounterDefenseHook<T> {
    fn before_access(
        &mut self,
        _request: &MemRequest,
        _target: RowAddr,
        _dram: &mut DramDevice,
    ) -> HookAction {
        HookAction::Allow
    }

    fn on_activate(&mut self, row: RowAddr, dram: &mut DramDevice) {
        let id = dram.geometry().row_id(row);
        if self.tracker.on_activate(id) {
            dram.hammer_mut().reset_row(id);
            self.mitigations += 1;
        }
    }

    fn check_latency(&self) -> u64 {
        self.check_cycles
    }

    fn name(&self) -> &str {
        self.tracker.name()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    /// A tracker that mitigates every `n`-th activation of any row.
    struct EveryN {
        n: u64,
        count: u64,
    }

    impl RowTracker for EveryN {
        fn on_activate(&mut self, _row: RowId) -> bool {
            self.count += 1;
            self.count.is_multiple_of(self.n)
        }
        fn reset_window(&mut self) {
            self.count = 0;
        }
        fn storage_bits(&self) -> u64 {
            64
        }
        fn name(&self) -> &'static str {
            "every-n"
        }
    }

    #[test]
    fn hook_issues_mitigations_and_resets_hammer_count() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut hook = CounterDefenseHook::new(EveryN { n: 2, count: 0 });
        let row = RowAddr::new(0, 0, 5);
        let id = dram.geometry().row_id(row);
        // Simulate the controller notifying activations.
        for _ in 0..4 {
            dram.hammer_mut();
            // Mirror what the device would count.
            dram.issue(dlk_dram::DramCommand::Act(row)).unwrap();
            dram.issue(dlk_dram::DramCommand::Pre(0)).unwrap();
            hook.on_activate(row, &mut dram);
        }
        assert_eq!(hook.mitigations(), 2);
        // After the last mitigation the hammer count was reset.
        assert_eq!(dram.hammer().count(id), 0);
    }

    #[test]
    fn hook_allows_all_requests() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut hook = CounterDefenseHook::new(EveryN { n: 2, count: 0 });
        let req = MemRequest::read(0, 1);
        assert_eq!(hook.before_access(&req, RowAddr::new(0, 0, 0), &mut dram), HookAction::Allow);
    }
}
