//! SHADOW (Wi et al., HPCA 2023): intra-subarray row shuffling.
//!
//! SHADOW prevents RowHammer by shuffling rows inside a subarray so an
//! attacker can never keep hammering next to its victim. The paper
//! criticizes it as *unintelligent*: it swaps all potential target rows
//! whether or not they are under attack, wasting swap bandwidth.
//!
//! Two faces are provided:
//!
//! - [`Shadow`] — a working [`DefenseHook`] (per-row counters, shuffle
//!   at threshold, logical/physical remap) for end-to-end simulation;
//! - [`ShadowModel`] — the analytical latency/defense-time model used
//!   to regenerate Fig. 7(a)/(b). SHADOW's latency grows with the
//!   number of BFAs (each BFA of `trh_attack` activations forces
//!   `trh_attack / threshold` shuffles) until the *defense threshold*:
//!   once the demanded shuffle bandwidth exceeds the per-window budget,
//!   system integrity is compromised and delay escalation halts.

use serde::{Deserialize, Serialize};

use dlk_dram::{DramDevice, RowAddr, TimingParams};
use dlk_memctrl::{DefenseHook, HookAction, MemRequest};

use crate::rrs::{RowSwapDefense, SwapPolicy};

/// SHADOW as a working defense hook (shuffle = randomized intra-
/// subarray swap at the configured threshold).
#[derive(Debug)]
pub struct Shadow {
    inner: RowSwapDefense,
    threshold: u64,
}

impl Shadow {
    /// Creates a SHADOW hook shuffling rows every `threshold`
    /// activations.
    pub fn new(threshold: u64, seed: u64) -> Self {
        Self { inner: RowSwapDefense::new(SwapPolicy::Randomized, threshold, seed), threshold }
    }

    /// The shuffle threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Shuffles performed.
    pub fn shuffles(&self) -> u64 {
        self.inner.swaps()
    }
}

impl DefenseHook for Shadow {
    fn before_access(
        &mut self,
        request: &MemRequest,
        target: RowAddr,
        dram: &mut DramDevice,
    ) -> HookAction {
        self.inner.before_access(request, target, dram)
    }

    fn on_activate(&mut self, row: RowAddr, dram: &mut DramDevice) {
        self.inner.on_activate(row, dram);
    }

    fn check_latency(&self) -> u64 {
        self.inner.check_latency()
    }

    fn name(&self) -> &str {
        "shadow"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// The analytical SHADOW cost/security model behind Fig. 7.
///
/// # Example
///
/// ```
/// use dlk_defenses::ShadowModel;
/// let shadow1k = ShadowModel::new(1000);
/// let shadow8k = ShadowModel::new(8000);
/// // More frequent shuffling -> more latency for the same attack.
/// let n = 20_000;
/// assert!(shadow1k.latency_per_tref_s(n, 1000) > shadow8k.latency_per_tref_s(n, 1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowModel {
    /// Shuffle threshold (activations between shuffles of a hot row).
    pub threshold: u64,
    /// Cycles per shuffle: a three-copy swap plus remap-table update.
    pub shuffle_cycles: u64,
    /// Fraction of the refresh window SHADOW may spend shuffling before
    /// it can no longer keep up (the defense threshold of Fig. 7(a)).
    pub budget_fraction: f64,
    /// DDR timing used for unit conversion.
    pub timing: TimingParams,
}

impl ShadowModel {
    /// Creates a model with the paper-calibrated constants.
    pub fn new(threshold: u64) -> Self {
        let timing = TimingParams::ddr4_2400();
        Self {
            threshold,
            // 3 RowClone copies + tag bookkeeping.
            shuffle_cycles: 3 * timing.rowclone_cycles() + 64,
            budget_fraction: 0.13,
            timing,
        }
    }

    /// Shuffles demanded by `n_bfa` attacks of `trh_attack` activations
    /// each within one refresh window.
    pub fn shuffles_needed(&self, n_bfa: u64, trh_attack: u64) -> u64 {
        (n_bfa * trh_attack) / self.threshold.max(1)
    }

    /// Maximum shuffles SHADOW can execute per refresh window.
    pub fn shuffle_capacity(&self) -> u64 {
        ((self.timing.trefw as f64 * self.budget_fraction) / self.shuffle_cycles as f64) as u64
    }

    /// The defense threshold: the BFA count beyond which SHADOW cannot
    /// keep up and integrity is compromised.
    pub fn defense_threshold_bfas(&self, trh_attack: u64) -> u64 {
        self.shuffle_capacity() * self.threshold / trh_attack.max(1)
    }

    /// Added latency per refresh window in seconds for `n_bfa` attacks
    /// (saturates at the defense threshold — beyond it the system is
    /// compromised and no further delay accrues, as in Fig. 7(a)).
    pub fn latency_per_tref_s(&self, n_bfa: u64, trh_attack: u64) -> f64 {
        let shuffles = self.shuffles_needed(n_bfa, trh_attack).min(self.shuffle_capacity());
        self.timing.cycles_to_s(shuffles * self.shuffle_cycles)
    }

    /// `true` if `n_bfa` attacks per window exceed what SHADOW can
    /// mitigate.
    pub fn compromised(&self, n_bfa: u64, trh_attack: u64) -> bool {
        self.shuffles_needed(n_bfa, trh_attack) > self.shuffle_capacity()
    }

    /// Expected defense time in days: windows until the attacker's
    /// cumulative success probability exceeds 99%.
    ///
    /// Per window the attacker completes `hammers_per_window / trh`
    /// hammer campaigns; each campaign succeeds if the post-shuffle
    /// placement happens to restore aggressor/victim adjacency, modeled
    /// as `alignment_probability` (two-row placement in a 512-row
    /// subarray ≈ 1/512² ≈ 3.8e-6).
    pub fn defense_time_days(&self, trh_attack: u64) -> f64 {
        let opportunities = (self.timing.hammers_per_window() / trh_attack.max(1)) as f64;
        let alignment_probability = 1.0 / (512.0 * 512.0);
        defense_days(opportunities * alignment_probability, &self.timing)
    }
}

/// Windows during which the attacker's cumulative success probability
/// stays below 1% (the paper's success criterion), converted to days.
pub fn defense_days(p_win: f64, timing: &TimingParams) -> f64 {
    let p = p_win.clamp(1e-300, 0.999_999);
    // 1 - (1-p)^n = 0.01  =>  n = ln(0.99) / ln(1-p)
    let windows = (0.99f64).ln() / (1.0 - p).ln();
    windows * timing.cycles_to_s(timing.trefw) / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    #[test]
    fn hook_shuffles_hot_rows() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut shadow = Shadow::new(4, 1);
        let row = RowAddr::new(0, 0, 10);
        for _ in 0..8 {
            shadow.on_activate(row, &mut dram);
        }
        assert!(shadow.shuffles() >= 1);
    }

    #[test]
    fn latency_ordering_matches_fig7a() {
        // SHADOW-1000 > SHADOW-2000 > SHADOW-4000 > SHADOW-8000 at a
        // fixed attack intensity below everyone's defense threshold.
        let n = 5_000;
        let latencies: Vec<f64> = [1000u64, 2000, 4000, 8000]
            .iter()
            .map(|&t| ShadowModel::new(t).latency_per_tref_s(n, 1000))
            .collect();
        for pair in latencies.windows(2) {
            assert!(pair[0] >= pair[1], "latencies must be non-increasing: {latencies:?}");
        }
        assert!(latencies[0] > 0.0);
    }

    #[test]
    fn latency_saturates_at_defense_threshold() {
        let model = ShadowModel::new(1000);
        let threshold = model.defense_threshold_bfas(1000);
        let below = model.latency_per_tref_s(threshold.saturating_sub(1), 1000);
        let at = model.latency_per_tref_s(threshold, 1000);
        let beyond = model.latency_per_tref_s(threshold * 10, 1000);
        assert!(below <= at);
        assert!((beyond - at).abs() < at * 0.01 + 1e-12, "latency must flatten");
        assert!(model.compromised(threshold * 10, 1000));
        assert!(!model.compromised(threshold / 2, 1000));
    }

    #[test]
    fn defense_time_is_short_relative_to_dram_locker() {
        // Fig. 7(b): SHADOW defends for far less time than DRAM-Locker's
        // 500+ days (tested against the locker model in dlk-xlayer).
        let model = ShadowModel::new(1000);
        let days = model.defense_time_days(1000);
        assert!(days < 100.0, "SHADOW should fail within weeks: {days}");
        assert!(days > 0.0);
    }

    #[test]
    fn higher_attack_threshold_extends_defense() {
        let model = ShadowModel::new(1000);
        assert!(model.defense_time_days(8000) > model.defense_time_days(1000));
    }
}
