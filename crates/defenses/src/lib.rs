//! # dlk-defenses — baseline RowHammer and DNN defenses
//!
//! Every mechanism DRAM-Locker is compared against in the paper:
//!
//! - [`traits`]: the [`RowTracker`] abstraction for counter-based
//!   trackers plus [`CounterDefenseHook`], which turns any tracker into
//!   a memory-controller defense issuing targeted row refreshes (TRR);
//! - [`graphene`]: Graphene's Misra-Gries heavy-hitter tracker;
//! - [`hydra`]: Hydra's hybrid group-counter + per-row-cache tracker;
//! - [`twice`]: TWiCE's pruned time-window counter table;
//! - [`counters`]: the exact counter-per-row tracker and the
//!   counter-tree tracker;
//! - [`rrs`]: Randomized Row-Swap and Secure Row-Swap — swap-based
//!   mitigations with logical-to-physical row remapping;
//! - [`shadow`]: SHADOW — intra-subarray row shuffling, the closest
//!   competitor in the paper (Fig. 7), with both a working hook and the
//!   analytical latency/defense-time model behind Fig. 7(a)/(b);
//! - [`overhead`]: the Table I hardware-overhead arithmetic for all ten
//!   frameworks at the 32 GB / 16-bank DDR4 configuration;
//! - [`pagetable_defenses`]: SoftTRR and PT-Guard — the §II page-table-
//!   only defenses whose narrow scope motivates a general-purpose
//!   lock-table;
//! - [`training`]: the training-based DNN defenses of Table II
//!   (piece-wise clustering, binary weights, capacity scaling, weight
//!   reconstruction, RA-BNN).

pub mod counters;
pub mod graphene;
pub mod hydra;
pub mod overhead;
pub mod pagetable_defenses;
pub mod rrs;
pub mod shadow;
pub mod training;
pub mod traits;
pub mod twice;

pub use crate::counters::{CounterPerRow, CounterTree};
pub use crate::graphene::Graphene;
pub use crate::hydra::Hydra;
pub use crate::overhead::{table1, MemoryKind, Overhead, OverheadRow};
pub use crate::pagetable_defenses::{PtGuard, SoftTrr};
pub use crate::rrs::{RowSwapDefense, SwapPolicy};
pub use crate::shadow::{Shadow, ShadowModel};
pub use crate::training::{baseline_entry, dram_locker_entry, TableTwoEntry};
pub use crate::traits::{CounterDefenseHook, RowTracker};
pub use crate::twice::Twice;
