//! Graphene (Park et al., MICRO 2020): Misra-Gries frequent-item
//! counting.
//!
//! Graphene keeps `k` counters in CAM+SRAM. An activation of a tracked
//! row increments its counter; an untracked row takes a free slot if
//! one exists; otherwise the *spillover counter* increments and any
//! counter equal to the spillover value is reclaimable. A row whose
//! estimated count crosses the mitigation threshold triggers a TRR and
//! its counter resets. Misra-Gries guarantees no row can reach `N/k`
//! activations untracked, giving deterministic protection with a tiny
//! table.

use std::collections::HashMap;

use dlk_dram::RowId;

use crate::traits::RowTracker;

/// The Graphene tracker.
///
/// # Example
///
/// ```
/// use dlk_defenses::{Graphene, RowTracker};
/// use dlk_dram::RowId;
///
/// let mut tracker = Graphene::new(4, 10);
/// for _ in 0..9 {
///     assert!(!tracker.on_activate(RowId(7)));
/// }
/// assert!(tracker.on_activate(RowId(7))); // 10th activation mitigates
/// ```
#[derive(Debug, Clone)]
pub struct Graphene {
    capacity: usize,
    threshold: u64,
    counters: HashMap<RowId, u64>,
    spillover: u64,
}

impl Graphene {
    /// Creates a tracker with `capacity` table entries and the given
    /// mitigation threshold.
    pub fn new(capacity: usize, threshold: u64) -> Self {
        Self { capacity, threshold, counters: HashMap::new(), spillover: 0 }
    }

    /// A configuration following the paper's sizing rule: enough
    /// entries to catch any row reaching `trh` within a refresh window
    /// of `acts_per_window` total activations.
    pub fn for_threshold(trh: u64, acts_per_window: u64) -> Self {
        let capacity = (acts_per_window / (trh / 2).max(1)).max(16) as usize;
        Self::new(capacity, trh / 2)
    }

    /// Estimated count of a row (0 if untracked).
    pub fn estimate(&self, row: RowId) -> u64 {
        self.counters.get(&row).copied().unwrap_or(self.spillover)
    }

    /// Number of occupied table entries.
    pub fn occupancy(&self) -> usize {
        self.counters.len()
    }

    /// The spillover counter.
    pub fn spillover(&self) -> u64 {
        self.spillover
    }
}

impl RowTracker for Graphene {
    fn on_activate(&mut self, row: RowId) -> bool {
        let count = if let Some(count) = self.counters.get_mut(&row) {
            *count += 1;
            *count
        } else if self.counters.len() < self.capacity {
            self.counters.insert(row, self.spillover + 1);
            self.spillover + 1
        } else {
            // Try to reclaim an entry at the spillover level.
            self.spillover += 1;
            let reclaim = self.counters.iter().find(|(_, &c)| c < self.spillover).map(|(&r, _)| r);
            if let Some(victim) = reclaim {
                self.counters.remove(&victim);
                self.counters.insert(row, self.spillover);
                self.spillover
            } else {
                self.spillover
            }
        };
        if count >= self.threshold {
            self.counters.insert(row, 0);
            true
        } else {
            false
        }
    }

    fn reset_window(&mut self) {
        self.counters.clear();
        self.spillover = 0;
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: a row id in CAM (~32 bits) + a counter (~16 bits).
        self.capacity as u64 * (32 + 16)
    }

    fn name(&self) -> &'static str {
        "graphene"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_row_mitigated_at_threshold() {
        let mut tracker = Graphene::new(8, 5);
        let row = RowId(1);
        for i in 1..5 {
            assert!(!tracker.on_activate(row), "activation {i}");
        }
        assert!(tracker.on_activate(row));
        // Counter reset after mitigation: next threshold needs 5 more.
        for _ in 0..4 {
            assert!(!tracker.on_activate(row));
        }
        assert!(tracker.on_activate(row));
    }

    #[test]
    fn no_row_exceeds_threshold_unmitigated_under_adversarial_load() {
        // The Misra-Gries guarantee, exercised with many rows and a
        // small table.
        let mut tracker = Graphene::new(4, 20);
        let mut unmitigated: HashMap<RowId, u64> = HashMap::new();
        for round in 0..2000u64 {
            let row = RowId(round % 13);
            let mitigated = tracker.on_activate(row);
            let entry = unmitigated.entry(row).or_insert(0);
            if mitigated {
                *entry = 0;
            } else {
                *entry += 1;
            }
            // The true unmitigated count may exceed the threshold by at
            // most the spillover error bound (N/k).
            let bound = tracker.threshold + round / 4 + 1;
            assert!(*entry <= bound, "row {row} reached {entry} (bound {bound})");
        }
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut tracker = Graphene::new(4, 1000);
        for i in 0..100 {
            tracker.on_activate(RowId(i));
        }
        assert!(tracker.occupancy() <= 4);
        assert!(tracker.spillover() > 0);
    }

    #[test]
    fn window_reset_clears_state() {
        let mut tracker = Graphene::new(4, 10);
        tracker.on_activate(RowId(1));
        tracker.reset_window();
        assert_eq!(tracker.occupancy(), 0);
        assert_eq!(tracker.spillover(), 0);
    }

    #[test]
    fn sizing_rule_gives_reasonable_capacity() {
        let tracker = Graphene::for_threshold(10_000, 8_000_000);
        assert!(tracker.capacity >= 16);
        assert!(tracker.storage_bits() > 0);
    }
}
