//! Weight-space defense transforms: piece-wise clustering and weight
//! reconstruction.

use dlk_dnn::models::Victim;
use dlk_dnn::quant::QuantizedMlp;

use dlk_attacks::bfa::{BfaConfig, BitSearch};

use super::TableTwoEntry;

/// Piece-wise clustering (He et al., CVPR 2020), modeled as its
/// post-training effect: the clustering penalty pulls weights toward
/// two tight clusters, eliminating the large-magnitude outliers whose
/// MSB flips are BFA's best targets. We apply the equivalent transform
/// — clip each layer's weights to the `quantile` absolute-value
/// quantile and re-quantize — which shrinks the quantization scale and
/// therefore the damage of any single flip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseClustering {
    /// Clip quantile in `(0, 1]` (the paper's penalty strength maps to
    /// roughly 0.9–0.99).
    pub quantile: f64,
}

impl Default for PiecewiseClustering {
    fn default() -> Self {
        Self { quantile: 0.95 }
    }
}

impl PiecewiseClustering {
    /// Applies the clustering transform to a float model and
    /// re-quantizes.
    pub fn apply(&self, victim: &Victim) -> QuantizedMlp {
        let mut float_model = victim.model.to_float_model();
        for layer in float_model.layers_mut() {
            let Some(weight) = layer.weight_mut() else { continue };
            let mut magnitudes: Vec<f32> = weight.as_slice().iter().map(|w| w.abs()).collect();
            magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let index = ((magnitudes.len() - 1) as f64 * self.quantile) as usize;
            let clip = magnitudes[index].max(1e-6);
            for w in weight.as_mut_slice() {
                *w = w.clamp(-clip, clip);
            }
        }
        QuantizedMlp::quantize(&float_model)
    }

    /// Evaluates the Table II row.
    pub fn evaluate(&self, victim: &Victim, sample: usize, budget: usize) -> TableTwoEntry {
        let (x, y) = victim.dataset.test_sample(sample, 0);
        let mut model = self.apply(victim);
        let clean = model.accuracy(&x, &y).expect("shapes consistent");
        let (post, flips) = super::run_bfa_until(&mut model, &x, &y, clean * 0.5, budget);
        TableTwoEntry {
            name: "Piece-wise Clustering".to_owned(),
            clean_acc_pct: clean * 100.0,
            post_attack_acc_pct: post * 100.0,
            bit_flips: flips,
        }
    }
}

/// Weight reconstruction (Li et al., DAC 2020): the defense stores
/// per-layer statistics of the trained weights and, on every inference
/// (modeled: after every attack flip), repairs statistical outliers by
/// clamping quantized values back inside the recorded envelope. An MSB
/// flip turns a small weight into an extreme one, so the repair undoes
/// most of the damage and the attacker needs many more flips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightReconstruction {
    /// Envelope width in standard deviations.
    pub sigmas: f32,
}

impl Default for WeightReconstruction {
    fn default() -> Self {
        Self { sigmas: 2.5 }
    }
}

impl WeightReconstruction {
    /// Records a per-output-row `(mean, std)` envelope of quantized
    /// values for every layer (rows give a much tighter statistical
    /// fingerprint than whole layers).
    pub fn envelope(model: &QuantizedMlp) -> Vec<Vec<(f32, f32)>> {
        model
            .weighted_layers()
            .iter()
            .map(|layer| {
                let layer = layer.matrix().expect("weighted layers carry a matrix");
                let input = layer.in_features().max(1);
                let qs = layer.qweights();
                (0..layer.out_features())
                    .map(|row| {
                        let slice = &qs[row * input..(row + 1) * input];
                        let n = slice.len().max(1) as f32;
                        let mean = slice.iter().map(|&q| q as f32).sum::<f32>() / n;
                        let var = slice.iter().map(|&q| (q as f32 - mean).powi(2)).sum::<f32>() / n;
                        (mean, var.sqrt())
                    })
                    .collect()
            })
            .collect()
    }

    /// Repairs outliers in place; returns how many weights were fixed.
    pub fn repair(&self, model: &mut QuantizedMlp, envelope: &[Vec<(f32, f32)>]) -> usize {
        let mut repaired = 0;
        for (layer_index, layer) in model.weighted_layers_mut().into_iter().enumerate() {
            let layer = layer.matrix_mut().expect("weighted layers carry a matrix");
            let input = layer.in_features().max(1);
            for index in 0..layer.num_weights() {
                let (mean, std) = envelope[layer_index][index / input];
                let low = mean - self.sigmas * std;
                let high = mean + self.sigmas * std;
                let q = layer.weight_byte(index).expect("index in range") as i8 as f32;
                if q < low || q > high {
                    // Reconstruct by clamping into the row envelope —
                    // neutralizes MSB amplification while keeping large
                    // legitimate weights mostly intact.
                    let clamped = q.clamp(low, high).round().clamp(-127.0, 127.0);
                    layer.set_weight_byte(index, clamped as i8 as u8);
                    repaired += 1;
                }
            }
        }
        repaired
    }

    /// Evaluates the Table II row: BFA with repair after every flip.
    pub fn evaluate(&self, victim: &Victim, sample: usize, budget: usize) -> TableTwoEntry {
        let (x, y) = victim.dataset.test_sample(sample, 0);
        let mut model = victim.model.clone();
        let envelope = Self::envelope(&model);
        // Normalize the starting model into the envelope so clean
        // accuracy reflects the defense's own (small) cost.
        self.repair(&mut model, &envelope);
        let clean = model.accuracy(&x, &y).expect("shapes consistent");
        let target = clean * 0.5;
        let mut search = BitSearch::new(BfaConfig::default());
        let mut accuracy = clean;
        let mut flips = 0;
        while accuracy > target && flips < budget {
            let Some(flip) = search.next_flip(&model, &x, &y) else { break };
            model.flip_bit(flip).expect("valid index");
            flips += 1;
            self.repair(&mut model, &envelope);
            accuracy = model.accuracy(&x, &y).expect("shapes consistent");
        }
        TableTwoEntry {
            name: "Weight Reconstruction".to_owned(),
            clean_acc_pct: clean * 100.0,
            post_attack_acc_pct: accuracy * 100.0,
            bit_flips: flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dnn::models;

    #[test]
    fn clustering_shrinks_quantization_scale() {
        let victim = models::victim_tiny(5);
        let clustered = PiecewiseClustering { quantile: 0.9 }.apply(&victim);
        for (orig, new) in victim.model.weighted_layers().iter().zip(clustered.weighted_layers()) {
            assert!(new.scale() <= orig.scale());
        }
    }

    #[test]
    fn clustering_keeps_most_accuracy() {
        let victim = models::victim_tiny(5);
        let (x, y) = victim.dataset.test_sample(48, 0);
        let clustered = PiecewiseClustering::default().apply(&victim);
        let acc = clustered.accuracy(&x, &y).unwrap();
        assert!(acc > victim.clean_accuracy - 0.15, "acc {acc}");
    }

    #[test]
    fn reconstruction_repairs_msb_flip() {
        let victim = models::victim_tiny(6);
        let mut model = victim.model.clone();
        let envelope = WeightReconstruction::envelope(&model);
        let defense = WeightReconstruction::default();
        defense.repair(&mut model, &envelope);
        // Pick a small weight: its MSB flip lands far outside the row
        // envelope and must be repaired.
        let byte_at = |model: &dlk_dnn::QuantizedMlp, i: usize| {
            model.weighted_layers()[0].matrix().unwrap().weight_byte(i).unwrap() as i8
        };
        let weight = (0..model.weighted_layers()[0].num_weights())
            .find(|&i| byte_at(&model, i).abs() <= 8)
            .expect("a small weight exists");
        let flip = dlk_dnn::BitIndex { layer: 0, weight, bit: 7 };
        model.flip_bit(flip).unwrap();
        let flipped = byte_at(&model, weight);
        assert!(flipped.unsigned_abs() >= 120);
        let repaired = defense.repair(&mut model, &envelope);
        assert!(repaired >= 1);
        // The repaired weight is back near the envelope, not at ±128.
        let byte = byte_at(&model, weight);
        assert!(
            byte.unsigned_abs() < 120,
            "repair should pull the weight back (flipped {flipped} -> {byte})"
        );
    }

    #[test]
    fn defended_models_need_more_flips_than_baseline() {
        let victim = models::victim_tiny(7);
        let budget = 60;
        let baseline = super::super::baseline_entry(&victim, 32, budget);
        let reconstruction = WeightReconstruction::default().evaluate(&victim, 32, budget);
        assert!(
            reconstruction.bit_flips >= baseline.bit_flips,
            "reconstruction {} vs baseline {}",
            reconstruction.bit_flips,
            baseline.bit_flips
        );
    }
}
