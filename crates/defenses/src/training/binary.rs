//! Binary-weight defenses: binary quantization and RA-BNN.
//!
//! Binarization stores one bit per weight: `w = ±m` with `m` the
//! layer's mean magnitude. The only fault a memory attacker can inject
//! is a *sign toggle*, whose damage is bounded by `2m` — no MSB
//! amplification exists. RA-BNN (Rakin et al., 2021) additionally grows
//! the network so each individual sign carries even less information;
//! the paper credits it with surviving 1150 flips.

use dlk_dnn::data::SyntheticDataset;
use dlk_dnn::model::Mlp;
use dlk_dnn::models::Victim;
use dlk_dnn::train::{TrainConfig, Trainer};
use dlk_dnn::Tensor;

use super::TableTwoEntry;

/// A binarized MLP: per-layer sign matrices with per-output-row
/// magnitudes (XNOR-Net-style scaling, which retains far more accuracy
/// than a single per-layer magnitude).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryMlp {
    /// Per-layer sign storage (`true` = +m).
    signs: Vec<Vec<bool>>,
    /// Per-layer, per-output-row magnitudes.
    magnitudes: Vec<Vec<f32>>,
    /// Per-layer shapes (out, in) and biases.
    shapes: Vec<(usize, usize)>,
    biases: Vec<Vec<f32>>,
}

impl BinaryMlp {
    /// Binarizes a float model: `w -> sign(w) · mean|w_row|` per
    /// output row.
    pub fn binarize(model: &Mlp) -> Self {
        let mut signs = Vec::new();
        let mut magnitudes = Vec::new();
        let mut shapes = Vec::new();
        let mut biases = Vec::new();
        for layer in model.layers() {
            let weights = layer.weight().as_slice();
            let (out, input) = (layer.out_features(), layer.in_features());
            let row_mags: Vec<f32> = (0..out)
                .map(|row| {
                    let slice = &weights[row * input..(row + 1) * input];
                    slice.iter().map(|w| w.abs()).sum::<f32>() / input.max(1) as f32
                })
                .collect();
            signs.push(weights.iter().map(|&w| w >= 0.0).collect());
            magnitudes.push(row_mags);
            shapes.push((out, input));
            biases.push(layer.bias().to_vec());
        }
        Self { signs, magnitudes, shapes, biases }
    }

    /// Binarizes with straight-through-estimator fine-tuning: the
    /// forward pass uses binarized weights while gradients update the
    /// float master, recovering most of the accuracy binarization
    /// costs (as binary-weight training does in the defense papers).
    pub fn binarize_with_finetune(model: &Mlp, dataset: &SyntheticDataset, epochs: usize) -> Self {
        let mut master = model.clone();
        let n = dataset.train_x.rows();
        let dim = dataset.dim;
        let batch = 32.min(n);
        let stride = (n / batch).max(1);
        let lr = 0.05f32;
        for _ in 0..epochs {
            for start in 0..stride {
                let indices: Vec<usize> = (0..batch).map(|k| (start + k * stride) % n).collect();
                let mut xs = Vec::with_capacity(batch * dim);
                let mut ys = Vec::with_capacity(batch);
                for &index in &indices {
                    xs.extend_from_slice(dataset.train_x.row(index));
                    ys.push(dataset.train_y[index]);
                }
                let x = Tensor::from_vec(batch, dim, xs);
                // Forward/backward through the binarized weights.
                let binary_model = Self::binarize(&master).to_float_model();
                let (_, grads) = binary_model.loss_and_grads(&x, &ys).expect("shapes consistent");
                for (layer, grad) in master.layers_mut().iter_mut().zip(&grads) {
                    layer.apply_grads(grad, lr).expect("shapes consistent");
                }
            }
        }
        Self::binarize(&master)
    }

    /// Total weights (= attackable sign bits).
    pub fn total_weights(&self) -> usize {
        self.signs.iter().map(Vec::len).sum()
    }

    /// Toggles the sign of one weight.
    pub fn flip_sign(&mut self, layer: usize, weight: usize) {
        self.signs[layer][weight] = !self.signs[layer][weight];
    }

    /// Materializes the float model implied by current signs.
    pub fn to_float_model(&self) -> Mlp {
        let mut sizes = vec![self.shapes[0].1];
        sizes.extend(self.shapes.iter().map(|&(out, _)| out));
        let mut model = Mlp::new(&sizes, 0);
        for (index, layer) in model.layers_mut().iter_mut().enumerate() {
            let (out, input) = self.shapes[index];
            let data: Vec<f32> = self.signs[index]
                .iter()
                .enumerate()
                .map(|(flat, &s)| {
                    let m = self.magnitudes[index][flat / input];
                    if s {
                        m
                    } else {
                        -m
                    }
                })
                .collect();
            *layer = dlk_dnn::Linear::from_parts(
                Tensor::from_vec(out, input, data),
                self.biases[index].clone(),
            );
        }
        model
    }

    /// Accuracy on a batch.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f64 {
        self.to_float_model().accuracy(x, labels).expect("shapes consistent")
    }

    /// Greedy most-damaging sign flip (gradient-ranked, like BFA).
    pub fn worst_sign_flip(&self, x: &Tensor, labels: &[usize]) -> Option<(usize, usize)> {
        let float_model = self.to_float_model();
        let (_, grads) = float_model.loss_and_grads(x, labels).expect("shapes consistent");
        let mut best: Option<(f32, (usize, usize))> = None;
        for (layer_index, layer_grads) in grads.iter().enumerate() {
            let input = self.shapes[layer_index].1;
            for (weight_index, &g) in layer_grads.weight.as_slice().iter().enumerate() {
                // Toggling the sign changes w by -2w = ∓2m; first-order
                // loss gain is g * delta.
                let m = self.magnitudes[layer_index][weight_index / input];
                let w = if self.signs[layer_index][weight_index] { m } else { -m };
                let gain = g * (-2.0 * w);
                if gain > 0.0 && best.is_none_or(|(b, _)| gain > b) {
                    best = Some((gain, (layer_index, weight_index)));
                }
            }
        }
        best.map(|(_, index)| index)
    }
}

/// The binary-weight defense of Table II.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryWeight;

impl BinaryWeight {
    /// Evaluates the Table II row: greedy sign-flip attack on the
    /// binarized model.
    ///
    /// # Panics
    ///
    /// Panics if `victim` is not an MLP victim — the Table II
    /// training-time baselines binarize/regrow dense layers and are
    /// evaluated on the paper's MLP stand-ins, not the CNN victims.
    pub fn evaluate(&self, victim: &Victim, sample: usize, budget: usize) -> TableTwoEntry {
        let (x, y) = victim.dataset.test_sample(sample, 0);
        let mut model = BinaryMlp::binarize_with_finetune(
            &victim.model.to_mlp().expect("Table II defenses evaluate the MLP victims"),
            &victim.dataset,
            20,
        );
        evaluate_binary("Binary Weight", &mut model, &victim.dataset, &x, &y, budget)
    }
}

/// RA-BNN: binarization plus capacity growth (hidden layers widened by
/// `growth`), retrained briefly to recover accuracy.
#[derive(Debug, Clone, Copy)]
pub struct RaBnn {
    /// Hidden-width multiplier.
    pub growth: usize,
}

impl Default for RaBnn {
    fn default() -> Self {
        Self { growth: 4 }
    }
}

impl RaBnn {
    /// Evaluates the Table II row.
    ///
    /// # Panics
    ///
    /// Panics if `victim` is not an MLP victim (see
    /// [`BinaryWeight::evaluate`]).
    pub fn evaluate(&self, victim: &Victim, sample: usize, budget: usize) -> TableTwoEntry {
        let (x, y) = victim.dataset.test_sample(sample, 0);
        // Grow hidden layers and retrain a float model, then binarize.
        let base = victim.model.to_mlp().expect("Table II defenses evaluate the MLP victims");
        let mut sizes = vec![base.in_features()];
        for layer in &base.layers()[..base.num_layers() - 1] {
            sizes.push(layer.out_features() * self.growth);
        }
        sizes.push(base.num_classes());
        let mut grown = Mlp::new(&sizes, 99);
        let config = TrainConfig { epochs: 60, ..TrainConfig::default() };
        Trainer::new(config).fit(&mut grown, &victim.dataset);
        let mut model = BinaryMlp::binarize_with_finetune(&grown, &victim.dataset, 20);
        evaluate_binary("RA-BNN", &mut model, &victim.dataset, &x, &y, budget)
    }
}

fn evaluate_binary(
    name: &str,
    model: &mut BinaryMlp,
    dataset: &SyntheticDataset,
    x: &Tensor,
    labels: &[usize],
    budget: usize,
) -> TableTwoEntry {
    let clean = model.accuracy(x, labels);
    let target = clean * 0.5;
    let _ = dataset;
    let mut accuracy = clean;
    let mut flips = 0;
    while accuracy > target && flips < budget {
        let Some((layer, weight)) = model.worst_sign_flip(x, labels) else { break };
        model.flip_sign(layer, weight);
        flips += 1;
        accuracy = model.accuracy(x, labels);
    }
    TableTwoEntry {
        name: name.to_owned(),
        clean_acc_pct: clean * 100.0,
        post_attack_acc_pct: accuracy * 100.0,
        bit_flips: flips,
    }
}

/// The capacity-scaling defense (Model Capacity ×16 in Table II):
/// widen hidden layers, retrain, attack with standard BFA.
#[derive(Debug, Clone, Copy)]
pub struct CapacityScale {
    /// Hidden-width multiplier (16x parameters ≈ 4x width for an MLP).
    pub width_factor: usize,
}

impl Default for CapacityScale {
    fn default() -> Self {
        Self { width_factor: 4 }
    }
}

impl CapacityScale {
    /// Evaluates the Table II row.
    ///
    /// # Panics
    ///
    /// Panics if `victim` is not an MLP victim (see
    /// [`BinaryWeight::evaluate`]).
    pub fn evaluate(&self, victim: &Victim, sample: usize, budget: usize) -> TableTwoEntry {
        let (x, y) = victim.dataset.test_sample(sample, 0);
        let base = victim.model.to_mlp().expect("Table II defenses evaluate the MLP victims");
        let mut sizes = vec![base.in_features()];
        for layer in &base.layers()[..base.num_layers() - 1] {
            sizes.push(layer.out_features() * self.width_factor);
        }
        sizes.push(base.num_classes());
        let mut grown = Mlp::new(&sizes, 55);
        let config = TrainConfig { epochs: 60, ..TrainConfig::default() };
        Trainer::new(config).fit(&mut grown, &victim.dataset);
        let mut model = dlk_dnn::QuantizedMlp::quantize(&grown);
        let clean = model.accuracy(&x, &y).expect("shapes consistent");
        let (post, flips) = super::run_bfa_until(&mut model, &x, &y, clean * 0.5, budget);
        TableTwoEntry {
            name: format!("Model Capacity x{}", self.width_factor * self.width_factor),
            clean_acc_pct: clean * 100.0,
            post_attack_acc_pct: post * 100.0,
            bit_flips: flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dnn::models;

    #[test]
    fn binarize_roundtrip_shapes() {
        let victim = models::victim_tiny(8);
        let binary = BinaryMlp::binarize(
            &victim.model.to_mlp().expect("Table II defenses evaluate the MLP victims"),
        );
        assert_eq!(binary.total_weights(), victim.model.total_weights());
        let float_model = binary.to_float_model();
        assert_eq!(float_model.num_classes(), 4);
    }

    #[test]
    fn binary_model_keeps_useful_accuracy() {
        let victim = models::victim_tiny(8);
        let (x, y) = victim.dataset.test_sample(48, 0);
        let binary = BinaryMlp::binarize(
            &victim.model.to_mlp().expect("Table II defenses evaluate the MLP victims"),
        );
        let acc = binary.accuracy(&x, &y);
        assert!(
            acc > victim.dataset.chance_accuracy() * 1.5,
            "binary accuracy {acc} too close to chance"
        );
    }

    #[test]
    fn sign_flip_toggles() {
        let victim = models::victim_tiny(8);
        let mut binary = BinaryMlp::binarize(
            &victim.model.to_mlp().expect("Table II defenses evaluate the MLP victims"),
        );
        let before = binary.signs[0][0];
        binary.flip_sign(0, 0);
        assert_ne!(binary.signs[0][0], before);
    }

    #[test]
    fn binary_defense_survives_more_flips_than_baseline() {
        let victim = models::victim_tiny(9);
        let budget = 50;
        let baseline = super::super::baseline_entry(&victim, 32, budget);
        let binary = BinaryWeight.evaluate(&victim, 32, budget);
        assert!(
            binary.bit_flips >= baseline.bit_flips,
            "binary {} vs baseline {}",
            binary.bit_flips,
            baseline.bit_flips
        );
    }
}
