//! Training-based DNN defenses (Table II).
//!
//! The software-side alternatives the paper compares DRAM-Locker
//! against, each evaluated by running BFA until the model reaches
//! near-chance accuracy (or a flip budget runs out):
//!
//! - baseline: the undefended quantized victim;
//! - [`transforms::PiecewiseClustering`]: clip weight outliers so a
//!   single MSB flip moves a weight less;
//! - [`binary::BinaryWeight`]: binarized weights — a flip can only
//!   toggle a sign, bounding per-flip damage;
//! - capacity scaling: a wider network dilutes per-weight noise;
//! - [`transforms::WeightReconstruction`]: statistical outlier repair
//!   after every flip;
//! - RA-BNN: binarization *and* capacity growth;
//! - DRAM-Locker: the hardware defense — flips never land, accuracy
//!   never moves.
//!
//! All of these trade training cost or clean accuracy for robustness;
//! DRAM-Locker's point in Table II is keeping the baseline's clean
//! accuracy while blocking the attack entirely.

pub mod binary;
pub mod transforms;

use serde::{Deserialize, Serialize};

use dlk_attacks::bfa::{BfaConfig, BitSearch};
use dlk_dnn::models::Victim;
use dlk_dnn::{QuantizedMlp, Tensor};

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableTwoEntry {
    /// Defense name.
    pub name: String,
    /// Accuracy before the attack, percent.
    pub clean_acc_pct: f64,
    /// Accuracy after the attack, percent.
    pub post_attack_acc_pct: f64,
    /// Bit flips performed (or attempted, for DRAM-Locker).
    pub bit_flips: usize,
}

/// Runs BFA on `model` until accuracy falls to `target_acc` or `budget`
/// flips are spent. Returns `(final_accuracy, flips_used)`.
pub fn run_bfa_until(
    model: &mut QuantizedMlp,
    x: &Tensor,
    labels: &[usize],
    target_acc: f64,
    budget: usize,
) -> (f64, usize) {
    let mut search = BitSearch::new(BfaConfig::default());
    let mut accuracy = model.accuracy(x, labels).expect("shapes consistent");
    let mut flips = 0;
    while accuracy > target_acc && flips < budget {
        let Some(flip) = search.next_flip(model, x, labels) else { break };
        model.flip_bit(flip).expect("search returns valid indices");
        flips += 1;
        accuracy = model.accuracy(x, labels).expect("shapes consistent");
    }
    (accuracy, flips)
}

/// Evaluates the undefended baseline.
pub fn baseline_entry(victim: &Victim, sample: usize, budget: usize) -> TableTwoEntry {
    let (x, y) = victim.dataset.test_sample(sample, 0);
    let mut model = victim.model.clone();
    let clean = model.accuracy(&x, &y).expect("shapes consistent");
    // Robustness metric: flips needed to halve the model's own clean
    // accuracy (insensitive to differing clean baselines across
    // defenses; see EXPERIMENTS.md).
    let (post, flips) = run_bfa_until(&mut model, &x, &y, clean * 0.5, budget);
    TableTwoEntry {
        name: "Baseline".to_owned(),
        clean_acc_pct: clean * 100.0,
        post_attack_acc_pct: post * 100.0,
        bit_flips: flips,
    }
}

/// Evaluates DRAM-Locker's row: the attack is blocked in hardware, so
/// after `budget` *attempted* flips the accuracy equals the clean
/// accuracy.
pub fn dram_locker_entry(victim: &Victim, sample: usize, attempted: usize) -> TableTwoEntry {
    let (x, y) = victim.dataset.test_sample(sample, 0);
    let clean = victim.model.accuracy(&x, &y).expect("shapes consistent") * 100.0;
    TableTwoEntry {
        name: "DRAM-Locker".to_owned(),
        clean_acc_pct: clean,
        post_attack_acc_pct: clean,
        bit_flips: attempted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dnn::models;

    #[test]
    fn baseline_collapses_within_budget() {
        let victim = models::victim_tiny(3);
        let entry = baseline_entry(&victim, 32, 40);
        assert!(entry.post_attack_acc_pct < entry.clean_acc_pct);
        assert!(entry.bit_flips > 0);
    }

    #[test]
    fn locker_preserves_clean_accuracy() {
        let victim = models::victim_tiny(3);
        let entry = dram_locker_entry(&victim, 32, 1150);
        assert_eq!(entry.clean_acc_pct, entry.post_attack_acc_pct);
        assert_eq!(entry.bit_flips, 1150);
    }

    #[test]
    fn run_bfa_until_respects_budget() {
        let victim = models::victim_tiny(4);
        let (x, y) = victim.dataset.test_sample(16, 0);
        let mut model = victim.model.clone();
        let (_, flips) = run_bfa_until(&mut model, &x, &y, 0.0, 3);
        assert!(flips <= 3);
    }
}
