//! Randomized Row-Swap (RRS) and Secure Row-Swap (SRS).
//!
//! Swap-based mitigation (Saileshwar et al., ASPLOS 2022; Woo et al.,
//! 2022): when a row's activation count crosses the swap threshold, its
//! *data* is swapped with a randomly chosen row and the controller's
//! logical-to-physical row remap is updated. The attacker keeps
//! hammering the same logical address, but the physical row behind it
//! changed — the accumulated disturbance no longer lands next to the
//! victim data.
//!
//! The defense mounts as a [`DefenseHook`]: `before_access` redirects
//! logical rows through the remap; `on_activate` counts physical-row
//! activations and triggers swaps.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

use dlk_dram::{DramDevice, RowAddr, RowId};
use dlk_memctrl::{DefenseHook, HookAction, MemRequest};

/// Which swap-based scheme to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapPolicy {
    /// RRS: swap at `threshold` with a uniformly random partner row of
    /// the same subarray.
    Randomized,
    /// SRS: like RRS but with a lower effective threshold (the scheme
    /// swaps proactively for security-critical rows, trading more
    /// swaps for earlier relocation).
    Secure,
}

impl SwapPolicy {
    fn effective_threshold(&self, threshold: u64) -> u64 {
        match self {
            SwapPolicy::Randomized => threshold,
            SwapPolicy::Secure => (threshold / 2).max(1),
        }
    }
}

/// The RRS/SRS defense hook.
///
/// # Example
///
/// ```
/// use dlk_defenses::{RowSwapDefense, SwapPolicy};
/// let defense = RowSwapDefense::new(SwapPolicy::Randomized, 512, 7);
/// assert_eq!(defense.swaps(), 0);
/// ```
#[derive(Debug)]
pub struct RowSwapDefense {
    policy: SwapPolicy,
    threshold: u64,
    /// Logical row -> physical row (sparse; identity when absent).
    remap: HashMap<RowId, RowAddr>,
    /// Physical row -> logical row (sparse inverse).
    inverse: HashMap<RowId, RowAddr>,
    counts: HashMap<RowId, u64>,
    swaps: u64,
    rng: StdRng,
}

impl RowSwapDefense {
    /// Creates a defense swapping at `threshold` activations.
    pub fn new(policy: SwapPolicy, threshold: u64, seed: u64) -> Self {
        Self {
            policy,
            threshold,
            remap: HashMap::new(),
            inverse: HashMap::new(),
            counts: HashMap::new(),
            swaps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Where a logical row currently resolves.
    pub fn resolve(&self, logical: RowAddr, dram: &DramDevice) -> RowAddr {
        let id = dram.geometry().row_id(logical);
        self.remap.get(&id).copied().unwrap_or(logical)
    }

    fn logical_of(&self, physical: RowAddr, dram: &DramDevice) -> RowAddr {
        let id = dram.geometry().row_id(physical);
        self.inverse.get(&id).copied().unwrap_or(physical)
    }

    fn swap_away(&mut self, physical: RowAddr, dram: &mut DramDevice) {
        let geometry = *dram.geometry();
        // Pick a random partner row in the same subarray (not itself,
        // not the buffer row we use for the 3-copy swap).
        let buffer_row = geometry.rows_per_subarray - 1;
        let mut partner_row = physical.row;
        for _ in 0..16 {
            let candidate = self.rng.random_range(0..geometry.rows_per_subarray - 1);
            if candidate != physical.row {
                partner_row = candidate;
                break;
            }
        }
        if partner_row == physical.row {
            return;
        }
        let partner = RowAddr::new(physical.bank, physical.subarray, partner_row);
        let buffer = RowAddr::new(physical.bank, physical.subarray, buffer_row);
        if dram.swap_rows(physical, partner, buffer).is_err() {
            return;
        }
        // The swap rewrites all three rows through the sense amps and,
        // as in the RRS paper, is paired with a targeted refresh of
        // their neighbourhoods — the accumulated disturbance of the
        // relocated aggressor is neutralized.
        let geometry_ids = [
            dram.geometry().row_id(physical),
            dram.geometry().row_id(partner),
            dram.geometry().row_id(buffer),
        ];
        for id in geometry_ids {
            dram.hammer_mut().reset_row(id);
        }
        // Update the remap: whoever pointed at `physical` now points at
        // `partner` and vice versa.
        let logical_a = self.logical_of(physical, dram);
        let logical_b = self.logical_of(partner, dram);
        let geometry = *dram.geometry();
        let ida = geometry.row_id(logical_a);
        let idb = geometry.row_id(logical_b);
        self.remap.insert(ida, partner);
        self.remap.insert(idb, physical);
        self.inverse.insert(geometry.row_id(partner), logical_a);
        self.inverse.insert(geometry.row_id(physical), logical_b);
        self.counts.remove(&geometry.row_id(physical));
        self.counts.remove(&geometry.row_id(partner));
        self.swaps += 1;
    }
}

impl DefenseHook for RowSwapDefense {
    fn before_access(
        &mut self,
        _request: &MemRequest,
        target: RowAddr,
        dram: &mut DramDevice,
    ) -> HookAction {
        let resolved = self.resolve(target, dram);
        if resolved == target {
            HookAction::Allow
        } else {
            HookAction::Redirect(resolved)
        }
    }

    fn on_activate(&mut self, row: RowAddr, dram: &mut DramDevice) {
        let id = dram.geometry().row_id(row);
        let count = self.counts.entry(id).or_insert(0);
        *count += 1;
        if *count >= self.policy.effective_threshold(self.threshold) {
            self.swap_away(row, dram);
        }
    }

    fn check_latency(&self) -> u64 {
        1 // remap table lookup
    }

    fn name(&self) -> &str {
        match self.policy {
            SwapPolicy::Randomized => "rrs",
            SwapPolicy::Secure => "srs",
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    fn setup(threshold: u64) -> (RowSwapDefense, DramDevice) {
        let defense = RowSwapDefense::new(SwapPolicy::Randomized, threshold, 3);
        (defense, DramDevice::new(DramConfig::tiny_for_tests()))
    }

    #[test]
    fn no_remap_before_threshold() {
        let (mut defense, mut dram) = setup(10);
        let row = RowAddr::new(0, 0, 5);
        let req = MemRequest::read(0, 1);
        assert_eq!(defense.before_access(&req, row, &mut dram), HookAction::Allow);
    }

    #[test]
    fn crossing_threshold_swaps_and_redirects() {
        let (mut defense, mut dram) = setup(4);
        let row = RowAddr::new(0, 0, 5);
        dram.write_row(row, &[0x5A; 64]).unwrap();
        for _ in 0..4 {
            defense.on_activate(row, &mut dram);
        }
        assert_eq!(defense.swaps(), 1);
        let req = MemRequest::read(0, 1);
        let action = defense.before_access(&req, row, &mut dram);
        let HookAction::Redirect(new_row) = action else {
            panic!("expected redirect after swap, got {action:?}");
        };
        assert_ne!(new_row, row);
        // The data followed the swap.
        assert_eq!(dram.read_row(new_row).unwrap(), vec![0x5A; 64]);
    }

    #[test]
    fn displaced_row_also_redirects() {
        let (mut defense, mut dram) = setup(2);
        let hot = RowAddr::new(0, 0, 5);
        defense.on_activate(hot, &mut dram);
        defense.on_activate(hot, &mut dram);
        let partner = defense.resolve(hot, &dram);
        assert_ne!(partner, hot);
        // The partner's logical address must now resolve to `hot`.
        assert_eq!(defense.resolve(partner, &dram), hot);
    }

    #[test]
    fn srs_swaps_earlier_than_rrs() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut srs = RowSwapDefense::new(SwapPolicy::Secure, 8, 3);
        let mut rrs = RowSwapDefense::new(SwapPolicy::Randomized, 8, 3);
        let row = RowAddr::new(0, 1, 5);
        for _ in 0..4 {
            srs.on_activate(row, &mut dram);
            rrs.on_activate(row, &mut dram);
        }
        assert_eq!(srs.swaps(), 1);
        assert_eq!(rrs.swaps(), 0);
    }

    #[test]
    fn hammer_counter_restarts_after_swap() {
        // The security property: after relocation, the physical row the
        // attacker now activates starts from a fresh hammer count.
        let (mut defense, mut dram) = setup(4);
        let row = RowAddr::new(0, 0, 5);
        for _ in 0..4 {
            dram.issue(dlk_dram::DramCommand::Act(row)).unwrap();
            dram.issue(dlk_dram::DramCommand::Pre(0)).unwrap();
            defense.on_activate(row, &mut dram);
        }
        let new_phys = defense.resolve(row, &dram);
        let id = dram.geometry().row_id(new_phys);
        // Swap AAPs hammered rows too, but the relocated row's count is
        // far below the attacker's accumulated 4.
        assert!(dram.hammer().count(id) <= 2);
    }
}
