//! Page-table-specific defenses cited in §II: SoftTRR and PT-Guard.
//!
//! Both protect *only* the page tables — which is exactly the paper's
//! point: they leave weight rows exposed to plain BFA, while
//! DRAM-Locker's lock-table covers any row the user registers.
//!
//! - **SoftTRR** (Zhang et al., USENIX ATC 2022): software tracks
//!   activations of rows adjacent to PTE rows and issues a targeted
//!   refresh when a count crosses its threshold. Modeled as a
//!   [`DefenseHook`] with a scoped counter table.
//! - **PT-Guard** (Saxena et al., DSN 2023): a MAC over each PTE is
//!   embedded in the entry's unused bits; on every page walk the MAC is
//!   recomputed and checked, *detecting* (not preventing) corruption.

use std::collections::{HashMap, HashSet};

use dlk_dram::{DramDevice, RowAddr, RowId};
use dlk_memctrl::{AddressMapper, DefenseHook, HookAction, MemRequest, PageTable, Pte};

/// SoftTRR: software-tracked targeted row refresh for page-table rows.
#[derive(Debug)]
pub struct SoftTrr {
    /// Rows adjacent to PTE rows (the tracked aggressor candidates).
    tracked: HashSet<RowId>,
    counts: HashMap<RowId, u64>,
    threshold: u64,
    refreshes: u64,
}

impl SoftTrr {
    /// Creates a SoftTRR instance tracking the aggressor-candidate
    /// rows of `table`'s PTE rows, refreshing at `threshold`.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors from locating the PTE rows.
    pub fn new(
        table: &PageTable,
        mapper: &AddressMapper,
        threshold: u64,
    ) -> Result<Self, dlk_memctrl::MemCtrlError> {
        let geometry = mapper.geometry();
        let mut tracked = HashSet::new();
        for pte_row in table.pte_rows(mapper)? {
            for offset in [-2i64, -1, 1, 2] {
                if let Some(neighbor) = pte_row.neighbor(offset, geometry) {
                    tracked.insert(geometry.row_id(neighbor));
                }
            }
        }
        Ok(Self { tracked, counts: HashMap::new(), threshold, refreshes: 0 })
    }

    /// Targeted refreshes issued.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Number of tracked rows.
    pub fn tracked_rows(&self) -> usize {
        self.tracked.len()
    }
}

impl DefenseHook for SoftTrr {
    fn before_access(
        &mut self,
        _request: &MemRequest,
        _target: RowAddr,
        _dram: &mut DramDevice,
    ) -> HookAction {
        HookAction::Allow
    }

    fn on_activate(&mut self, row: RowAddr, dram: &mut DramDevice) {
        let id = dram.geometry().row_id(row);
        if !self.tracked.contains(&id) {
            return; // SoftTRR only watches page-table neighbourhoods.
        }
        let count = self.counts.entry(id).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            *count = 0;
            dram.hammer_mut().reset_row(id);
            self.refreshes += 1;
        }
    }

    fn check_latency(&self) -> u64 {
        0 // software path, off the critical DRAM timing
    }

    fn name(&self) -> &str {
        "softtrr"
    }
}

/// PT-Guard: MAC-protected page-table entries.
///
/// The MAC is an 8-bit keyed hash of `(vpn, pfn, valid)` stored
/// alongside the entry (the real design splits it across unused PTE
/// bits). [`PtGuard::verify`] recomputes it on a page walk and reports
/// corruption.
#[derive(Debug, Clone)]
pub struct PtGuard {
    key: u64,
    macs: HashMap<u64, u8>,
    detections: u64,
}

impl PtGuard {
    /// Creates a PT-Guard with a device key.
    pub fn new(key: u64) -> Self {
        Self { key, macs: HashMap::new(), detections: 0 }
    }

    fn mac(&self, vpn: u64, pte: Pte) -> u8 {
        // An 8-bit keyed mix (stand-in for the paper's truncated MAC).
        let mut x = self
            .key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(vpn)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(pte.encode());
        x ^= x >> 31;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 32)) as u8
    }

    /// Signs the entry after a legitimate update.
    pub fn sign(&mut self, vpn: u64, pte: Pte) {
        let mac = self.mac(vpn, pte);
        self.macs.insert(vpn, mac);
    }

    /// Verifies the entry on a page walk. Returns `true` if intact.
    pub fn verify(&mut self, vpn: u64, pte: Pte) -> bool {
        let expected = self.macs.get(&vpn).copied();
        let intact = expected == Some(self.mac(vpn, pte));
        if !intact {
            self.detections += 1;
        }
        intact
    }

    /// Corruptions detected so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_attacks::hammer::{HammerConfig, HammerDriver};
    use dlk_attacks::pta::{PtaAttack, PtaConfig};
    use dlk_memctrl::{MemCtrlConfig, MemoryController, PageTableConfig};

    fn setup_table(ctrl: &mut MemoryController) -> PageTable {
        let table =
            PageTable::new(PageTableConfig { page_size: 256, base_phys: 16 * 64, num_pages: 16 });
        let mapper = *ctrl.mapper();
        table.map(ctrl.dram_mut(), &mapper, 3, 8).expect("map");
        table
    }

    #[test]
    fn softtrr_stops_pta_hammering() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let table = setup_table(&mut ctrl);
        let mapper = *ctrl.mapper();
        let soft_trr = SoftTrr::new(&table, &mapper, 8).expect("rows map");
        assert!(soft_trr.tracked_rows() > 0);
        ctrl.set_hook(Box::new(soft_trr));
        let attack = PtaAttack::new(PtaConfig {
            pfn_bit: 1,
            hammer: HammerConfig { max_activations: 10_000, check_interval: 8 },
        });
        let outcome = attack.execute(&mut ctrl, &table, 3).expect("attack runs");
        assert!(!outcome.redirected, "{outcome:?}");
    }

    #[test]
    fn softtrr_does_not_protect_weight_rows() {
        // The paper's "general purpose" argument: page-table defenses
        // leave data rows exposed.
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let table = setup_table(&mut ctrl);
        let mapper = *ctrl.mapper();
        let soft_trr = SoftTrr::new(&table, &mapper, 8).expect("rows map");
        ctrl.set_hook(Box::new(soft_trr));
        // Hammer an ordinary data row far from the page table.
        let victim = RowAddr::new(1, 1, 20);
        let driver = HammerDriver::new(HammerConfig { max_activations: 4_000, check_interval: 8 });
        let outcome = driver.hammer_bit(&mut ctrl, victim, 9).expect("campaign");
        assert!(outcome.flipped, "SoftTRR must not stop a weight-row BFA: {outcome:?}");
    }

    #[test]
    fn ptguard_detects_pfn_corruption() {
        let mut guard = PtGuard::new(0x5EED);
        let pte = Pte { pfn: 8, valid: true };
        guard.sign(3, pte);
        assert!(guard.verify(3, pte));
        let corrupted = Pte { pfn: 8 ^ 2, valid: true };
        assert!(!guard.verify(3, corrupted));
        assert_eq!(guard.detections(), 1);
    }

    #[test]
    fn ptguard_detects_live_pta() {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        let table = setup_table(&mut ctrl);
        let mapper = *ctrl.mapper();
        let mut guard = PtGuard::new(7);
        let clean = table.read_pte(ctrl.dram(), &mapper, 3).expect("pte");
        guard.sign(3, clean);
        let attack = PtaAttack::new(PtaConfig {
            pfn_bit: 1,
            hammer: HammerConfig { max_activations: 10_000, check_interval: 8 },
        });
        let outcome = attack.execute(&mut ctrl, &table, 3).expect("attack runs");
        assert!(outcome.redirected);
        // The next page walk flags the corruption — detection, not
        // prevention.
        let walked = table.read_pte(ctrl.dram(), &mapper, 3).expect("pte");
        assert!(!guard.verify(3, walked));
    }

    #[test]
    fn ptguard_keys_matter() {
        let mut a = PtGuard::new(1);
        let mut b = PtGuard::new(2);
        let pte = Pte { pfn: 5, valid: true };
        a.sign(0, pte);
        // A MAC signed under key 1 does not verify under key 2.
        b.macs.clone_from(&a.macs);
        assert!(!b.verify(0, pte));
    }
}
