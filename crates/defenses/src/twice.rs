//! TWiCE (Lee et al., ISCA 2019): time-window counters with pruning.
//!
//! TWiCE keeps a counter table in SRAM/CAM and exploits the fact that a
//! dangerous aggressor must sustain a high activation *rate* across the
//! whole refresh window. The window is divided into pruning intervals;
//! at each interval boundary, entries whose count is below a growing
//! "benign" line (`interval_index × prune_rate`) are evicted — they can
//! no longer reach the threshold in time. Rows that survive long enough
//! and cross the threshold are mitigated.

use std::collections::HashMap;

use dlk_dram::RowId;

use crate::traits::RowTracker;

/// The TWiCE tracker.
///
/// # Example
///
/// ```
/// use dlk_defenses::{Twice, RowTracker};
/// use dlk_dram::RowId;
///
/// let mut tracker = Twice::new(8, 100, 10);
/// for _ in 0..7 {
///     assert!(!tracker.on_activate(RowId(3)));
/// }
/// assert!(tracker.on_activate(RowId(3)));
/// ```
#[derive(Debug, Clone)]
pub struct Twice {
    threshold: u64,
    prune_interval: u64,
    prune_rate: u64,
    counters: HashMap<RowId, u64>,
    activations_in_interval: u64,
    intervals_elapsed: u64,
    pruned: u64,
}

impl Twice {
    /// Creates a tracker mitigating at `threshold`, pruning every
    /// `prune_interval` activations entries below the benign line that
    /// grows by `prune_rate` per interval.
    pub fn new(threshold: u64, prune_interval: u64, prune_rate: u64) -> Self {
        Self {
            threshold,
            prune_interval,
            prune_rate,
            counters: HashMap::new(),
            activations_in_interval: 0,
            intervals_elapsed: 0,
            pruned: 0,
        }
    }

    /// Standard sizing for a RowHammer threshold.
    pub fn for_threshold(trh: u64) -> Self {
        Self::new(trh / 2, trh, trh / 64)
    }

    /// Live table entries.
    pub fn occupancy(&self) -> usize {
        self.counters.len()
    }

    /// Entries pruned so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    fn maybe_prune(&mut self) {
        if self.activations_in_interval < self.prune_interval {
            return;
        }
        self.activations_in_interval = 0;
        self.intervals_elapsed += 1;
        let line = self.intervals_elapsed * self.prune_rate;
        let before = self.counters.len();
        self.counters.retain(|_, &mut count| count >= line);
        self.pruned += (before - self.counters.len()) as u64;
    }
}

impl RowTracker for Twice {
    fn on_activate(&mut self, row: RowId) -> bool {
        self.activations_in_interval += 1;
        let count = self.counters.entry(row).or_insert(0);
        *count += 1;
        let mitigate = *count >= self.threshold;
        if mitigate {
            self.counters.remove(&row);
        }
        self.maybe_prune();
        mitigate
    }

    fn reset_window(&mut self) {
        self.counters.clear();
        self.activations_in_interval = 0;
        self.intervals_elapsed = 0;
    }

    fn storage_bits(&self) -> u64 {
        self.counters.len().max(1) as u64 * (32 + 16)
    }

    fn name(&self) -> &'static str {
        "twice"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_row_mitigated() {
        let mut tracker = Twice::new(10, 1000, 1);
        let row = RowId(5);
        for _ in 0..9 {
            assert!(!tracker.on_activate(row));
        }
        assert!(tracker.on_activate(row));
    }

    #[test]
    fn cold_rows_get_pruned() {
        let mut tracker = Twice::new(1000, 50, 10);
        // 50 distinct rows activated once each: all below the benign
        // line at the first pruning.
        for i in 0..50u64 {
            tracker.on_activate(RowId(i));
        }
        assert!(tracker.pruned() >= 49, "pruned {}", tracker.pruned());
        assert!(tracker.occupancy() <= 1);
    }

    #[test]
    fn sustained_attacker_survives_pruning() {
        let mut tracker = Twice::new(100, 40, 1);
        let aggressor = RowId(9);
        let mut mitigated = false;
        // Aggressor activates at a high rate amid background noise.
        for round in 0..130u64 {
            if tracker.on_activate(aggressor) {
                mitigated = true;
                break;
            }
            tracker.on_activate(RowId(1000 + round)); // background
        }
        assert!(mitigated, "sustained aggressor must be caught");
    }

    #[test]
    fn window_reset_clears_all() {
        let mut tracker = Twice::new(10, 100, 1);
        tracker.on_activate(RowId(1));
        tracker.reset_window();
        assert_eq!(tracker.occupancy(), 0);
    }
}
