//! Front end 2: the scenario-spec semantic analyzer (`dlk check`).
//!
//! Parsing a `.dlk` file already rejects syntax errors; this pass
//! rejects specs that parse but cannot mean what their author wanted —
//! a victim homed on a channel the engine does not have, a duplicate
//! label silently shadowing a sweep row, a budget that can never fire,
//! a bit-flip attack aimed at a victim with no model. Findings use the
//! same [`Report`]/rule-code machinery as the source linter, with
//! spans resolved back to the record lines of the spec file (or a
//! `<catalog:NAME>` pseudo-file for catalog entries, which have no
//! file).

use dlk_sim::{AttackSpec, ScenarioSpec, SimError};

use crate::diag::{Diagnostic, Report, RuleCode, Severity};

/// Budgets above these bounds are almost certainly a typo'd unit
/// (warnings, not errors — someone may really mean them).
const ABSURD_ACTIVATIONS: u64 = 1_000_000_000;
const ABSURD_ITERATIONS: usize = 100_000;

/// Which record of a spec a finding anchors to; the front ends map
/// this back to a file span (or to the whole entry for catalog specs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Record {
    Label,
    Budget,
    EvalBatch,
    Target,
    Victim(usize),
    Attack,
    Defense(usize),
}

/// One semantic finding, before span resolution.
struct Finding {
    code: RuleCode,
    severity: Severity,
    record: Record,
    message: String,
}

impl Finding {
    fn error(code: RuleCode, record: Record, message: String) -> Self {
        Self { code, severity: Severity::Error, record, message }
    }

    fn warning(code: RuleCode, record: Record, message: String) -> Self {
        Self { code, severity: Severity::Warning, record, message }
    }
}

/// The semantic rules (DLK101–DLK105) over one parsed spec.
fn check_spec(spec: &ScenarioSpec) -> Vec<Finding> {
    let mut findings = Vec::new();
    let channels = spec.engine.channels;

    // DLK101: every home channel must exist on the engine.
    for (at, (_, home)) in spec.victims.iter().enumerate() {
        if *home >= channels {
            findings.push(Finding::error(
                RuleCode::Dlk101,
                Record::Victim(at),
                format!(
                    "victim home={home} out of range: engine '{}' has {channels} channel{}",
                    spec.engine,
                    if channels == 1 { "" } else { "s" }
                ),
            ));
        }
    }
    if let Some(AttackSpec::WeightFetch { channel, .. }) = &spec.attack {
        if *channel >= channels {
            findings.push(Finding::error(
                RuleCode::Dlk101,
                Record::Attack,
                format!(
                    "weight-fetch channel={channel} out of range: engine '{}' has {channels} channel{}",
                    spec.engine,
                    if channels == 1 { "" } else { "s" }
                ),
            ));
        }
    }

    // DLK103: budgets must be able to fire, and plausibly sized.
    let budget = &spec.budget;
    for (field, value) in [
        ("activations", budget.max_activations),
        ("check", budget.check_interval),
        ("iterations", budget.iterations as u64),
    ] {
        if value == 0 {
            findings.push(Finding::error(
                RuleCode::Dlk103,
                Record::Budget,
                format!("budget {field}=0: the attack loop would never run"),
            ));
        }
    }
    if spec.eval_batch == 0 {
        findings.push(Finding::error(
            RuleCode::Dlk103,
            Record::EvalBatch,
            "eval-batch 0: accuracy would be measured on no samples".to_string(),
        ));
    }
    if budget.max_activations > ABSURD_ACTIVATIONS {
        findings.push(Finding::warning(
            RuleCode::Dlk103,
            Record::Budget,
            format!(
                "budget activations={} exceeds {ABSURD_ACTIVATIONS}: likely a unit typo",
                budget.max_activations
            ),
        ));
    }
    if budget.iterations > ABSURD_ITERATIONS {
        findings.push(Finding::warning(
            RuleCode::Dlk103,
            Record::Budget,
            format!(
                "budget iterations={} exceeds {ABSURD_ITERATIONS}: likely a unit typo",
                budget.iterations
            ),
        ));
    }

    // DLK104: the target index must name a deployed victim, and
    // model-space attacks need a model there.
    let target_valid = spec.target < spec.victims.len();
    if spec.attack.is_some() && !spec.victims.is_empty() && !target_valid {
        findings.push(Finding::error(
            RuleCode::Dlk104,
            Record::Target,
            format!(
                "target {} out of range: spec deploys {} victim{}",
                spec.target,
                spec.victims.len(),
                if spec.victims.len() == 1 { "" } else { "s" }
            ),
        ));
    }
    let target_model = spec.victims.get(spec.target).and_then(|(victim, _)| victim.model_kind());
    if let Some(attack) = &spec.attack {
        let needs_model = matches!(
            attack,
            AttackSpec::BfaHammer { .. }
                | AttackSpec::ProgressiveBfa { .. }
                | AttackSpec::RandomFlip { .. }
        );
        if needs_model && target_valid && target_model.is_none() {
            findings.push(Finding::error(
                RuleCode::Dlk104,
                Record::Attack,
                format!(
                    "attack {} flips model weight bits, but target {} is a raw row span",
                    attack.token(),
                    spec.target
                ),
            ));
        }
        if let AttackSpec::ProgressiveBfa { config, .. } = attack {
            if config.candidates_per_layer == 0 {
                let pool = target_model
                    .map(|kind| {
                        format!(
                            " ({} has {} weighted layers)",
                            kind.token(),
                            kind.weighted_layers()
                        )
                    })
                    .unwrap_or_default();
                findings.push(Finding::error(
                    RuleCode::Dlk104,
                    Record::Attack,
                    format!("progressive-bfa candidates=0: no bits per weighted layer{pool}"),
                ));
            }
            if let Some([lo, hi]) = config.bits_considered {
                if lo > hi || hi > 7 {
                    findings.push(Finding::error(
                        RuleCode::Dlk104,
                        Record::Attack,
                        format!("progressive-bfa bits={lo},{hi}: weights are 8-bit (bits 0..=7)"),
                    ));
                }
            }
        }
    }

    // DLK105: a defense stack mounts each mitigation at most once.
    for (at, defense) in spec.defenses.iter().enumerate() {
        if spec.defenses[..at].iter().any(|earlier| earlier.name() == defense.name()) {
            findings.push(Finding::error(
                RuleCode::Dlk105,
                Record::Defense(at),
                format!("defense '{}' mounted twice in the stack", defense.name()),
            ));
        }
    }

    findings
}

/// Line index of one spec chunk inside a list file: resolves a
/// [`Record`] to the `line:col` of its record line.
struct ChunkSpans<'a> {
    lines: &'a [&'a str],
    /// 1-based inclusive line range of the chunk.
    from: usize,
    to: usize,
}

impl ChunkSpans<'_> {
    /// The `nth` record line (0-based) whose first token is `key`,
    /// with the column of its first character; falls back to the
    /// chunk's first line.
    fn record(&self, key: &str, nth: usize) -> (usize, usize) {
        let mut seen = 0usize;
        for line in self.from..=self.to.min(self.lines.len()) {
            let raw = self.lines[line - 1];
            if raw.split_whitespace().next() == Some(key) {
                if seen == nth {
                    let col = raw.len() - raw.trim_start().len() + 1;
                    return (line, col);
                }
                seen += 1;
            }
        }
        (self.from, 1)
    }

    fn span(&self, record: Record) -> (usize, usize) {
        match record {
            Record::Label => self.record("label", 0),
            Record::Budget => self.record("budget", 0),
            Record::EvalBatch => self.record("eval-batch", 0),
            Record::Target => self.record("target", 0),
            Record::Victim(at) => self.record("victim", at),
            Record::Attack => self.record("attack", 0),
            Record::Defense(at) => self.record("defense", at),
        }
    }
}

/// Analyzes the text of one `.dlk` spec (or spec list) file.
/// `file` is the path reported in spans.
///
/// # Errors
///
/// Returns [`SimError::SpecParse`] when the text does not parse at
/// all — syntax errors precede semantic analysis.
pub fn analyze_text(file: &str, text: &str) -> Result<Report, SimError> {
    let specs = ScenarioSpec::list_from_text_with_lines(text)?;
    let lines: Vec<&str> = text.lines().collect();
    let mut report = Report::new();
    report.files_scanned = 1;

    let mut chunk_ends = Vec::with_capacity(specs.len());
    for at in 0..specs.len() {
        let end = specs.get(at + 1).map_or(lines.len(), |(next_start, _)| next_start - 1);
        chunk_ends.push(end);
    }

    // DLK102: labels must be unique within a list file (a duplicate
    // silently shadows a sweep row in results keyed by label).
    for (at, (_, spec)) in specs.iter().enumerate() {
        let earlier = specs[..at].iter().any(|(_, other)| other.label == spec.label);
        if earlier {
            let spans = ChunkSpans { lines: &lines, from: specs[at].0, to: chunk_ends[at] };
            let (line, col) = spans.span(Record::Label);
            report.push(Diagnostic::error(
                RuleCode::Dlk102,
                file,
                line,
                col,
                format!("duplicate label '{}' in spec list", spec.label),
            ));
        }
    }

    for (at, (start, spec)) in specs.iter().enumerate() {
        let spans = ChunkSpans { lines: &lines, from: *start, to: chunk_ends[at] };
        for finding in check_spec(spec) {
            let (line, col) = spans.span(finding.record);
            report.push(Diagnostic {
                code: finding.code,
                severity: finding.severity,
                file: file.to_string(),
                line,
                col,
                message: finding.message,
            });
        }
    }
    report.sort();
    Ok(report)
}

/// Analyzes an already-parsed spec with no backing file (catalog
/// entries): findings anchor to `file` at line 0.
pub fn analyze_spec(file: &str, spec: &ScenarioSpec) -> Report {
    let mut report = Report::new();
    report.files_scanned = 1;
    for finding in check_spec(spec) {
        report.push(Diagnostic {
            code: finding.code,
            severity: finding.severity,
            file: file.to_string(),
            line: 0,
            col: 0,
            message: finding.message,
        });
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_sim::{DefenseSpec, VictimSpec};

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_spec_has_no_findings() {
        let report = analyze_text("a.dlk", &ScenarioSpec::new("clean").to_text()).unwrap();
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn dlk101_flags_home_channel_beyond_engine() {
        let spec = ScenarioSpec {
            victims: vec![(VictimSpec::row(20, 0xA5), 3)],
            ..ScenarioSpec::new("bad-home")
        };
        let report = analyze_text("a.dlk", &spec.to_text()).unwrap();
        assert_eq!(codes(&report), ["DLK101"]);
        let diag = &report.diagnostics[0];
        assert!(diag.message.contains("home=3"), "{diag:?}");
        // Anchored at the victim record line.
        let line_text = spec.to_text().lines().nth(diag.line - 1).unwrap().to_string();
        assert!(line_text.starts_with("victim"), "{line_text}");
    }

    #[test]
    fn dlk102_flags_duplicate_labels() {
        let mut text = ScenarioSpec::new("same").to_text();
        text.push_str(&ScenarioSpec::new("other").to_text());
        text.push_str(&ScenarioSpec::new("same").to_text());
        let report = analyze_text("list.dlk", &text).unwrap();
        assert_eq!(codes(&report), ["DLK102"]);
        // Anchored in the *third* chunk.
        let expected =
            text.lines().count() - text.lines().rev().position(|l| l == "label same").unwrap();
        assert_eq!(report.diagnostics[0].line, expected);
    }

    #[test]
    fn dlk103_zero_budget_is_an_error_and_huge_budget_a_warning() {
        let mut spec = ScenarioSpec::new("budget");
        spec.budget.max_activations = 0;
        let report = analyze_text("a.dlk", &spec.to_text()).unwrap();
        assert_eq!(codes(&report), ["DLK103"]);
        assert_eq!(report.errors(), 1);

        let mut spec = ScenarioSpec::new("budget");
        spec.budget.max_activations = ABSURD_ACTIVATIONS + 1;
        let report = analyze_text("a.dlk", &spec.to_text()).unwrap();
        assert_eq!(codes(&report), ["DLK103"]);
        assert_eq!((report.errors(), report.warnings()), (0, 1));
    }

    #[test]
    fn dlk104_flags_target_out_of_range() {
        let spec = ScenarioSpec {
            victims: vec![(VictimSpec::row(20, 0xA5), 0)],
            attack: Some(AttackSpec::Hammer { bit: 7 }),
            target: 2,
            ..ScenarioSpec::new("target")
        };
        let report = analyze_text("a.dlk", &spec.to_text()).unwrap();
        assert_eq!(codes(&report), ["DLK104"]);
        assert!(report.diagnostics[0].message.contains("out of range"));
    }

    #[test]
    fn dlk104_flags_bfa_against_a_rowspan_victim() {
        let spec = ScenarioSpec {
            victims: vec![(VictimSpec::row(20, 0xA5), 0)],
            attack: Some(AttackSpec::RandomFlip { seed: 1 }),
            ..ScenarioSpec::new("bfa-rows")
        };
        let report = analyze_text("a.dlk", &spec.to_text()).unwrap();
        assert_eq!(codes(&report), ["DLK104"]);
        assert!(report.diagnostics[0].message.contains("raw row span"));
    }

    #[test]
    fn dlk105_flags_duplicate_mitigations() {
        let spec = ScenarioSpec {
            defenses: vec![DefenseSpec::graphene(64, 8), DefenseSpec::graphene(128, 16)],
            ..ScenarioSpec::new("dup-defense")
        };
        let report = analyze_text("a.dlk", &spec.to_text()).unwrap();
        assert_eq!(codes(&report), ["DLK105"]);
        // rrs and srs are different mitigations, not duplicates.
        let spec = ScenarioSpec {
            defenses: vec![DefenseSpec::rrs(800, 1), DefenseSpec::srs(800, 1)],
            ..ScenarioSpec::new("swap-pair")
        };
        assert!(analyze_text("a.dlk", &spec.to_text()).unwrap().diagnostics.is_empty());
    }

    #[test]
    fn catalog_entries_analyze_without_a_file() {
        for entry in dlk_sim::catalog() {
            let report = analyze_spec(&format!("<catalog:{}>", entry.name), &entry.spec);
            assert_eq!(report.errors(), 0, "{}: {:?}", entry.name, report.diagnostics);
        }
    }

    #[test]
    fn syntax_errors_precede_semantics() {
        let err = analyze_text("a.dlk", "label x\nbogus record\n").unwrap_err();
        assert!(matches!(err, SimError::SpecParse { line: 2, .. }), "{err}");
    }
}
