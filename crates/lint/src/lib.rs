//! `dlk-lint`: static analysis for the DRAM-Locker workspace.
//!
//! Two front ends share one diagnostics core ([`diag`]):
//!
//! 1. The **source linter** ([`rules`], surfaced as the `dlk-lint`
//!    binary): a hand-rolled lexer ([`lexer`]) walks the workspace's
//!    Rust sources and enforces the repo invariants — hot-path
//!    panic-freedom (DLK001), the obs layer's relaxed-only atomic
//!    policy (DLK002), the deterministic crates' no-wall-clock /
//!    no-ambient-RNG guarantee (DLK003), and spec-codec
//!    exhaustiveness across both text directions (DLK004).
//! 2. The **spec analyzer** ([`analyze`], surfaced as `dlk check`):
//!    semantic validation of parsed
//!    [`ScenarioSpec`](dlk_sim::ScenarioSpec)s without running them —
//!    channel ranges, duplicate labels, degenerate budgets, target
//!    indices, duplicate mitigations (DLK101–DLK105).
//!
//! Both run in CI as hard gates (`dlk-lint --deny`, `dlk check
//! specs/`). Findings carry stable rule codes and `file:line:col`
//! spans, render as an aligned text listing, and export as a
//! schema-v2 JSON document (`kind: "lint"`) via [`dlk_obs::json`].
//! Any finding can be waived in place with
//! `// dlk-lint: allow(CODE): reason`.

pub mod analyze;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use diag::{Diagnostic, Report, RuleCode, Severity};

/// Usage text for the `dlk-lint` binary.
pub const USAGE: &str = "\
usage: dlk-lint [ROOT] [--deny] [--report FILE]
       dlk-lint --verify-report FILE

Lints the workspace rooted at ROOT (default: current directory).

  --deny                 exit 1 when any error-severity finding remains
  --report FILE          also write the findings as a schema-v2 JSON document
  --verify-report FILE   parse FILE with the schema-v2 reader and check
                         it is a lint report (CI artifact self-check)
";

/// Entry point for the `dlk-lint` binary: parses `args` (without the
/// program name) and returns the process exit code — 0 clean, 1 for
/// denied findings or a failed report verification, 2 for usage
/// errors.
pub fn run_main(args: Vec<String>) -> i32 {
    let mut root = None;
    let mut deny = false;
    let mut report_path = None;
    let mut verify_path = None;
    let mut at = 0usize;
    while at < args.len() {
        match args[at].as_str() {
            "--deny" => deny = true,
            "--report" | "--verify-report" => {
                let Some(value) = args.get(at + 1) else {
                    eprintln!("dlk-lint: {} needs a file argument\n{USAGE}", args[at]);
                    return 2;
                };
                if args[at] == "--report" {
                    report_path = Some(value.clone());
                } else {
                    verify_path = Some(value.clone());
                }
                at += 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("dlk-lint: unknown flag {flag}\n{USAGE}");
                return 2;
            }
            positional => {
                if root.replace(positional.to_string()).is_some() {
                    eprintln!("dlk-lint: more than one ROOT\n{USAGE}");
                    return 2;
                }
            }
        }
        at += 1;
    }

    if let Some(path) = verify_path {
        return match verify_report(&path) {
            Ok(summary) => {
                println!("{path}: ok ({summary})");
                0
            }
            Err(reason) => {
                eprintln!("dlk-lint: {reason}");
                1
            }
        };
    }

    let root = root.unwrap_or_else(|| ".".to_string());
    let report = match rules::lint_workspace(std::path::Path::new(&root)) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dlk-lint: {root}: {err}");
            return 1;
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = report_path {
        if let Err(err) = report.to_document("workspace").write(&path) {
            eprintln!("dlk-lint: writing {path}: {err}");
            return 1;
        }
    }
    if deny && report.errors() > 0 {
        return 1;
    }
    0
}

/// Parses `path` with the schema-v2 reader and checks it is a lint
/// report; returns a one-line summary of its contents.
fn verify_report(path: &str) -> Result<String, String> {
    let value = dlk_obs::json::parse_file(path)?;
    let kind = value.get("kind").and_then(dlk_obs::json::Value::as_str).unwrap_or("<none>");
    if kind != "lint" {
        return Err(format!("{path}: kind is {kind:?}, expected \"lint\""));
    }
    let summary = value
        .section("summary")
        .first()
        .ok_or_else(|| format!("{path}: missing summary section"))?;
    let count = |key: &str| summary.get(key).and_then(dlk_obs::json::Value::as_u64).unwrap_or(0);
    Ok(format!(
        "{} files, {} errors, {} warnings, {} diagnostics",
        count("files_scanned"),
        count("errors"),
        count("warnings"),
        value.section("diagnostics").len()
    ))
}
