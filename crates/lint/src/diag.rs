//! The diagnostics core shared by both front ends.
//!
//! A [`Diagnostic`] is one finding: a stable [`RuleCode`], a
//! [`Severity`], a `file:line:col` span and a message. A [`Report`]
//! collects them, renders the aligned text listing both front ends
//! print, and exports the schema-v2 JSON document (`kind: "lint"`)
//! that CI uploads as a job artifact — the same
//! [`dlk_obs::json`] writer every other machine-readable artifact in
//! the workspace goes through.

use dlk_obs::json::{escape, number, BuildInfo, Document};

/// Every rule either front end can fire, with a stable code.
///
/// `DLK0xx` are source-linter rules (front end 1, walking `.rs`
/// files); `DLK1xx` are spec-analyzer rules (front end 2, walking
/// parsed [`ScenarioSpec`](dlk_sim::ScenarioSpec)s). Codes are part of
/// the stable interface: suppression comments, CI logs and fixture
/// goldens all name them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleCode {
    /// No `unwrap()` / `expect(` / `panic!` in hot-path modules
    /// outside `#[cfg(test)]`.
    Dlk001,
    /// Atomic-ordering policy: only `Ordering::Relaxed` in
    /// `crates/obs` (the lock-free layer's deliberate policy).
    Dlk002,
    /// Determinism guard: no wall-clock reads, sleeps or non-seeded
    /// RNG construction in the deterministic crates.
    Dlk003,
    /// Codec exhaustiveness: every spec-enum variant must appear in
    /// both the writer and the parser codec regions.
    Dlk004,
    /// Victim home channel (or replay channel) out of range for the
    /// spec's engine configuration.
    Dlk101,
    /// Duplicate labels in a spec list file.
    Dlk102,
    /// Zero (error) or absurd (warning) budget fields.
    Dlk103,
    /// Target index out of range, or a model attack aimed at a victim
    /// that has no model.
    Dlk104,
    /// Duplicate mitigation in a defense stack.
    Dlk105,
}

impl RuleCode {
    /// Every rule, in code order.
    pub const ALL: [RuleCode; 9] = [
        RuleCode::Dlk001,
        RuleCode::Dlk002,
        RuleCode::Dlk003,
        RuleCode::Dlk004,
        RuleCode::Dlk101,
        RuleCode::Dlk102,
        RuleCode::Dlk103,
        RuleCode::Dlk104,
        RuleCode::Dlk105,
    ];

    /// The stable code string (`DLK001`…), as printed and as written
    /// in `// dlk-lint: allow(CODE)` suppression comments.
    pub fn code(self) -> &'static str {
        match self {
            RuleCode::Dlk001 => "DLK001",
            RuleCode::Dlk002 => "DLK002",
            RuleCode::Dlk003 => "DLK003",
            RuleCode::Dlk004 => "DLK004",
            RuleCode::Dlk101 => "DLK101",
            RuleCode::Dlk102 => "DLK102",
            RuleCode::Dlk103 => "DLK103",
            RuleCode::Dlk104 => "DLK104",
            RuleCode::Dlk105 => "DLK105",
        }
    }

    /// One-line rule summary (the README rule table's text).
    pub fn summary(self) -> &'static str {
        match self {
            RuleCode::Dlk001 => "no unwrap()/expect(/panic! in hot-path modules outside tests",
            RuleCode::Dlk002 => "only Ordering::Relaxed in crates/obs (lock-free layer policy)",
            RuleCode::Dlk003 => "no wall clock, sleeps or non-seeded RNGs in deterministic crates",
            RuleCode::Dlk004 => "every spec-enum variant present in both codec directions",
            RuleCode::Dlk101 => "victim home / replay channel within the engine's channel count",
            RuleCode::Dlk102 => "labels unique within a spec list",
            RuleCode::Dlk103 => "budget fields non-zero and plausibly sized",
            RuleCode::Dlk104 => "attack target index valid for the deployed victims",
            RuleCode::Dlk105 => "no duplicate mitigation in a defense stack",
        }
    }

    /// Parses a code string (`DLK001`) back to the rule.
    pub fn parse(code: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|rule| rule.code() == code)
    }
}

impl std::fmt::Display for RuleCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is. Only errors fail a `--deny` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never fails the gate.
    Warning,
    /// Invariant violation; fails `--deny`.
    Error,
}

impl Severity {
    /// The rendered tag (`error` / `warning`).
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: RuleCode,
    /// Error or warning.
    pub severity: Severity,
    /// Path of the offending file, workspace-relative with `/`
    /// separators (or a `<catalog:name>` pseudo-path for catalog
    /// entries, which have no file).
    pub file: String,
    /// 1-based line of the finding (0 = whole file).
    pub line: usize,
    /// 1-based column of the finding (0 = whole line).
    pub col: usize,
    /// What is wrong, in one sentence.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(
        code: RuleCode,
        file: impl Into<String>,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Error,
            file: file.into(),
            line,
            col,
            message: message.into(),
        }
    }

    /// A warning-severity finding.
    pub fn warning(
        code: RuleCode,
        file: impl Into<String>,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            file: file.into(),
            line,
            col,
            message: message.into(),
        }
    }

    /// The `file:line:col` span prefix.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

/// An ordered collection of findings plus scan metadata.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings in file/line order (see [`Report::sort`]).
    pub diagnostics: Vec<Diagnostic>,
    /// How many files the producing front end scanned.
    pub files_scanned: usize,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs another report (findings and file counts).
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        self.files_scanned += other.files_scanned;
    }

    /// Sorts findings by file, then line, column and code — the stable
    /// order the goldens pin.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.code).cmp(&(&b.file, b.line, b.col, b.code))
        });
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Renders the aligned text listing: every finding as
    /// `location: severity[CODE] message` with the location column
    /// padded to the widest span, followed by a one-line summary.
    pub fn render_text(&self) -> String {
        let width = self.diagnostics.iter().map(|d| d.location().len()).max().unwrap_or(0);
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{loc:<width$}  {sev}[{code}] {msg}\n",
                loc = d.location(),
                sev = d.severity.tag(),
                code = d.code,
                msg = d.message,
            ));
        }
        out.push_str(&format!(
            "{} file{} scanned: {} error{}, {} warning{}\n",
            self.files_scanned,
            plural(self.files_scanned),
            self.errors(),
            plural(self.errors()),
            self.warnings(),
            plural(self.warnings()),
        ));
        out
    }

    /// The schema-v2 JSON document (`kind: "lint"`): a `summary`
    /// section with the counts and a `diagnostics` section with one
    /// object per finding.
    pub fn to_document(&self, name: &str) -> Document {
        let mut doc = Document::new("lint", name);
        doc.push_object(
            "summary",
            &[
                ("files_scanned", number(self.files_scanned as f64)),
                ("errors", number(self.errors() as f64)),
                ("warnings", number(self.warnings() as f64)),
            ],
        );
        doc.section("diagnostics");
        for d in &self.diagnostics {
            doc.push_object(
                "diagnostics",
                &[
                    ("code", escape(d.code.code())),
                    ("severity", escape(d.severity.tag())),
                    ("file", escape(&d.file)),
                    ("line", number(d.line as f64)),
                    ("col", number(d.col as f64)),
                    ("message", escape(&d.message)),
                ],
            );
        }
        doc
    }

    /// [`Report::to_document`] with a pinned build header, for golden
    /// tests that need a byte-stable render.
    pub fn to_pinned_document(&self, name: &str) -> Document {
        let mut doc = self.to_document(name);
        doc.set_build(BuildInfo::pinned());
        doc
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for rule in RuleCode::ALL {
            assert_eq!(RuleCode::parse(rule.code()), Some(rule));
            assert!(seen.insert(rule.code()), "duplicate code {rule}");
            assert!(!rule.summary().is_empty());
        }
        assert_eq!(RuleCode::parse("DLK999"), None);
    }

    #[test]
    fn render_aligns_locations_and_counts() {
        let mut report = Report::new();
        report.files_scanned = 2;
        report.push(Diagnostic::error(RuleCode::Dlk001, "a/long/path.rs", 10, 5, "bad"));
        report.push(Diagnostic::warning(RuleCode::Dlk103, "b.rs", 1, 1, "meh"));
        report.sort();
        let text = report.render_text();
        assert!(text.contains("a/long/path.rs:10:5  error[DLK001] bad"), "{text}");
        assert!(text.contains("b.rs:1:1"), "{text}");
        assert!(text.contains("2 files scanned: 1 error, 1 warning"), "{text}");
        // The two severity columns start at the same offset.
        let cols: Vec<usize> =
            text.lines().take(2).map(|l| l.find("rror").or(l.find("arning")).unwrap()).collect();
        assert_eq!(cols[0], cols[1], "{text}");
    }

    #[test]
    fn sort_orders_by_file_then_line() {
        let mut report = Report::new();
        report.push(Diagnostic::error(RuleCode::Dlk003, "b.rs", 1, 1, "x"));
        report.push(Diagnostic::error(RuleCode::Dlk001, "a.rs", 9, 1, "x"));
        report.push(Diagnostic::error(RuleCode::Dlk002, "a.rs", 2, 1, "x"));
        report.sort();
        let order: Vec<(&str, usize)> =
            report.diagnostics.iter().map(|d| (d.file.as_str(), d.line)).collect();
        assert_eq!(order, [("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]);
    }

    #[test]
    fn json_document_parses_and_carries_findings() {
        let mut report = Report::new();
        report.files_scanned = 1;
        report.push(Diagnostic::error(RuleCode::Dlk004, "spec.rs", 7, 3, "variant \"X\" missing"));
        let json = report.to_pinned_document("unit").to_json();
        let value = dlk_obs::json::parse(&json).expect("lint report must parse");
        assert_eq!(value.get("kind").unwrap().as_str(), Some("lint"));
        let summary = &value.section("summary")[0];
        assert_eq!(summary.get("errors").unwrap().as_u64(), Some(1));
        let diag = &value.section("diagnostics")[0];
        assert_eq!(diag.get("code").unwrap().as_str(), Some("DLK004"));
        assert_eq!(diag.get("line").unwrap().as_u64(), Some(7));
        assert_eq!(diag.get("message").unwrap().as_str(), Some("variant \"X\" missing"));
    }
}
