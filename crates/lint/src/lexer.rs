//! A hand-rolled Rust lexer — just enough of one for invariant
//! linting.
//!
//! The environment is offline and the workspace vendors no `syn`, so
//! the source rules work on a flat token stream instead of a syntax
//! tree. The lexer's one job is to be *reliable about what is not
//! code*: line comments, nested block comments, doc comments, string
//! literals (plain, byte, raw with any `#` count), char literals and
//! lifetimes are all recognised and excluded from the token stream, so
//! an `unwrap` inside a doc example or an error message can never trip
//! a rule. Comments are kept (with their line spans) for
//! `// dlk-lint: allow(CODE)` suppression scanning, and the token
//! stream is precise enough to find `#[cfg(test)]` regions and match
//! multi-token patterns like `. unwrap (` or `Ordering :: SeqCst`.

/// What a token is: an identifier/keyword, or a single punctuation
/// character. Literals and whitespace never become tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `enum`, `r#match` → `match`).
    Ident(String),
    /// One punctuation character (`.`, `(`, `:`, `#`, ...).
    Punct(char),
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier or punctuation.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            TokenKind::Punct(_) => None,
        }
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct(ch)
    }
}

/// A comment (line or block) with the lines it spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (== `line` for line comments).
    pub end_line: usize,
    /// The comment text, delimiters included.
    pub text: String,
}

/// A lexed source file: the code tokens plus the comments.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments.
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    out: LexedFile,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Self { chars: source.chars().collect(), pos: 0, line: 1, col: 1, out: LexedFile::default() }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }

    fn run(mut self) -> LexedFile {
        while let Some(ch) = self.peek(0) {
            if ch.is_whitespace() {
                self.bump();
            } else if ch == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if ch == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if ch == '"' {
                self.string_literal();
            } else if ch == '\'' {
                self.quote();
            } else if ch == '_' || ch.is_alphabetic() {
                self.ident_or_prefixed_literal();
            } else if ch.is_ascii_digit() {
                self.number_literal();
            } else {
                let (line, col) = (self.line, self.col);
                self.bump();
                self.out.tokens.push(Token { kind: TokenKind::Punct(ch), line, col });
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\n' {
                break;
            }
            text.push(ch);
            self.bump();
        }
        self.out.comments.push(Comment { line, end_line: line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(ch) = self.peek(0) {
            if ch == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if ch == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(ch);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, end_line: self.line, text });
    }

    /// A plain or byte string body, opening quote not yet consumed.
    fn string_literal(&mut self) {
        self.bump(); // opening "
        while let Some(ch) = self.bump() {
            match ch {
                '"' => return,
                '\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
    }

    /// A raw (or raw byte) string: `r`/`br` is already consumed and the
    /// cursor sits on the first `#` or the opening quote.
    fn raw_string_literal(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening "
        while let Some(ch) = self.bump() {
            if ch == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                return;
            }
        }
    }

    /// A `'`: char literal or lifetime.
    fn quote(&mut self) {
        self.bump(); // the '
        match self.peek(0) {
            // Escape: unambiguously a char literal ('\n', '\'', '\u{..}').
            Some('\\') => {
                self.bump(); // the backslash
                self.bump(); // the escaped char (enough for '\'' too)
                while let Some(ch) = self.bump() {
                    if ch == '\'' {
                        break;
                    }
                }
            }
            // Ident-start: 'a' (char) vs 'a / 'static (lifetime). Scan
            // the ident run; a closing quote right after means char.
            Some(ch) if ch == '_' || ch.is_alphabetic() => {
                let mut run = 0usize;
                while matches!(self.peek(run), Some(c) if c == '_' || c.is_alphanumeric()) {
                    run += 1;
                }
                let is_char = self.peek(run) == Some('\'');
                for _ in 0..run {
                    self.bump();
                }
                if is_char {
                    self.bump(); // closing '
                }
            }
            // Any other char: a literal like ' ' or '('.
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }

    fn ident_or_prefixed_literal(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut name = String::new();
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            name.push(self.bump().expect("peeked"));
        }
        // String-literal prefixes: the "ident" was really r"", r#""#,
        // b"", br#""#, or a raw identifier r#name.
        match (name.as_str(), self.peek(0)) {
            ("r" | "br", Some('"')) => return self.raw_string_literal(),
            ("r" | "br", Some('#')) => {
                // r#ident (raw identifier) vs r#"raw string".
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    return self.raw_string_literal();
                }
                if name == "r" && hashes == 1 {
                    self.bump(); // the #
                    let mut raw = String::new();
                    while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                        raw.push(self.bump().expect("peeked"));
                    }
                    self.out.tokens.push(Token { kind: TokenKind::Ident(raw), line, col });
                    return;
                }
            }
            ("b", Some('"')) => return self.string_literal(),
            ("b", Some('\'')) => return self.quote(),
            _ => {}
        }
        self.out.tokens.push(Token { kind: TokenKind::Ident(name), line, col });
    }

    fn number_literal(&mut self) {
        // Digits plus suffixes/prefixes (0x1F, 1_000u64, 1.5e3). A dot
        // is part of the number only when a digit follows, so `1.max()`
        // still tokenizes the method call.
        while let Some(ch) = self.peek(0) {
            let in_number = ch == '_'
                || ch.is_alphanumeric()
                || (ch == '.' && matches!(self.peek(1), Some(c) if c.is_ascii_digit()));
            if !in_number {
                break;
            }
            self.bump();
        }
    }
}

/// The `#[cfg(test)]` line ranges of a token stream: each detected
/// attribute plus the item it covers (to its closing brace, or to the
/// `;` of a braceless item).
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut at = 0usize;
    while at + 6 < tokens.len() {
        let is_cfg_test = tokens[at].is_punct('#')
            && tokens[at + 1].is_punct('[')
            && tokens[at + 2].is_ident("cfg")
            && tokens[at + 3].is_punct('(')
            && tokens[at + 4].is_ident("test")
            && tokens[at + 5].is_punct(')')
            && tokens[at + 6].is_punct(']');
        if !is_cfg_test {
            at += 1;
            continue;
        }
        let start_line = tokens[at].line;
        let mut scan = at + 7;
        // Find where the attributed item ends: the matching close brace
        // of its first block, or a top-level `;` before any brace.
        let mut end_line = start_line;
        let mut depth = 0usize;
        while let Some(token) = tokens.get(scan) {
            if token.is_punct('{') {
                depth += 1;
            } else if token.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end_line = token.line;
                    break;
                }
            } else if token.is_punct(';') && depth == 0 {
                end_line = token.line;
                break;
            }
            end_line = token.line;
            scan += 1;
        }
        regions.push((start_line, end_line));
        at = scan + 1;
    }
    regions
}

/// True when `line` falls inside any of `regions` (inclusive).
pub fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(from, to)| (from..=to).contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source).tokens.iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn comments_and_strings_hide_idents() {
        let source = r##"
            // unwrap in a line comment
            /* unwrap in a /* nested */ block */
            let a = "unwrap() in a string";
            let b = r#"unwrap in a raw "string""#;
            let c = b"unwrap bytes";
            real_ident();
        "##;
        let names = idents(source);
        assert_eq!(names, ["let", "a", "let", "b", "let", "c", "real_ident"]);
        let lexed = lex(source);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("line comment"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let source = "fn f<'a>(x: &'a str) { m('\\'', 'b', '(', b'c'); s('d') }";
        let names = idents(source);
        // Lifetimes vanish with their quote; char literals leave no
        // idents either.
        assert_eq!(names, ["fn", "f", "x", "str", "m", "s"]);
    }

    #[test]
    fn raw_identifiers_unwrap_to_the_word() {
        let names = idents("let r#match = r#\"raw \"s\"\"#;");
        assert_eq!(names, ["let", "match"]);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let names = idents("let x = 1.max(2) + 0x1F + 1_000u64 + 1.5e3;");
        assert_eq!(names, ["let", "x", "max"]);
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  bb");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_regions_cover_the_item() {
        let source = "fn hot() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn cold() {}\n";
        let lexed = lex(source);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, [(2, 5)]);
        assert!(!in_regions(&regions, 1));
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let source = "#[cfg(not(test))]\nmod x {\n fn y() {}\n}\n";
        let lexed = lex(source);
        assert!(test_regions(&lexed.tokens).is_empty());
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let source = "#[cfg(test)]\nuse helper::thing;\nfn hot() {}\n";
        let lexed = lex(source);
        assert_eq!(test_regions(&lexed.tokens), [(1, 2)]);
    }
}
