//! Front end 1: the source linter.
//!
//! Walks the workspace's Rust sources ([`workspace_files`]), lexes
//! each file ([`crate::lexer`]) and enforces the repo invariants as
//! token-pattern rules:
//!
//! - **DLK001** — no `unwrap()` / `expect(` / `panic!` in hot-path
//!   modules (memctrl service path, locker probe/ISA, dram decode,
//!   dnn gemm) outside `#[cfg(test)]`. The service path returns typed
//!   errors; a panic there takes down a whole sweep worker.
//! - **DLK002** — only `Ordering::Relaxed` in `crates/obs`. The obs
//!   layer is deliberately relaxed-only (monotonic counters, no
//!   cross-cell invariants); a stray `SeqCst` RMW on the memctrl hot
//!   path costs more than the metric is worth.
//! - **DLK003** — determinism guard: no `Instant`/`SystemTime`,
//!   `thread::sleep`, or non-seeded RNG construction in the
//!   deterministic crates (dram, memctrl, engine, sim, locker,
//!   defenses), which must stay bit-reproducible across runs and
//!   thread counts.
//! - **DLK004** — codec exhaustiveness: every `AttackSpec` /
//!   `DefenseSpec` / `SpecKind` variant name must appear in both the
//!   `to_text` and `from_text` codec regions, catching the "added a
//!   variant, forgot a codec arm" bug class before a golden file can.
//!
//! `#[cfg(test)]` items are exempt from the token rules, and any
//! finding can be suppressed for its line (or the line below the
//! comment) with `// dlk-lint: allow(CODE): reason`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Report, RuleCode};
use crate::lexer::{self, in_regions, test_regions, Comment, LexedFile, Token};

/// Files on the hot path, where DLK001 applies. Matched by path
/// suffix so a fixture tree mimicking the layout hits the same rules.
const HOT_PATH_FILES: &[&str] = &[
    "crates/memctrl/src/controller.rs",
    "crates/memctrl/src/scheduler.rs",
    "crates/locker/src/locktable.rs",
    "crates/locker/src/isa.rs",
    "crates/dram/src/device.rs",
    "crates/dnn/src/tensor.rs",
];

/// Path fragments marking the relaxed-only obs layer (DLK002).
const OBS_PATHS: &[&str] = &["crates/obs/src/"];

/// Path fragments marking the deterministic crates (DLK003).
const DETERMINISTIC_PATHS: &[&str] = &[
    "crates/dram/src/",
    "crates/memctrl/src/",
    "crates/engine/src/",
    "crates/sim/src/",
    "crates/locker/src/",
    "crates/defenses/src/",
];

/// Atomic orderings DLK002 rejects (`Relaxed` is the policy; the
/// `cmp::Ordering` variants `Less`/`Equal`/`Greater` never match).
const FORBIDDEN_ORDERINGS: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

/// Identifiers that construct a non-seeded RNG (DLK003). Seeded
/// construction (`StdRng::seed_from_u64`) stays legal.
const NONSEEDED_RNG: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// One cross-file codec-exhaustiveness obligation (DLK004): every
/// variant of `enum_name` must be mentioned in some `writers` fn body
/// and in some `parsers` fn body.
struct CodecRule {
    enum_name: &'static str,
    writers: &'static [&'static str],
    parsers: &'static [&'static str],
}

/// The spec codecs under DLK004. `AttackSpec::ReplayTrace` is built by
/// `finish_trace` (trace lines are folded in after the attack record),
/// so the parse region spans both functions.
const CODEC_RULES: &[CodecRule] = &[
    CodecRule {
        enum_name: "AttackSpec",
        writers: &["write_attack"],
        parsers: &["parse_attack", "finish_trace"],
    },
    CodecRule {
        enum_name: "DefenseSpec",
        writers: &["write_defense"],
        parsers: &["parse_defense"],
    },
    CodecRule { enum_name: "SpecKind", writers: &["write_victim"], parsers: &["parse_victim"] },
];

/// Collects every `.rs` file the linter covers, relative to `root`:
/// `src/`, `examples/`, `benches/`, and each crate's `src/`,
/// `examples/` and `benches/`. Test directories are deliberately not
/// walked — the linter's own fixture corpus lives in one. Sorted for
/// deterministic reports.
///
/// # Errors
///
/// Returns any directory-walk I/O error.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src"), root.join("examples"), root.join("benches")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            roots.push(member.join("src"));
            roots.push(member.join("examples"));
            roots.push(member.join("benches"));
        }
    }
    let mut files = Vec::new();
    for dir in roots {
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root`: walk, lex, apply every rule.
///
/// # Errors
///
/// Returns any I/O error from walking or reading sources.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut lexed = Vec::new();
    for path in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        lexed.push((relative_path(root, &path), lexer::lex(&source)));
    }
    Ok(lint_lexed(&lexed))
}

/// `path` relative to `root`, with forward slashes (report-stable
/// across platforms).
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Applies every source rule to pre-lexed files. Paths decide which
/// rules apply (see the path tables above); the report comes back
/// sorted.
pub fn lint_lexed(files: &[(String, LexedFile)]) -> Report {
    let mut report = Report::new();
    report.files_scanned = files.len();
    for (path, lexed) in files {
        let regions = test_regions(&lexed.tokens);
        let mut diags = Vec::new();
        if HOT_PATH_FILES.iter().any(|f| path.ends_with(f)) {
            rule_dlk001(path, &lexed.tokens, &regions, &mut diags);
        }
        if OBS_PATHS.iter().any(|f| path.contains(f)) {
            rule_dlk002(path, &lexed.tokens, &regions, &mut diags);
        }
        if DETERMINISTIC_PATHS.iter().any(|f| path.contains(f)) {
            rule_dlk003(path, &lexed.tokens, &regions, &mut diags);
        }
        let allowed = suppressions(&lexed.comments);
        diags.retain(|d| !suppressed(&allowed, d));
        for diag in diags {
            report.push(diag);
        }
    }
    rule_dlk004(files, &mut report);
    report.sort();
    report
}

/// DLK001: `. unwrap ( )`, `. expect (`, `panic !` outside tests.
fn rule_dlk001(
    path: &str,
    tokens: &[Token],
    regions: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    for (at, token) in tokens.iter().enumerate() {
        if in_regions(regions, token.line) {
            continue;
        }
        let call = |name: &str| {
            at >= 1
                && tokens[at - 1].is_punct('.')
                && token.is_ident(name)
                && tokens.get(at + 1).is_some_and(|t| t.is_punct('('))
        };
        let what = if call("unwrap") {
            "unwrap()"
        } else if call("expect") {
            "expect()"
        } else if token.is_ident("panic") && tokens.get(at + 1).is_some_and(|t| t.is_punct('!')) {
            "panic!"
        } else {
            continue;
        };
        out.push(Diagnostic::error(
            RuleCode::Dlk001,
            path,
            token.line,
            token.col,
            format!("{what} on the hot path: return a typed error instead of aborting the worker"),
        ));
    }
}

/// DLK002: any `Ordering::X` with X stronger than `Relaxed` in obs.
fn rule_dlk002(
    path: &str,
    tokens: &[Token],
    regions: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    for (at, token) in tokens.iter().enumerate() {
        if in_regions(regions, token.line) || !token.is_ident("Ordering") {
            continue;
        }
        let [colon1, colon2, which] = [tokens.get(at + 1), tokens.get(at + 2), tokens.get(at + 3)];
        let path_sep =
            colon1.is_some_and(|t| t.is_punct(':')) && colon2.is_some_and(|t| t.is_punct(':'));
        let Some(which) = which.and_then(Token::ident).filter(|_| path_sep) else { continue };
        if FORBIDDEN_ORDERINGS.contains(&which) {
            let which_token = &tokens[at + 3];
            out.push(Diagnostic::error(
                RuleCode::Dlk002,
                path,
                which_token.line,
                which_token.col,
                format!("Ordering::{which} in crates/obs: the obs layer is Relaxed-only by policy"),
            ));
        }
    }
}

/// DLK003: wall-clock types, sleeps, non-seeded RNGs outside tests.
fn rule_dlk003(
    path: &str,
    tokens: &[Token],
    regions: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    for (at, token) in tokens.iter().enumerate() {
        if in_regions(regions, token.line) {
            continue;
        }
        let Some(name) = token.ident() else { continue };
        let message = if name == "Instant" || name == "SystemTime" {
            format!("wall-clock type `{name}` in a deterministic crate: sim time only")
        } else if name == "sleep" && tokens.get(at + 1).is_some_and(|t| t.is_punct('(')) {
            "thread sleep in a deterministic crate: runs must be schedule-independent".to_string()
        } else if NONSEEDED_RNG.contains(&name) {
            format!("non-seeded RNG `{name}` in a deterministic crate: use StdRng::seed_from_u64")
        } else {
            continue;
        };
        out.push(Diagnostic::error(RuleCode::Dlk003, path, token.line, token.col, message));
    }
}

/// DLK004: every codec enum variant present in both directions.
fn rule_dlk004(files: &[(String, LexedFile)], report: &mut Report) {
    for rule in CODEC_RULES {
        let Some((enum_file, enum_line, variants)) = find_enum(files, rule.enum_name) else {
            continue; // enum not in this tree (partial fixture corpora)
        };
        let suppressed_lines = files
            .iter()
            .find(|(path, _)| path == &enum_file)
            .map(|(_, lexed)| suppressions(&lexed.comments))
            .unwrap_or_default();
        for (direction, fns) in [("to_text", rule.writers), ("from_text", rule.parsers)] {
            let mut bodies = Vec::new();
            for fn_name in fns {
                bodies.extend(fn_bodies(files, fn_name));
            }
            if bodies.is_empty() {
                report.push(Diagnostic::error(
                    RuleCode::Dlk004,
                    &enum_file,
                    enum_line,
                    1,
                    format!(
                        "no {direction} codec region for {}: none of [{}] found",
                        rule.enum_name,
                        fns.join(", ")
                    ),
                ));
                continue;
            }
            for (variant, line, col) in &variants {
                let mentioned = bodies.iter().any(|body| body.iter().any(|t| t.is_ident(variant)));
                if !mentioned {
                    let diag = Diagnostic::error(
                        RuleCode::Dlk004,
                        &enum_file,
                        *line,
                        *col,
                        format!(
                            "{}::{variant} is missing from the {direction} codec ({})",
                            rule.enum_name,
                            fns.join("/")
                        ),
                    );
                    if !suppressed(&suppressed_lines, &diag) {
                        report.push(diag);
                    }
                }
            }
        }
    }
}

/// A variant name with its `(line, col)` position.
type Variant = (String, usize, usize);

/// Finds `enum name { ... }` across all files; returns the file, the
/// declaration line, and each variant with its position.
fn find_enum(files: &[(String, LexedFile)], name: &str) -> Option<(String, usize, Vec<Variant>)> {
    for (path, lexed) in files {
        let tokens = &lexed.tokens;
        for at in 0..tokens.len() {
            if !(tokens[at].is_ident("enum")
                && tokens.get(at + 1).is_some_and(|t| t.is_ident(name))
                && tokens.get(at + 2).is_some_and(|t| t.is_punct('{')))
            {
                continue;
            }
            return Some((path.clone(), tokens[at].line, enum_variants(&tokens[at + 3..])));
        }
    }
    None
}

/// Variant names at depth 0 of an enum body (cursor just past the
/// opening brace): skips `#[...]` attributes, payload groups and
/// discriminants.
fn enum_variants(tokens: &[Token]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut at = 0usize;
    let mut expecting_variant = true;
    let mut depth = 0usize;
    while let Some(token) = tokens.get(at) {
        if depth == 0 {
            if token.is_punct('}') {
                break;
            }
            if token.is_punct('#') && tokens.get(at + 1).is_some_and(|t| t.is_punct('[')) {
                // Skip the whole attribute.
                let mut bracket = 0usize;
                at += 1;
                while let Some(t) = tokens.get(at) {
                    if t.is_punct('[') {
                        bracket += 1;
                    } else if t.is_punct(']') {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    at += 1;
                }
                at += 1;
                continue;
            }
            if expecting_variant {
                if let Some(name) = token.ident() {
                    variants.push((name.to_string(), token.line, token.col));
                    expecting_variant = false;
                }
            } else if token.is_punct(',') {
                expecting_variant = true;
            }
        }
        if token.is_punct('{') || token.is_punct('(') || token.is_punct('[') {
            depth += 1;
        } else if token.is_punct('}') || token.is_punct(')') || token.is_punct(']') {
            depth = depth.saturating_sub(1);
        }
        at += 1;
    }
    variants
}

/// Every body of a function named `name`, across all files, as token
/// slices (first `{` after the signature to its matching `}`).
fn fn_bodies<'a>(files: &'a [(String, LexedFile)], name: &str) -> Vec<&'a [Token]> {
    let mut bodies = Vec::new();
    for (_, lexed) in files {
        let tokens = &lexed.tokens;
        for at in 0..tokens.len() {
            if !(tokens[at].is_ident("fn") && tokens.get(at + 1).is_some_and(|t| t.is_ident(name)))
            {
                continue;
            }
            let Some(open) = (at + 2..tokens.len()).find(|&i| tokens[i].is_punct('{')) else {
                continue;
            };
            let mut depth = 0usize;
            let mut close = open;
            for (i, token) in tokens.iter().enumerate().skip(open) {
                if token.is_punct('{') {
                    depth += 1;
                } else if token.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        close = i;
                        break;
                    }
                }
            }
            bodies.push(&tokens[open..=close]);
        }
    }
    bodies
}

/// A suppression: rule `code` is allowed on lines `from..=to`.
type Suppression = (usize, usize, RuleCode);

/// Parses `dlk-lint: allow(CODE, ...)` comments. Each suppresses its
/// codes on the comment's own lines and the line below (so both
/// trailing and preceding comment styles work).
fn suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut allowed = Vec::new();
    for comment in comments {
        let Some(at) = comment.text.find("dlk-lint: allow(") else { continue };
        let rest = &comment.text[at + "dlk-lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        for code in rest[..close].split(',') {
            if let Some(rule) = RuleCode::parse(code.trim()) {
                allowed.push((comment.line, comment.end_line + 1, rule));
            }
        }
    }
    allowed
}

/// True when `diag` is covered by a suppression for its exact code.
fn suppressed(allowed: &[Suppression], diag: &Diagnostic) -> bool {
    allowed.iter().any(|&(from, to, code)| code == diag.code && (from..=to).contains(&diag.line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint_one(path: &str, source: &str) -> Report {
        lint_lexed(&[(path.to_string(), lex(source))])
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn dlk001_flags_only_hot_path_files() {
        let source = "fn f() { x.unwrap(); }";
        let hot = lint_one("crates/memctrl/src/controller.rs", source);
        assert_eq!(codes(&hot), ["DLK001"]);
        let cold = lint_one("crates/cli/src/lib.rs", source);
        assert!(cold.diagnostics.is_empty());
    }

    #[test]
    fn dlk001_respects_cfg_test() {
        let source = "fn hot() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }";
        let report = lint_one("crates/dram/src/device.rs", source);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn dlk001_sees_through_unwrap_in_strings() {
        let source = "fn f() { log(\"please .unwrap() me\"); }";
        let report = lint_one("crates/locker/src/isa.rs", source);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn dlk002_rejects_strong_orderings_only() {
        let bad = "fn f() { c.fetch_add(1, Ordering::SeqCst); }";
        let report = lint_one("crates/obs/src/metric.rs", bad);
        assert_eq!(codes(&report), ["DLK002"]);
        let relaxed = "fn f() { c.fetch_add(1, Ordering::Relaxed); s.sort_by(|a, b| a.cmp(b)); }";
        assert!(lint_one("crates/obs/src/metric.rs", relaxed).diagnostics.is_empty());
        let cmp = "fn f() -> Ordering { Ordering::Less }";
        assert!(lint_one("crates/obs/src/metric.rs", cmp).diagnostics.is_empty());
    }

    #[test]
    fn dlk003_flags_clock_sleep_and_rng() {
        let source = "fn f() { let t = Instant::now(); thread::sleep(d); let r = thread_rng(); }";
        let report = lint_one("crates/engine/src/shard.rs", source);
        assert_eq!(codes(&report), ["DLK003", "DLK003", "DLK003"]);
        // Seeded construction stays legal.
        let seeded = "fn f() { let r = StdRng::seed_from_u64(7); }";
        assert!(lint_one("crates/engine/src/shard.rs", seeded).diagnostics.is_empty());
    }

    #[test]
    fn suppression_covers_own_line_and_next() {
        let trailing = "fn f() { let t = Instant::now(); } // dlk-lint: allow(DLK003): bench only";
        assert!(lint_one("crates/sim/src/sweep.rs", trailing).diagnostics.is_empty());
        let preceding =
            "// dlk-lint: allow(DLK003): wall clock for progress display\nfn f() { Instant::now(); }";
        assert!(lint_one("crates/sim/src/sweep.rs", preceding).diagnostics.is_empty());
        // A different code is NOT masked.
        let wrong = "fn f() { Instant::now(); } // dlk-lint: allow(DLK001): wrong code";
        assert_eq!(codes(&lint_one("crates/sim/src/sweep.rs", wrong)), ["DLK003"]);
    }

    #[test]
    fn dlk004_finds_the_missing_parse_arm() {
        let spec = "pub enum AttackSpec { Alpha { n: u32 }, Beta(u8), Gamma }\n\
                    fn write_attack(a: &AttackSpec) { match a { AttackSpec::Alpha { .. } => {}, \
                    AttackSpec::Beta(_) => {}, AttackSpec::Gamma => {} } }\n\
                    fn parse_attack(s: &str) { m(AttackSpec::Alpha); m(AttackSpec::Beta); }";
        let report = lint_lexed(&[("crates/sim/src/spec.rs".to_string(), lex(spec))]);
        assert_eq!(codes(&report), ["DLK004"]);
        let diag = &report.diagnostics[0];
        assert!(diag.message.contains("Gamma") && diag.message.contains("from_text"), "{diag:?}");
        assert_eq!(diag.line, 1);
    }

    #[test]
    fn dlk004_spans_multiple_parser_fns() {
        let spec = "pub enum AttackSpec { Alpha, Trace }\n\
                    fn write_attack(a: &AttackSpec) { m(AttackSpec::Alpha); m(AttackSpec::Trace); }\n\
                    fn parse_attack(s: &str) { m(AttackSpec::Alpha); }\n\
                    fn finish_trace(s: &str) { m(AttackSpec::Trace); }";
        let report = lint_lexed(&[("crates/sim/src/spec.rs".to_string(), lex(spec))]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn dlk004_missing_codec_fn_is_an_error_at_the_enum() {
        let spec = "pub enum DefenseSpec { Locker }\n\
                    fn write_defense(d: &DefenseSpec) { m(DefenseSpec::Locker); }";
        let report = lint_lexed(&[("crates/sim/src/spec.rs".to_string(), lex(spec))]);
        assert_eq!(codes(&report), ["DLK004"]);
        assert!(report.diagnostics[0].message.contains("parse_defense"));
    }

    #[test]
    fn enum_variant_extraction_skips_attrs_and_payloads() {
        let lexed = lex("enum E { #[doc = \"x\"] A { inner: Vec<(u8, u8)> }, B = 3, C(Q) }");
        let (_, _, variants) = find_enum(&[("f.rs".to_string(), lexed)], "E").expect("found");
        let names: Vec<&str> = variants.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
