//! The `dlk-lint` binary: argument handling lives in
//! [`dlk_lint::run_main`] so tests can drive it in-process.

fn main() {
    std::process::exit(dlk_lint::run_main(std::env::args().skip(1).collect()));
}
