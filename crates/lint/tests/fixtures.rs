//! Golden-pinned diagnostics over the fixture corpus in
//! `tests/fixtures/`, plus exit-code checks against the real
//! `dlk-lint` binary. Regenerate the goldens after an intentional
//! rule change with:
//!
//! ```text
//! GOLDEN_WRITE=1 cargo test -p dlk-lint --test fixtures
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use dlk_lint::rules::lint_workspace;
use dlk_lint::RuleCode;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Compares `actual` against the committed golden, or rewrites the
/// golden when `GOLDEN_WRITE` is set.
fn golden_check(actual: &str, name: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_default();
    assert_eq!(actual, golden, "golden {name} is stale; rerun with GOLDEN_WRITE=1");
}

#[test]
fn fixture_text_render_matches_golden() {
    let report = lint_workspace(&fixtures_root()).expect("lint fixtures");
    golden_check(&report.render_text(), "fixtures.txt");
}

#[test]
fn fixture_json_report_matches_golden() {
    let report = lint_workspace(&fixtures_root()).expect("lint fixtures");
    golden_check(&report.to_pinned_document("fixtures").to_json(), "fixtures.json");
}

/// The two acceptance-criterion diagnostics, pinned by exact code and
/// span: `Instant::now()` in `crates/engine` and a deleted
/// `parse_attack` arm for an `AttackSpec` variant.
#[test]
fn acceptance_spans_are_pinned() {
    let report = lint_workspace(&fixtures_root()).expect("lint fixtures");
    let find = |file: &str, code: RuleCode| {
        report
            .diagnostics
            .iter()
            .find(|d| d.file == file && d.code == code)
            .unwrap_or_else(|| panic!("no {code} in {file}:\n{}", report.render_text()))
    };

    let instant = find("crates/engine/src/shard.rs", RuleCode::Dlk003);
    assert_eq!((instant.line, instant.col), (6, 28), "Instant::now() span");

    let codec = find("crates/sim/src/spec.rs", RuleCode::Dlk004);
    assert_eq!((codec.line, codec.col), (8, 5), "missing Gamma arm anchors at the variant");
    assert!(codec.message.contains("AttackSpec::Gamma"), "message: {}", codec.message);
    assert!(codec.message.contains("from_text"), "message: {}", codec.message);
}

#[test]
fn fixture_corpus_has_no_warnings_and_known_error_count() {
    let report = lint_workspace(&fixtures_root()).expect("lint fixtures");
    assert_eq!(report.files_scanned, 6);
    assert_eq!(report.warnings(), 0);
    assert_eq!(report.errors(), 10, "\n{}", report.render_text());
}

fn lint_bin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dlk-lint")).args(args).output().expect("spawn dlk-lint")
}

#[test]
fn binary_denies_fixture_corpus() {
    let root = fixtures_root();
    let out = lint_bin(&[root.to_str().unwrap(), "--deny"]);
    assert_eq!(out.status.code(), Some(1), "--deny over fixtures must fail");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for code in ["DLK001", "DLK002", "DLK003", "DLK004"] {
        assert!(stdout.contains(code), "{code} missing from:\n{stdout}");
    }
}

#[test]
fn binary_passes_clean_subtree_and_report_roundtrips() {
    // The cli fixture crate alone is clean: rooted there, the walker
    // sees only `src/lib.rs`, which no rule's path table matches.
    let clean = fixtures_root().join("crates/cli");
    let dir = std::env::temp_dir().join(format!("dlk-lint-report-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("lint-report.json");

    let out = lint_bin(&[clean.to_str().unwrap(), "--deny", "--report", report.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let verify = lint_bin(&["--verify-report", report.to_str().unwrap()]);
    assert_eq!(verify.status.code(), Some(0), "{}", String::from_utf8_lossy(&verify.stderr));
    let stdout = String::from_utf8(verify.stdout).unwrap();
    assert!(stdout.contains("0 errors"), "verify summary: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_usage_error_exits_2() {
    let out = lint_bin(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}
