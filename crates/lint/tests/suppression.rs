//! Property: a `dlk-lint: allow(CODE)` waiver silences a diagnostic
//! if and only if it names that diagnostic's exact rule code — it can
//! never mask a *different* rule on the same line.

use dlk_lint::lexer::lex;
use dlk_lint::rules::lint_lexed;
use dlk_lint::RuleCode;

use proptest::prelude::*;

/// `crates/memctrl/src/controller.rs` is both a hot-path file (DLK001)
/// and inside a deterministic crate (DLK003), so either violation can
/// be planted at the same path.
const FIXTURE_PATH: &str = "crates/memctrl/src/controller.rs";

fn violation(index: usize) -> (&'static str, RuleCode) {
    match index {
        0 => ("let v = queue.pop().unwrap();", RuleCode::Dlk001),
        1 => ("let t = Instant::now();", RuleCode::Dlk003),
        _ => ("std::thread::sleep(pause);", RuleCode::Dlk003),
    }
}

proptest! {
    #[test]
    fn allow_silences_only_its_exact_code(
        planted in 0usize..3,
        allowed in 0usize..9,
        trailing in any::<bool>(),
    ) {
        let (stmt, expected) = violation(planted);
        let allow = RuleCode::ALL[allowed];
        let source = if trailing {
            format!("pub fn f() {{\n    {stmt} // dlk-lint: allow({})\n}}\n", allow.code())
        } else {
            format!(
                "pub fn f() {{\n    // dlk-lint: allow({}): fixture\n    {stmt}\n}}\n",
                allow.code()
            )
        };
        let report = lint_lexed(&[(FIXTURE_PATH.to_owned(), lex(&source))]);
        if allow == expected {
            prop_assert!(
                report.diagnostics.is_empty(),
                "allow({}) must silence {}: {}",
                allow.code(),
                expected.code(),
                report.render_text()
            );
        } else {
            prop_assert_eq!(report.diagnostics.len(), 1);
            prop_assert_eq!(report.diagnostics[0].code, expected);
        }
    }
}
