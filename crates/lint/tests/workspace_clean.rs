//! The meta-test: the real workspace must itself pass `dlk-lint`, and
//! the DLK004 codec rule must actually be watching the real codec —
//! deleting a `parse_attack` arm from the real `spec.rs` has to fire.

use std::path::Path;

use dlk_lint::lexer::lex;
use dlk_lint::rules::{lint_lexed, lint_workspace};
use dlk_lint::RuleCode;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(workspace_root()).expect("lint workspace");
    assert_eq!(report.errors(), 0, "\n{}", report.render_text());
    assert!(report.files_scanned > 100, "only {} files scanned", report.files_scanned);
}

/// Guards against the exhaustiveness rule silently losing sight of the
/// real codec: lint the genuine `crates/sim/src/spec.rs` with one
/// `parse_attack` arm surgically removed and demand a DLK004 anchored
/// at the orphaned variant.
#[test]
fn deleting_a_real_codec_arm_fires_dlk004() {
    let path = workspace_root().join("crates/sim/src/spec.rs");
    let source = std::fs::read_to_string(&path).expect("read real spec.rs");
    let arm = source
        .lines()
        .find(|line| line.trim_start().starts_with("\"hammer\" =>"))
        .expect("spec.rs parse_attack has a hammer arm");
    let mutated = source.replacen(arm, "", 1);
    assert_ne!(mutated, source, "arm removal must change the source");

    let clean = lint_lexed(&[("crates/sim/src/spec.rs".to_owned(), lex(&source))]);
    assert_eq!(
        clean.diagnostics.iter().filter(|d| d.code == RuleCode::Dlk004).count(),
        0,
        "pristine spec.rs must be codec-complete:\n{}",
        clean.render_text()
    );

    let broken = lint_lexed(&[("crates/sim/src/spec.rs".to_owned(), lex(&mutated))]);
    let hit = broken
        .diagnostics
        .iter()
        .find(|d| d.code == RuleCode::Dlk004)
        .unwrap_or_else(|| panic!("no DLK004 after arm removal:\n{}", broken.render_text()));
    assert!(hit.message.contains("AttackSpec::Hammer"), "message: {}", hit.message);
    assert!(hit.line > 0, "diagnostic must carry the variant's span");
}
