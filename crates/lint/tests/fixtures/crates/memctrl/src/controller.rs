//! Fixture: hot-path panic-freedom (DLK001) on a hot-path file that is
//! also inside a deterministic crate. Four findings, two non-findings
//! (string literal, test region), one exact-code waiver, one
//! wrong-code waiver that must NOT mask the diagnostic.

/// Doc comments are invisible to the linter, even with code fences:
/// ```
/// queue.pop().unwrap();
/// ```
pub fn service(queue: &mut Vec<u64>) -> u64 {
    // .unwrap() inside this comment is invisible too.
    let msg = "error strings may say unwrap() freely";
    let first = queue.pop().unwrap();
    let second = queue.pop().expect("fixture");
    if first == 0 {
        panic!("fixture: empty queue");
    }
    // dlk-lint: allow(DLK001): fixture waiver, next line is exempt
    let waived = queue.pop().unwrap();
    let masked = queue.pop().unwrap(); // dlk-lint: allow(DLK003): wrong code
    first + second + waived + masked + msg.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1u64).unwrap();
        None::<u64>.expect("tests may panic");
        panic!("tests may panic");
    }
}
