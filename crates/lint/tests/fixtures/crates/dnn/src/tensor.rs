//! Fixture: `panic!` on the inference hot path (DLK001).

pub fn gemm_tile(rows: usize, cols: usize) -> usize {
    if rows == 0 || cols == 0 {
        panic!("fixture: empty tile");
    }
    rows * cols
}
