//! Fixture: determinism guard (DLK003) in `crates/engine`. Covers the
//! acceptance criterion: adding `Instant::now()` to the engine crate
//! must produce a DLK003 error with the right span.

pub fn shard_elapsed() -> u64 {
    let start = std::time::Instant::now();
    std::thread::sleep(core::time::Duration::from_millis(1));
    start.elapsed().as_nanos() as u64
}

pub fn entropy(seed: u64) -> u64 {
    // Seeded construction is the legal pattern and must not fire:
    let legal = StdRng::seed_from_u64(seed);
    let illegal = thread_rng();
    legal ^ illegal
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_timing_is_fine() {
        let _ = std::time::Instant::now();
    }
}
