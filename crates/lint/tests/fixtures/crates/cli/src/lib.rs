//! Fixture: a crate outside every rule's path table. Nothing here may
//! fire — `unwrap` is only policed on hot-path files, wall clocks only
//! in deterministic crates, orderings only in obs.

pub fn helper(v: Option<u64>) -> u64 {
    let t = std::time::Instant::now();
    v.unwrap() + t.elapsed().as_nanos() as u64
}
