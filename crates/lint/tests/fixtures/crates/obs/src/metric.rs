//! Fixture: the obs layer is Relaxed-only (DLK002). One finding, one
//! exact-code waiver, and `cmp::Ordering` variants that must not fire.

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed);
    counter.fetch_add(1, Ordering::SeqCst);
    // dlk-lint: allow(DLK002): snapshot handoff needs acquire pairing
    counter.load(Ordering::Acquire)
}

pub fn winner(a: u64, b: u64) -> bool {
    // cmp::Ordering, not atomic::Ordering — never a finding.
    matches!(a.cmp(&b), Ordering::Greater | Ordering::Equal)
}
