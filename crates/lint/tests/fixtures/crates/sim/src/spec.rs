//! Fixture: codec exhaustiveness (DLK004). Covers the acceptance
//! criterion: deleting a `parse_attack` arm for one `AttackSpec`
//! variant must produce a DLK004 error anchored at that variant.

pub enum AttackSpec {
    Alpha { bit: usize },
    Beta(u64),
    Gamma,
}

pub fn write_attack(out: &mut String, attack: &AttackSpec) {
    match attack {
        AttackSpec::Alpha { bit } => out.push_str(&format!("alpha bit={bit}")),
        AttackSpec::Beta(seed) => out.push_str(&format!("beta seed={seed}")),
        AttackSpec::Gamma => out.push_str("gamma"),
    }
}

pub fn parse_attack(kind: &str) -> Option<AttackSpec> {
    // The `Gamma` arm has been deleted: DLK004 must anchor at the
    // variant's declaration line above.
    match kind {
        "alpha" => Some(AttackSpec::Alpha { bit: 0 }),
        "beta" => Some(AttackSpec::Beta(0)),
        _ => None,
    }
}
