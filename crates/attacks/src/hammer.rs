//! The physical attack layer: RowHammer through the memory controller.
//!
//! Given a target bit in a DRAM row, the driver:
//!
//! 1. registers the attacker's precise flip plan on the victim row
//!    (threat model §III: DeepHammer-style precise flips);
//! 2. picks the aggressor row adjacent to the victim and a *conflict
//!    row* far away in the same bank, then issues untrusted reads
//!    alternating between the two. The row-buffer conflict forces an
//!    activation per access — the classic hammer loop;
//! 3. stops when the victim bit flips or the activation budget runs out.
//!
//! (A naive double-sided loop that drives `v-1` and `v+1` in lockstep
//! would make both aggressors cross TRH in the same iteration and
//! toggle the victim bit twice — the single-aggressor + conflict-row
//! pattern sidesteps that artefact of the XOR disturbance model.)
//!
//! Against DRAM-Locker the aggressor row is locked: every request is
//! denied, no activation happens, and the outcome reports the denial
//! count instead of a flip.

use serde::{Deserialize, Serialize};

use dlk_dram::{RowAddr, RowId};
use dlk_memctrl::{MemCtrlError, MemRequest, MemoryController};

/// Hammer driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammerConfig {
    /// Maximum aggressor activations to attempt.
    pub max_activations: u64,
    /// Check the victim bit every `check_interval` activations.
    pub check_interval: u64,
}

impl Default for HammerConfig {
    fn default() -> Self {
        Self { max_activations: 200_000, check_interval: 64 }
    }
}

/// Result of one hammer campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammerOutcome {
    /// The victim bit flipped.
    pub flipped: bool,
    /// Aggressor-side read requests issued (excluding conflict-row
    /// reads).
    pub requests: u64,
    /// Aggressor requests denied by the defense.
    pub denied: u64,
    /// Device cycles the campaign consumed.
    pub cycles: u64,
}

impl HammerOutcome {
    /// `true` if the defense blocked every aggressor access.
    pub fn fully_denied(&self) -> bool {
        self.denied > 0 && self.denied == self.requests
    }
}

/// Drives RowHammer campaigns against a controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct HammerDriver {
    config: HammerConfig,
}

impl HammerDriver {
    /// Creates a driver.
    pub fn new(config: HammerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &HammerConfig {
        &self.config
    }

    /// The aggressor the attacker will hammer to disturb `victim`:
    /// the row below if it exists, else the row above.
    pub fn pick_aggressor(victim: RowAddr, geometry: &dlk_dram::DramGeometry) -> Option<RowAddr> {
        victim.neighbor(-1, geometry).or_else(|| victim.neighbor(1, geometry))
    }

    /// A far-away row in the aggressor's bank/subarray used to force
    /// row-buffer conflicts (never adjacent to the victim).
    pub fn pick_conflict_row(aggressor: RowAddr, geometry: &dlk_dram::DramGeometry) -> RowAddr {
        let rows = geometry.rows_per_subarray;
        let far = (aggressor.row + rows / 2) % rows;
        RowAddr::new(aggressor.bank, aggressor.subarray, far)
    }

    /// Hammers until `victim`'s `bit` flips (relative to its current
    /// value) or the budget is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates controller errors (unmappable rows etc.).
    pub fn hammer_bit(
        &self,
        controller: &mut MemoryController,
        victim: RowAddr,
        bit: usize,
    ) -> Result<HammerOutcome, MemCtrlError> {
        let geometry = controller.geometry();
        let victim_id: RowId = geometry.row_id(victim);
        controller.dram_mut().hammer_mut().set_flip_plan(victim_id, vec![bit]);
        let original = controller.dram().read_bit(victim, bit)?;

        let Some(aggressor) = Self::pick_aggressor(victim, &geometry) else {
            return Ok(HammerOutcome { flipped: false, requests: 0, denied: 0, cycles: 0 });
        };
        let conflict = Self::pick_conflict_row(aggressor, &geometry);
        let aggressor_phys = controller.mapper().to_phys(aggressor, 0);
        let conflict_phys = controller.mapper().to_phys(conflict, 0);

        let start_cycles = controller.dram().now();
        let mut requests = 0u64;
        let mut denied = 0u64;
        let mut flipped = false;
        while requests < self.config.max_activations {
            for _ in 0..self.config.check_interval {
                let done = controller.service(MemRequest::read(aggressor_phys, 1).untrusted())?;
                requests += 1;
                if done.denied {
                    denied += 1;
                }
                controller.service(MemRequest::read(conflict_phys, 1).untrusted())?;
            }
            if controller.dram().read_bit(victim, bit)? != original {
                flipped = true;
                break;
            }
            // If everything is denied, repetition cannot help.
            if denied == requests {
                break;
            }
        }
        Ok(HammerOutcome {
            flipped,
            requests,
            denied,
            cycles: controller.dram().now() - start_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_memctrl::MemCtrlConfig;

    fn controller() -> MemoryController {
        // tiny_for_tests: TRH = 16, auto-refresh off.
        MemoryController::new(MemCtrlConfig::tiny_for_tests())
    }

    #[test]
    fn hammer_flips_target_bit_without_defense() {
        let mut ctrl = controller();
        let victim = RowAddr::new(0, 0, 10);
        let driver = HammerDriver::new(HammerConfig { max_activations: 10_000, check_interval: 8 });
        let outcome = driver.hammer_bit(&mut ctrl, victim, 123).unwrap();
        assert!(outcome.flipped, "undefended hammer must succeed: {outcome:?}");
        assert_eq!(outcome.denied, 0);
        assert!(ctrl.dram().read_bit(victim, 123).unwrap());
        // The flip needed at least TRH activations of the aggressor.
        assert!(outcome.requests >= 16);
    }

    #[test]
    fn budget_exhaustion_reports_no_flip() {
        let mut ctrl = controller();
        let victim = RowAddr::new(0, 0, 10);
        // Budget below TRH -> no flip possible.
        let driver = HammerDriver::new(HammerConfig { max_activations: 8, check_interval: 4 });
        let outcome = driver.hammer_bit(&mut ctrl, victim, 0).unwrap();
        assert!(!outcome.flipped);
        assert!(outcome.requests <= 16);
    }

    #[test]
    fn hammering_costs_row_cycles() {
        let mut ctrl = controller();
        let victim = RowAddr::new(0, 1, 20);
        let driver = HammerDriver::new(HammerConfig { max_activations: 1_000, check_interval: 8 });
        let outcome = driver.hammer_bit(&mut ctrl, victim, 5).unwrap();
        assert!(outcome.cycles > 0);
        // Every access conflicts in the row buffer (alternating rows),
        // so activations track total requests (aggressor + conflict).
        assert!(ctrl.dram().stats().row_buffer_misses as f64 > outcome.requests as f64 * 1.8);
    }

    #[test]
    fn edge_victim_uses_row_above() {
        let mut ctrl = controller();
        // Row 0 has only one neighbour (row 1).
        let victim = RowAddr::new(0, 0, 0);
        let geometry = ctrl.geometry();
        assert_eq!(HammerDriver::pick_aggressor(victim, &geometry), Some(RowAddr::new(0, 0, 1)));
        let driver = HammerDriver::new(HammerConfig { max_activations: 10_000, check_interval: 8 });
        let outcome = driver.hammer_bit(&mut ctrl, victim, 7).unwrap();
        assert!(outcome.flipped);
    }

    #[test]
    fn conflict_row_is_far_from_aggressor() {
        let geometry = dlk_dram::DramGeometry::tiny();
        let aggressor = RowAddr::new(0, 0, 9);
        let conflict = HammerDriver::pick_conflict_row(aggressor, &geometry);
        assert_eq!(conflict.bank, aggressor.bank);
        assert!(conflict.row.abs_diff(aggressor.row) > 2);
    }
}
