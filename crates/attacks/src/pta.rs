//! The Page Table Attack (PTA).
//!
//! Threat model §III / Fig. 3(b): instead of flipping weight bits
//! directly, the attacker flips one PFN bit inside the victim's
//! DRAM-resident page-table entry. The victim's virtual weight page
//! then silently resolves to a different physical frame — one the
//! attacker pre-filled with malicious weight bytes (memory massaging
//! lets the attacker claim the specific frame `pfn ^ 2^bit`).
//!
//! The flip itself is realized with the same RowHammer driver as BFA,
//! aimed at the PTE row instead of a weight row — which is why a
//! general-purpose row-locking defense covers both attacks.

use serde::{Deserialize, Serialize};

use dlk_memctrl::{MemCtrlError, MemoryController, PageTable};

use crate::hammer::{HammerConfig, HammerDriver, HammerOutcome};

/// PTA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtaConfig {
    /// Which PFN bit to flip (redirects the page by `2^bit` frames).
    pub pfn_bit: u32,
    /// Hammer budget.
    pub hammer: HammerConfig,
}

impl Default for PtaConfig {
    fn default() -> Self {
        Self { pfn_bit: 1, hammer: HammerConfig::default() }
    }
}

/// Result of one PTA campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtaOutcome {
    /// The PTE was corrupted and the page now resolves elsewhere.
    pub redirected: bool,
    /// PFN before the attack.
    pub original_pfn: u64,
    /// PFN after the attack (== original if the attack failed).
    pub final_pfn: u64,
    /// The underlying hammer campaign.
    pub hammer: HammerOutcome,
}

/// The page-table attacker.
///
/// # Example
///
/// ```
/// use dlk_attacks::{PtaAttack, PtaConfig};
/// let attack = PtaAttack::new(PtaConfig::default());
/// assert_eq!(attack.config().pfn_bit, 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PtaAttack {
    config: PtaConfig,
}

impl PtaAttack {
    /// Creates a PTA attacker.
    pub fn new(config: PtaConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PtaConfig {
        &self.config
    }

    /// The physical frame the page will point at if the attack
    /// succeeds — where the attacker must stage the malicious payload.
    pub fn target_pfn(&self, original_pfn: u64) -> u64 {
        original_pfn ^ (1 << self.config.pfn_bit)
    }

    /// Stages an attacker payload at the redirect target of `vpn` and
    /// returns the staged frame number.
    ///
    /// # Errors
    ///
    /// Propagates translation and DRAM errors.
    pub fn stage_payload(
        &self,
        controller: &mut MemoryController,
        table: &PageTable,
        vpn: u64,
        payload: &[u8],
    ) -> Result<u64, MemCtrlError> {
        let pte = {
            let mapper = *controller.mapper();
            table.read_pte(controller.dram(), &mapper, vpn)?
        };
        let target = self.target_pfn(pte.pfn);
        let base = target * table.config().page_size;
        let mapper = *controller.mapper();
        let row_bytes = mapper.geometry().row_bytes;
        let mut offset = 0usize;
        while offset < payload.len() {
            let (row, col) = mapper.to_dram(base + offset as u64)?;
            let take = (row_bytes - col).min(payload.len() - offset);
            let mut row_data = controller.dram().read_row(row).map_err(MemCtrlError::Dram)?;
            row_data[col..col + take].copy_from_slice(&payload[offset..offset + take]);
            controller.dram_mut().write_row(row, &row_data).map_err(MemCtrlError::Dram)?;
            offset += take;
        }
        Ok(target)
    }

    /// Executes the PTA: hammers the PFN bit of `vpn`'s PTE and reports
    /// whether translation now resolves to the attacker's frame.
    ///
    /// # Errors
    ///
    /// Propagates controller/page-table errors.
    pub fn execute(
        &self,
        controller: &mut MemoryController,
        table: &PageTable,
        vpn: u64,
    ) -> Result<PtaOutcome, MemCtrlError> {
        let mapper = *controller.mapper();
        let original_pfn = table.read_pte(controller.dram(), &mapper, vpn)?.pfn;
        let (pte_row, bit_in_row) = table.pfn_bit_location(&mapper, vpn, self.config.pfn_bit)?;
        let driver = HammerDriver::new(self.config.hammer);
        let hammer = driver.hammer_bit(controller, pte_row, bit_in_row)?;
        let final_pfn = table.read_pte(controller.dram(), &mapper, vpn)?.pfn;
        Ok(PtaOutcome { redirected: final_pfn != original_pfn, original_pfn, final_pfn, hammer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_memctrl::{MemCtrlConfig, MemRequest, PageTableConfig, VirtAddr};

    fn setup() -> (MemoryController, PageTable) {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        // Keep the PTE array away from row 0 edges: base it at row 16.
        let table =
            PageTable::new(PageTableConfig { page_size: 256, base_phys: 16 * 64, num_pages: 16 });
        let mapper = *ctrl.mapper();
        // Map vpn 3 -> pfn 8.
        table.map(ctrl.dram_mut(), &mapper, 3, 8).unwrap();
        (ctrl, table)
    }

    #[test]
    fn pta_redirects_page_without_defense() {
        let (mut ctrl, table) = setup();
        let attack = PtaAttack::new(PtaConfig {
            pfn_bit: 1,
            hammer: HammerConfig { max_activations: 10_000, check_interval: 8 },
        });
        let outcome = attack.execute(&mut ctrl, &table, 3).unwrap();
        assert!(outcome.redirected, "{outcome:?}");
        assert_eq!(outcome.original_pfn, 8);
        assert_eq!(outcome.final_pfn, 8 ^ 2);
    }

    #[test]
    fn victim_reads_attacker_payload_after_pta() {
        let (mut ctrl, table) = setup();
        let attack = PtaAttack::new(PtaConfig {
            pfn_bit: 1,
            hammer: HammerConfig { max_activations: 10_000, check_interval: 8 },
        });
        // Stage malicious bytes at the redirect target.
        let payload = vec![0xBD; 16];
        let staged_pfn = attack.stage_payload(&mut ctrl, &table, 3, &payload).unwrap();
        assert_eq!(staged_pfn, 10);
        let outcome = attack.execute(&mut ctrl, &table, 3).unwrap();
        assert!(outcome.redirected);
        // Victim translates its virtual address and reads... the payload.
        let mapper = *ctrl.mapper();
        let pa = table.translate(ctrl.dram(), &mapper, VirtAddr(3 * 256)).unwrap();
        let done = ctrl.service(MemRequest::read(pa, 4)).unwrap();
        assert_eq!(done.data.as_deref(), Some(&[0xBD, 0xBD, 0xBD, 0xBD][..]));
    }

    #[test]
    fn failed_hammer_leaves_translation_intact() {
        let (mut ctrl, table) = setup();
        let attack = PtaAttack::new(PtaConfig {
            pfn_bit: 1,
            hammer: HammerConfig { max_activations: 4, check_interval: 2 },
        });
        let outcome = attack.execute(&mut ctrl, &table, 3).unwrap();
        assert!(!outcome.redirected);
        assert_eq!(outcome.final_pfn, 8);
    }

    #[test]
    fn target_pfn_is_xor() {
        let attack = PtaAttack::new(PtaConfig { pfn_bit: 3, hammer: HammerConfig::default() });
        assert_eq!(attack.target_pfn(0b0001), 0b1001);
    }
}
