//! The random-flip baseline.
//!
//! Fig. 1(a) of the paper contrasts BFA with uniformly random bit
//! flips: the random attack needs orders of magnitude more flips for
//! the same damage — which is exactly the level DRAM-Locker aims to
//! degrade a *targeted* attacker to.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dlk_dnn::{BitIndex, QuantizedMlp, Tensor};

use crate::outcome::{AttackCurve, AttackPoint};

/// A uniformly random bit flipper.
///
/// # Example
///
/// ```
/// use dlk_attacks::RandomAttack;
/// use dlk_dnn::models;
///
/// let victim = models::victim_tiny(1);
/// let (x, y) = victim.dataset.test_sample(16, 0);
/// let mut model = victim.model.clone();
/// let curve = RandomAttack::new(7).run(&mut model, &x, &y, 5);
/// assert_eq!(curve.total_flips(), 5);
/// ```
#[derive(Debug)]
pub struct RandomAttack {
    rng: StdRng,
}

impl RandomAttack {
    /// Creates a random attacker with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Picks a uniformly random weight bit of the model.
    pub fn next_flip(&mut self, model: &QuantizedMlp) -> BitIndex {
        let offset = self.rng.random_range(0..model.total_weights());
        let (layer, weight) = model.locate_byte(offset).expect("offset drawn below total_weights");
        BitIndex { layer, weight, bit: self.rng.random_range(0..8u8) }
    }

    /// Flips `iterations` random bits, recording the accuracy curve.
    pub fn run(
        &mut self,
        model: &mut QuantizedMlp,
        x: &Tensor,
        labels: &[usize],
        iterations: usize,
    ) -> AttackCurve {
        let mut curve = AttackCurve::new("random");
        let clean = model.accuracy(x, labels).expect("shapes consistent");
        curve.push(AttackPoint { iteration: 0, flips: 0, accuracy: clean, flipped: None });
        for iteration in 1..=iterations {
            let flip = self.next_flip(model);
            model.flip_bit(flip).expect("random index is in range");
            let accuracy = model.accuracy(x, labels).expect("shapes consistent");
            curve.push(AttackPoint { iteration, flips: iteration, accuracy, flipped: Some(flip) });
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfa::{BfaConfig, BitSearch};
    use dlk_dnn::models;

    #[test]
    fn random_attack_is_much_weaker_than_bfa() {
        // The headline contrast of Fig. 1(a).
        let victim = models::victim_tiny(9);
        let (x, y) = victim.dataset.test_sample(32, 5);
        let iterations = 10;

        let mut bfa_model = victim.model.clone();
        let bfa_curve =
            BitSearch::new(BfaConfig::default()).run(&mut bfa_model, &x, &y, iterations);

        // Average several random runs to avoid luck.
        let mut random_final = 0.0;
        for seed in 0..5 {
            let mut model = victim.model.clone();
            let curve = RandomAttack::new(seed).run(&mut model, &x, &y, iterations);
            random_final += curve.final_accuracy();
        }
        random_final /= 5.0;

        assert!(
            bfa_curve.final_accuracy() < random_final - 0.1,
            "BFA {} should be well below random {}",
            bfa_curve.final_accuracy(),
            random_final
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let victim = models::victim_tiny(2);
        let mut a = RandomAttack::new(3);
        let mut b = RandomAttack::new(3);
        assert_eq!(a.next_flip(&victim.model), b.next_flip(&victim.model));
    }

    #[test]
    fn flips_cover_all_layers_eventually() {
        let victim = models::victim_tiny(2);
        let mut attack = RandomAttack::new(11);
        let mut layers_seen = std::collections::HashSet::new();
        for _ in 0..200 {
            layers_seen.insert(attack.next_flip(&victim.model).layer);
        }
        assert_eq!(layers_seen.len(), victim.model.weighted_count());
    }
}
