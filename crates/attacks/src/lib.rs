//! # dlk-attacks — adversarial DNN weight attacks
//!
//! The two threat models of the DRAM-Locker paper (§III):
//!
//! - [`bfa`]: the **Bit-Flip Attack** — progressive bit search (Rakin
//!   et al., ICCV 2019). Each iteration ranks weight bits by their
//!   gradient-weighted impact, trials the top candidates, and keeps the
//!   flip that maximizes loss. A handful of flips crushes a quantized
//!   network to chance accuracy;
//! - [`random`]: the random-flip baseline of Fig. 1(a) — uniformly
//!   random bit flips degrade accuracy orders of magnitude more slowly;
//! - [`hammer`]: the physical layer — drives double-sided RowHammer
//!   through the memory controller to realize a chosen bit flip in a
//!   DRAM-resident weight image, and reports when a defense denies the
//!   aggressor accesses;
//! - [`pta`]: the **Page Table Attack** — flips a PFN bit in the
//!   victim's DRAM-resident PTE so a weight page silently resolves to
//!   an attacker-controlled frame;
//! - [`outcome`]: attack curves and summary records shared by the
//!   evaluation harness.

pub mod bfa;
pub mod hammer;
pub mod outcome;
pub mod pta;
pub mod random;

pub use crate::bfa::{BfaConfig, BitSearch};
pub use crate::hammer::{HammerConfig, HammerDriver, HammerOutcome};
pub use crate::outcome::{AttackCurve, AttackPoint};
pub use crate::pta::{PtaAttack, PtaConfig, PtaOutcome};
pub use crate::random::RandomAttack;
