//! Attack outcome records.

use serde::{Deserialize, Serialize};

use dlk_dnn::BitIndex;

/// One point of an attack trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackPoint {
    /// Attack iteration (0 = clean model).
    pub iteration: usize,
    /// Cumulative bit flips achieved so far.
    pub flips: usize,
    /// Model accuracy after this iteration.
    pub accuracy: f64,
    /// The bit flipped this iteration, if any.
    pub flipped: Option<BitIndex>,
}

/// A full attack trajectory: accuracy as a function of iterations.
///
/// # Example
///
/// ```
/// use dlk_attacks::{AttackCurve, AttackPoint};
/// let mut curve = AttackCurve::new("demo");
/// curve.push(AttackPoint { iteration: 0, flips: 0, accuracy: 0.9, flipped: None });
/// curve.push(AttackPoint { iteration: 1, flips: 1, accuracy: 0.4, flipped: None });
/// assert_eq!(curve.final_accuracy(), 0.4);
/// assert_eq!(curve.flips_to_reach(0.5), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AttackCurve {
    /// Label for reports (e.g. "BFA", "random").
    pub label: String,
    /// Trajectory points in iteration order.
    pub points: Vec<AttackPoint>,
}

impl AttackCurve {
    /// Creates an empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, point: AttackPoint) {
        self.points.push(point);
    }

    /// Accuracy after the last iteration (1.0 for empty curves).
    pub fn final_accuracy(&self) -> f64 {
        self.points.last().map_or(1.0, |p| p.accuracy)
    }

    /// Accuracy before the attack started.
    pub fn clean_accuracy(&self) -> f64 {
        self.points.first().map_or(1.0, |p| p.accuracy)
    }

    /// Minimum flips needed to push accuracy to or below `threshold`,
    /// or `None` if the curve never got there.
    pub fn flips_to_reach(&self, threshold: f64) -> Option<usize> {
        self.points.iter().find(|p| p.accuracy <= threshold).map(|p| p.flips)
    }

    /// Total bit flips achieved.
    pub fn total_flips(&self) -> usize {
        self.points.last().map_or(0, |p| p.flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(iteration: usize, flips: usize, accuracy: f64) -> AttackPoint {
        AttackPoint { iteration, flips, accuracy, flipped: None }
    }

    #[test]
    fn accessors_on_simple_curve() {
        let mut curve = AttackCurve::new("test");
        curve.push(point(0, 0, 0.9));
        curve.push(point(1, 1, 0.5));
        curve.push(point(2, 2, 0.1));
        assert_eq!(curve.clean_accuracy(), 0.9);
        assert_eq!(curve.final_accuracy(), 0.1);
        assert_eq!(curve.total_flips(), 2);
        assert_eq!(curve.flips_to_reach(0.5), Some(1));
        assert_eq!(curve.flips_to_reach(0.05), None);
    }

    #[test]
    fn empty_curve_defaults() {
        let curve = AttackCurve::new("empty");
        assert_eq!(curve.final_accuracy(), 1.0);
        assert_eq!(curve.total_flips(), 0);
    }
}
