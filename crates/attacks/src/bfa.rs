//! Progressive bit search (the Bit-Flip Attack).
//!
//! Following Rakin et al. (ICCV 2019): in each iteration the attacker
//!
//! 1. computes the loss gradient w.r.t. every (dequantized) weight on
//!    an evaluation batch;
//! 2. in each layer, ranks bits by first-order loss increase
//!    `grad · Δw`, where `Δw` is the weight change that bit flip would
//!    cause right now (sign-bit flips of large-gradient weights
//!    dominate);
//! 3. trials the top in-layer candidates with a real forward pass and
//!    keeps the single flip that maximizes loss across all layers.
//!
//! The search is *white-box*: per the paper's threat model the attacker
//! has full knowledge of parameters, bit representation and gradients.

use serde::{Deserialize, Serialize};

use dlk_dnn::layers::softmax_cross_entropy;
use dlk_dnn::{BitIndex, QuantizedMlp, Tensor};

use crate::outcome::{AttackCurve, AttackPoint};

/// Bit-search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfaConfig {
    /// Candidate bits trialled per layer per iteration.
    pub candidates_per_layer: usize,
    /// Restrict the search to the most significant bits (`None` =
    /// all 8). The published attack converges fastest on bits 6–7.
    pub bits_considered: Option<[u8; 2]>,
}

impl Default for BfaConfig {
    fn default() -> Self {
        Self { candidates_per_layer: 5, bits_considered: Some([6, 7]) }
    }
}

/// The progressive bit search attacker.
///
/// # Example
///
/// ```
/// use dlk_attacks::BitSearch;
/// use dlk_dnn::models;
///
/// let victim = models::victim_tiny(3);
/// let (x, y) = victim.dataset.test_sample(32, 0);
/// let mut search = BitSearch::new(Default::default());
/// let mut model = victim.model.clone();
/// let flip = search.next_flip(&model, &x, &y).unwrap();
/// model.flip_bit(flip).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitSearch {
    config: BfaConfig,
}

impl BitSearch {
    /// Creates a searcher.
    pub fn new(config: BfaConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &BfaConfig {
        &self.config
    }

    /// Finds the most damaging single bit flip for the current model
    /// state on batch `(x, labels)`. Returns `None` only for empty
    /// models.
    pub fn next_flip(
        &mut self,
        model: &QuantizedMlp,
        x: &Tensor,
        labels: &[usize],
    ) -> Option<BitIndex> {
        let (_, grads) =
            model.loss_and_grads(x, labels).expect("attack batch shapes are consistent");
        let mut best: Option<(f32, BitIndex)> = None;
        let mut probe = model.clone();
        for (layer_index, layer_grads) in grads.iter().enumerate() {
            // Rank candidate bits in this layer by first-order gain.
            let grad = layer_grads.weight.as_slice();
            let mut candidates: Vec<(f32, BitIndex)> = Vec::new();
            let bits: Vec<u8> = match self.config.bits_considered {
                Some([a, b]) => vec![a, b],
                None => (0..8).collect(),
            };
            for (weight_index, &g) in grad.iter().enumerate() {
                for &bit in &bits {
                    let index = BitIndex { layer: layer_index, weight: weight_index, bit };
                    let delta = model.flip_delta(index).expect("index enumerated from model shape");
                    let gain = g * delta;
                    if gain > 0.0 {
                        candidates.push((gain, index));
                    }
                }
            }
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            // Trial the top candidates with a real forward pass.
            for &(_, index) in candidates.iter().take(self.config.candidates_per_layer) {
                probe.flip_bit(index).expect("candidate index is valid");
                let logits = probe.forward(x).expect("attack batch shapes are consistent");
                let (loss, _) = softmax_cross_entropy(&logits, labels);
                probe.flip_bit(index).expect("candidate index is valid");
                if best.is_none_or(|(b, _)| loss > b) {
                    best = Some((loss, index));
                }
            }
        }
        best.map(|(_, index)| index)
    }

    /// Runs `iterations` of the attack directly on the in-memory model
    /// (no DRAM in the loop), recording the accuracy trajectory on the
    /// held-out set `(eval_x, eval_y)` while searching on `(x, labels)`.
    pub fn run(
        &mut self,
        model: &mut QuantizedMlp,
        x: &Tensor,
        labels: &[usize],
        iterations: usize,
    ) -> AttackCurve {
        let mut curve = AttackCurve::new("BFA");
        let clean = model.accuracy(x, labels).expect("shapes consistent");
        curve.push(AttackPoint { iteration: 0, flips: 0, accuracy: clean, flipped: None });
        for iteration in 1..=iterations {
            let Some(flip) = self.next_flip(model, x, labels) else { break };
            model.flip_bit(flip).expect("search returned a valid index");
            let accuracy = model.accuracy(x, labels).expect("shapes consistent");
            curve.push(AttackPoint { iteration, flips: iteration, accuracy, flipped: Some(flip) });
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dnn::models;

    #[test]
    fn bfa_crushes_accuracy_quickly() {
        let victim = models::victim_tiny(5);
        let (x, y) = victim.dataset.test_sample(32, 1);
        let mut model = victim.model.clone();
        let mut search = BitSearch::new(BfaConfig::default());
        let curve = search.run(&mut model, &x, &y, 20);
        assert!(curve.clean_accuracy() > 0.6);
        assert!(
            curve.final_accuracy() < curve.clean_accuracy() * 0.6,
            "BFA should at least nearly halve accuracy: {} -> {}",
            curve.clean_accuracy(),
            curve.final_accuracy()
        );
    }

    #[test]
    fn each_flip_is_distinct_bit_state() {
        let victim = models::victim_tiny(6);
        let (x, y) = victim.dataset.test_sample(24, 2);
        let mut model = victim.model.clone();
        let mut search = BitSearch::new(BfaConfig::default());
        let curve = search.run(&mut model, &x, &y, 5);
        let flips: Vec<_> = curve.points.iter().filter_map(|p| p.flipped).collect();
        assert_eq!(flips.len(), 5);
    }

    #[test]
    fn msb_restriction_targets_high_bits() {
        let victim = models::victim_tiny(7);
        let (x, y) = victim.dataset.test_sample(24, 3);
        let mut search = BitSearch::new(BfaConfig::default());
        let flip = search.next_flip(&victim.model, &x, &y).unwrap();
        assert!(flip.bit >= 6, "expected MSB-range flip, got bit {}", flip.bit);
    }

    #[test]
    fn search_is_deterministic() {
        let victim = models::victim_tiny(8);
        let (x, y) = victim.dataset.test_sample(24, 4);
        let mut a = BitSearch::new(BfaConfig::default());
        let mut b = BitSearch::new(BfaConfig::default());
        assert_eq!(a.next_flip(&victim.model, &x, &y), b.next_flip(&victim.model, &x, &y));
    }
}
