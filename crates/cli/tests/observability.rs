//! Satellites of the temporal-observability layer, end to end: the
//! serve heartbeat's rolling series (and monotonic scan sequence)
//! surviving a daemon restart, the golden-pinned `dlk top` frame, and
//! the `dlk bench diff` regression gate against the real binary.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;
use std::time::Duration;

use dlk_cli::cmd::top::render_frame;
use dlk_cli::spool::{serve, ServeConfig, METRICS_FILE};
use dlk_sim::obs::json::{self, Value};
use dlk_sim::obs::series::parse_series_object;

fn dlk(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dlk")).args(args).output().expect("dlk must spawn")
}

fn sandbox(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dlk-obs-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    fs::create_dir_all(&root).unwrap();
    root
}

fn quiet() -> Arc<dlk_cli::spool::LogFn> {
    Arc::new(|_line: &str| {})
}

fn config(root: &std::path::Path) -> ServeConfig {
    ServeConfig {
        spool: root.join("spool"),
        out: root.join("out"),
        jobs: 2,
        poll: Duration::from_millis(10),
        once: true,
        job_timeout: Some(Duration::from_secs(60)),
        abort_after: None,
        max_scans: None,
    }
}

fn heartbeat(root: &std::path::Path) -> Value {
    json::parse_file(root.join("out").join(METRICS_FILE)).expect("heartbeat parses")
}

fn gauge(doc: &Value, name: &str) -> f64 {
    doc.section("gauges")
        .iter()
        .find(|g| g.get("name").and_then(Value::as_str) == Some(name))
        .and_then(|g| g.get("value"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("gauge {name} missing from heartbeat"))
}

fn series_samples(doc: &Value, name: &str) -> Vec<dlk_sim::obs::Sample> {
    doc.section("series")
        .iter()
        .filter_map(parse_series_object)
        .find(|(n, _)| n == name)
        .map(|(_, samples)| samples)
        .unwrap_or_else(|| panic!("series {name} missing from heartbeat"))
}

#[test]
fn heartbeat_series_and_scan_seq_survive_a_restart() {
    let root = sandbox("restart");
    fs::create_dir_all(root.join("spool")).unwrap();
    let spec = dlk_sim::find("hammer-vs-dram-locker").unwrap().spec.to_text();
    fs::write(root.join("spool/job.dlk"), spec).unwrap();

    let first = serve(&config(&root), quiet()).unwrap();
    assert_eq!((first.executed, first.scans), (1, 1));
    let doc = heartbeat(&root);
    assert_eq!(gauge(&doc, "serve.scan_seq"), 1.0, "first lifetime scan");
    let executed_before = series_samples(&doc, "serve.executed");
    assert!(!executed_before.is_empty(), "every heartbeat carries at least its own tick");
    assert_eq!(executed_before.last().unwrap().value, 1.0);

    // Restart into the same out dir: the job skips, but the heartbeat's
    // history must replay — the series keeps its old samples and the
    // scan sequence continues instead of resetting to 1.
    let second = serve(&config(&root), quiet()).unwrap();
    assert_eq!((second.executed, second.skipped), (0, 1));
    let doc = heartbeat(&root);
    assert_eq!(gauge(&doc, "serve.scan_seq"), 2.0, "monotonic across restarts");
    let executed_after = series_samples(&doc, "serve.executed");
    assert!(
        executed_after.len() > executed_before.len(),
        "replayed history plus the fresh tick: {} -> {}",
        executed_before.len(),
        executed_after.len()
    );
    assert!(
        executed_after.starts_with(&executed_before),
        "the old samples are a prefix of the replayed series"
    );
    let stamps: Vec<u64> = executed_after.iter().map(|s| s.t_us).collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "one monotone time axis: {stamps:?}");
    assert!(gauge(&doc, "serve.heartbeat_write_us") >= 0.0);
}

#[test]
fn top_frame_is_golden_pinned() {
    let doc = json::parse(include_str!("golden/heartbeat.json")).expect("fixture parses");
    // 5s past the fixture's pinned epoch: fresh heartbeat, work moving.
    let frame = render_frame(&doc, 5_000_000);
    assert_eq!(frame, include_str!("golden/top_frame.txt"));
}

#[test]
fn top_once_renders_the_fixture_through_the_binary() {
    let root = sandbox("topbin");
    fs::write(root.join(METRICS_FILE), include_str!("golden/heartbeat.json")).unwrap();
    let out = dlk(&["top", "--spool", root.to_str().unwrap(), "--once"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let frame = String::from_utf8_lossy(&out.stdout);
    // Real wall clock vs the pinned epoch: decades stale, so the frame
    // must call the daemon stalled — the discrimination `top` exists
    // for — while still rendering the series it last reported.
    assert!(frame.contains("STALLED"), "{frame}");
    assert!(frame.contains("serve.executed"), "{frame}");
    assert!(frame.contains("sweep.job_wall_us"), "{frame}");
    fs::remove_dir_all(&root).ok();

    let missing = dlk(&["top", "--spool", "/nonexistent", "--once"]);
    assert_eq!(missing.status.code(), Some(1), "missing heartbeat is a clean failure");
}

#[test]
fn bench_diff_gate_passes_identical_and_fails_regressed() {
    let root = sandbox("benchdiff");
    let mut old = dlk_bench::snapshot::Snapshot::new("gate");
    old.metric("decode_minstr_per_s", 100.0, "M/s");
    old.metric("job_wall_us", 50.0, "us");
    old.speedup("decode_vs_reference", 4.0);
    old.write(root.join("old.json")).unwrap();

    let old_path = root.join("old.json").display().to_string();
    let same = dlk(&["bench", "diff", &old_path, &old_path, "--check", "--max-regress", "15"]);
    assert!(same.status.success(), "{}", String::from_utf8_lossy(&same.stderr));
    let table = String::from_utf8_lossy(&same.stdout);
    assert!(table.contains("+0.0%"), "{table}");
    assert!(table.contains("no metric regressed"), "{table}");

    // 20% throughput drop and 20% wall-time growth: both past the 15%
    // gate, in opposite numeric directions.
    let mut new = dlk_bench::snapshot::Snapshot::new("gate");
    new.metric("decode_minstr_per_s", 80.0, "M/s");
    new.metric("job_wall_us", 60.0, "us");
    new.speedup("decode_vs_reference", 4.0);
    new.write(root.join("new.json")).unwrap();

    let new_path = root.join("new.json").display().to_string();
    let gate = dlk(&["bench", "diff", &old_path, &new_path, "--check", "--max-regress", "15"]);
    assert_eq!(gate.status.code(), Some(1));
    let table = String::from_utf8_lossy(&gate.stdout);
    assert!(table.contains("<< REGRESSION"), "{table}");
    let err = String::from_utf8_lossy(&gate.stderr);
    assert!(err.contains("2 metric(s) regressed"), "{err}");
    assert!(err.contains("decode_minstr_per_s") && err.contains("job_wall_us"), "{err}");

    // Without --check the same diff reports and exits zero.
    let report = dlk(&["bench", "diff", &old_path, &new_path]);
    assert!(report.status.success());
    assert!(String::from_utf8_lossy(&report.stdout).contains("-20.0%"));
    fs::remove_dir_all(&root).ok();
}

#[test]
fn real_snapshots_diff_cleanly_against_themselves() {
    // The committed BENCH_*.json baselines must flow through the gate:
    // schema drift here is exactly what this test exists to catch.
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for name in ["BENCH_hot_path.json", "BENCH_sweep.json", "BENCH_figures.json"] {
        let path = repo.join(name);
        if !path.exists() {
            continue;
        }
        let path = path.display().to_string();
        let out = dlk(&["bench", "diff", &path, &path, "--check", "--max-regress", "0.1"]);
        assert!(
            out.status.success(),
            "{name} vs itself must pass the gate: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
