//! Smoke tests against the real `dlk` binary (the exact artifact CI
//! ships), covering every subcommand plus the did-you-mean surface.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn dlk(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dlk")).args(args).output().expect("dlk must spawn")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn sandbox(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dlk-bin-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn catalog_lists_and_filters() {
    let all = dlk(&["catalog"]);
    assert!(all.status.success());
    assert!(stdout(&all).contains("hammer-vs-dram-locker"));

    let filtered = dlk(&["catalog", "--filter", "bfa"]);
    assert!(filtered.status.success());
    let listing = stdout(&filtered);
    assert!(listing.lines().all(|line| line.contains("bfa")), "filter must narrow: {listing}");
    assert!(listing.lines().count() < stdout(&all).lines().count());
}

#[test]
fn dumped_catalog_entries_are_runnable() {
    let dir = sandbox("dump");
    let spec = dir.join("one.dlk").display().to_string();
    let dump = dlk(&["catalog", "--dump", "hammer-vs-dram-locker", "--to", &spec]);
    assert!(dump.status.success(), "{}", stderr(&dump));

    let run = dlk(&["run", &spec, "--csv"]);
    assert!(run.status.success(), "{}", stderr(&run));
    let csv = stdout(&run);
    assert!(csv.starts_with("scenario,attack,"), "csv header first: {csv}");
    assert!(csv.contains("hammer-vs-dram-locker,hammer,"), "then the row: {csv}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_names_get_a_did_you_mean() {
    let run = dlk(&["run", "hammer-vs-dram-lokcer"]);
    assert_eq!(run.status.code(), Some(1));
    let err = stderr(&run);
    assert!(err.contains("did you mean 'hammer-vs-dram-locker'?"), "{err}");

    let filter = dlk(&["catalog", "--filter", "hammer-vs-dram-lokcer"]);
    assert_eq!(filter.status.code(), Some(1));
    assert!(stderr(&filter).contains("did you mean"), "{}", stderr(&filter));
}

#[test]
fn bad_usage_exits_two_with_synopsis() {
    let bad = dlk(&["sweep", "grid.dlk", "--bogus"]);
    assert_eq!(bad.status.code(), Some(2));
    let err = stderr(&bad);
    assert!(err.contains("--bogus") && err.contains("USAGE:"), "{err}");
}

#[test]
fn sweep_streams_and_writes_spec_ordered_csv() {
    let dir = sandbox("sweep");
    let names = ["hammer-vs-none", "hammer-vs-dram-locker", "hammer-vs-rrs", "hammer-vs-srs"];
    let grid: String = names
        .iter()
        .map(|name| {
            let dump = dlk(&["catalog", "--dump", name]);
            assert!(dump.status.success());
            stdout(&dump)
        })
        .collect();
    let grid_path = dir.join("grid.dlk").display().to_string();
    fs::write(&grid_path, grid).unwrap();
    let out_path = dir.join("sweep.csv").display().to_string();

    let metrics_path = dir.join("metrics.json").display().to_string();
    let sweep =
        dlk(&["sweep", &grid_path, "--jobs", "2", "--out", &out_path, "--metrics", &metrics_path]);
    assert!(sweep.status.success(), "{}", stderr(&sweep));
    assert_eq!(stdout(&sweep).lines().count(), 1 + 4, "header plus one streamed row each");

    let csv = fs::read_to_string(&out_path).unwrap();
    let scenarios: Vec<&str> =
        csv.lines().skip(1).map(|row| row.split(',').next().unwrap()).collect();
    assert_eq!(scenarios, names, "--out rows are in spec order");

    let metrics = fs::read_to_string(&metrics_path).unwrap();
    dlk_sim::obs::json::validate(&metrics).expect("--metrics output must validate");
    assert!(metrics.contains("\"sweep.jobs\""), "{metrics}");
    assert!(metrics.contains("\"memctrl.served\""), "runs observed through the queue: {metrics}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_trace_prints_the_span_tree_to_stderr() {
    let run = dlk(&["run", "hammer-vs-dram-locker", "--trace"]);
    assert!(run.status.success(), "{}", stderr(&run));
    assert!(stdout(&run).contains("hammer-vs-dram-locker"), "report on stdout");
    let err = stderr(&run);
    assert!(err.contains("scenario 'hammer-vs-dram-locker'"), "span root: {err}");
    for phase in ["baseline-accuracy", "attack", "measure", "mitigation-stats"] {
        assert!(err.contains(phase), "missing {phase} span: {err}");
    }
    assert!(err.contains("cycles"), "attack span carries cycle attribution: {err}");
    assert!(err.contains("locker.locktable.lookups"), "registry text follows the tree: {err}");
}

#[test]
fn serve_once_drains_a_spool_and_then_skips() {
    let dir = sandbox("serve");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let dump = dlk(&["catalog", "--dump", "hammer-vs-dram-locker"]);
    fs::write(spool.join("job.dlk"), stdout(&dump)).unwrap();
    let spool = spool.display().to_string();
    let out = dir.join("out").display().to_string();

    let first = dlk(&["serve", "--spool", &spool, "--out", &out, "--jobs", "2", "--once"]);
    assert!(first.status.success(), "{}", stderr(&first));
    assert!(stderr(&first).contains("1 executed (0 failed), 0 skipped"), "{}", stderr(&first));
    let csv = fs::read_to_string(dir.join("out/results.csv")).unwrap();
    assert_eq!(csv.lines().count(), 2);
    let metrics = fs::read_to_string(dir.join("out/metrics.json")).unwrap();
    dlk_sim::obs::json::validate(&metrics).expect("heartbeat must validate");
    assert!(metrics.contains("\"serve.executed\""), "{metrics}");

    let second = dlk(&["serve", "--spool", &spool, "--out", &out, "--once"]);
    assert!(second.status.success());
    assert!(stderr(&second).contains("0 executed (0 failed), 1 skipped"), "{}", stderr(&second));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_passes_the_committed_spec_corpus_and_catalog() {
    let specs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
    let corpus = dlk(&["check", specs]);
    assert!(corpus.status.success(), "{}", stderr(&corpus));
    assert!(stdout(&corpus).contains("0 errors"), "{}", stdout(&corpus));

    let entry = dlk(&["check", "hammer-vs-dram-locker"]);
    assert!(entry.status.success(), "{}", stderr(&entry));

    let typo = dlk(&["check", "hammer-vs-dram-lokcer"]);
    assert_eq!(typo.status.code(), Some(1));
    assert!(stderr(&typo).contains("did you mean 'hammer-vs-dram-locker'?"), "{}", stderr(&typo));
}

#[test]
fn check_flags_semantic_errors_and_run_fails_fast_on_them() {
    let dir = sandbox("check");
    let dump = dlk(&["catalog", "--dump", "hammer-vs-dram-locker"]);
    assert!(dump.status.success(), "{}", stderr(&dump));
    // A zeroed budget parses fine but can never run: DLK103 territory.
    let spec = dir.join("bad.dlk");
    fs::write(
        &spec,
        stdout(&dump)
            .lines()
            .map(|line| {
                if line.starts_with("budget ") {
                    "budget activations=0 check=8 iterations=1"
                } else {
                    line
                }
            })
            .collect::<Vec<_>>()
            .join("\n"),
    )
    .unwrap();
    let spec = spec.display().to_string();

    let check = dlk(&["check", &spec]);
    assert_eq!(check.status.code(), Some(1), "{}", stderr(&check));
    let findings = stdout(&check);
    assert!(findings.contains("error[DLK103]"), "{findings}");
    assert!(findings.contains("activations=0"), "{findings}");
    assert!(stderr(&check).contains("1 semantic error"), "{}", stderr(&check));

    // The same rules gate `dlk run`, so a bad spec fails before executing.
    let run = dlk(&["run", &spec]);
    assert_eq!(run.status.code(), Some(1));
    assert!(stderr(&run).contains("spec failed semantic checks"), "{}", stderr(&run));
    assert!(stderr(&run).contains("DLK103"), "{}", stderr(&run));

    // Directory mode sweeps everything under the tree.
    let dir_check = dlk(&["check", &dir.display().to_string()]);
    assert_eq!(dir_check.status.code(), Some(1));
    assert!(stdout(&dir_check).contains("DLK103"), "{}", stdout(&dir_check));
    fs::remove_dir_all(&dir).ok();
}
