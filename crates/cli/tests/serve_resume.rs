//! Satellite: the crash-safety contract, end to end. A spool of specs
//! is served to completion once (the baseline), then served again in a
//! fresh out directory with the `abort_after` crash hook killing the
//! daemon after K journaled completions. The restarted daemon must
//! execute exactly the remaining jobs, and the merged `results.csv`
//! must be byte-for-byte identical to the uninterrupted run's.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use dlk_cli::spool::{serve, Journal, ServeConfig, JOURNAL_FILE, METRICS_FILE, RESULTS_FILE};

/// Quick catalog entries (tiny geometry, sub-millisecond each).
const NAMES: [&str; 6] = [
    "hammer-vs-none",
    "hammer-vs-dram-locker",
    "hammer-vs-rrs",
    "hammer-vs-srs",
    "hammer-vs-shadow",
    "hammer-vs-twice",
];

struct Sandbox {
    root: PathBuf,
}

impl Sandbox {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("dlk-serve-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        fs::create_dir_all(root.join("spool")).unwrap();
        Self { root }
    }

    /// Seeds the spool: the first three specs in `a.dlk`, the rest in
    /// `b.dlk` — a multi-spec file per spool entry is the common case.
    fn seed_spool(&self) {
        let spec_text = |name: &str| dlk_sim::find(name).unwrap().spec.to_text();
        let (first, rest) = NAMES.split_at(3);
        let join = |names: &[&str]| names.iter().map(|n| spec_text(n)).collect::<String>();
        fs::write(self.root.join("spool/a.dlk"), join(first)).unwrap();
        fs::write(self.root.join("spool/b.dlk"), join(rest)).unwrap();
    }

    fn config(&self, out: &str, abort_after: Option<usize>) -> ServeConfig {
        ServeConfig {
            spool: self.root.join("spool"),
            out: self.root.join(out),
            jobs: 2,
            poll: Duration::from_millis(10),
            once: true,
            job_timeout: Some(Duration::from_secs(60)),
            abort_after,
            max_scans: None,
        }
    }

    fn results(&self, out: &str) -> String {
        fs::read_to_string(self.root.join(out).join(RESULTS_FILE)).unwrap()
    }

    fn journal(&self, out: &str) -> Journal {
        Journal::load(&self.root.join(out).join(JOURNAL_FILE)).unwrap()
    }
}

impl Drop for Sandbox {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

fn quiet() -> Arc<dlk_cli::spool::LogFn> {
    Arc::new(|_line: &str| {})
}

#[test]
fn kill_and_restart_merges_to_a_byte_identical_csv() {
    let sandbox = Sandbox::new("resume");
    sandbox.seed_spool();

    // Baseline: one uninterrupted pass over the whole spool.
    let baseline = serve(&sandbox.config("base", None), quiet()).unwrap();
    assert_eq!((baseline.executed, baseline.failed, baseline.aborted), (6, 0, false));
    let expected_csv = sandbox.results("base");
    assert_eq!(expected_csv.lines().count(), 1 + 6, "header plus one row per spec");

    // "Crash" after exactly 2 journaled completions: the queue is
    // cancelled, nothing further is journaled, and results.csv is NOT
    // rewritten (a dead process writes nothing).
    let crashed = serve(&sandbox.config("out", Some(2)), quiet()).unwrap();
    assert!(crashed.aborted);
    assert_eq!(crashed.executed, 2);
    let journal = sandbox.journal("out");
    assert_eq!(journal.entries().len(), 2, "exactly K completions are durable");
    assert!(
        !sandbox.root.join("out").join(RESULTS_FILE).exists(),
        "an aborted pass must not publish derived results"
    );

    // Restart: exactly the remaining four jobs execute, none repeat.
    let resumed = serve(&sandbox.config("out", None), quiet()).unwrap();
    assert_eq!((resumed.executed, resumed.skipped, resumed.aborted), (4, 2, false));
    let journal = sandbox.journal("out");
    assert_eq!(journal.entries().len(), 6);
    let mut keys: Vec<&str> = journal.entries().iter().map(|e| e.key.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), 6, "no job may be journaled twice");

    // The merged CSV is byte-for-byte the uninterrupted one.
    assert_eq!(sandbox.results("out"), expected_csv);

    // A third pass is a no-op: everything skips, the CSV is untouched.
    let idle = serve(&sandbox.config("out", None), quiet()).unwrap();
    assert_eq!((idle.executed, idle.skipped), (0, 6));
    assert_eq!(sandbox.results("out"), expected_csv);
}

#[test]
fn poisoned_spool_files_are_skipped_not_fatal() {
    let sandbox = Sandbox::new("poison");
    sandbox.seed_spool();
    fs::write(sandbox.root.join("spool/0-broken.dlk"), "# dlk-scenario v1\nbogus record\n")
        .unwrap();

    let logged: Arc<std::sync::Mutex<Vec<String>>> = Arc::default();
    let sink = Arc::clone(&logged);
    let summary = serve(
        &sandbox.config("out", None),
        Arc::new(move |line: &str| sink.lock().unwrap().push(line.to_owned())),
    )
    .unwrap();

    assert_eq!((summary.executed, summary.failed), (6, 0), "good files still run");
    assert_eq!(summary.poisoned, 1);
    let logged = logged.lock().unwrap();
    assert!(
        logged.iter().any(|l| l.contains("0-broken.dlk") && l.contains("line 2")),
        "the poisoned file must be reported with parse context: {logged:?}"
    );
}

#[test]
fn poisoned_files_log_once_and_count_in_the_heartbeat() {
    let sandbox = Sandbox::new("poison-once");
    fs::write(sandbox.root.join("spool/bad.dlk"), "# dlk-scenario v1\nbogus record\n").unwrap();

    let logged: Arc<std::sync::Mutex<Vec<String>>> = Arc::default();
    let sink = Arc::clone(&logged);
    let mut cfg = sandbox.config("out", None);
    cfg.once = false;
    cfg.max_scans = Some(3);
    let summary =
        serve(&cfg, Arc::new(move |line: &str| sink.lock().unwrap().push(line.to_owned())))
            .unwrap();

    assert_eq!(summary.scans, 3);
    assert_eq!(summary.poisoned, 1, "one distinct poisoned file across all scans");
    let skipping: Vec<String> =
        logged.lock().unwrap().iter().filter(|l| l.contains("bad.dlk")).cloned().collect();
    assert_eq!(skipping.len(), 1, "logged once, not once per scan: {skipping:?}");

    // The heartbeat validates against the shared schema and carries the
    // poisoned count alongside the scan counter.
    let metrics = fs::read_to_string(sandbox.root.join("out").join(METRICS_FILE)).unwrap();
    dlk_sim::obs::json::validate(&metrics).expect("heartbeat must validate");
    assert!(metrics.contains("\"serve.spool_poisoned\""), "{metrics}");
    assert!(metrics.contains("\"serve.scans\""), "{metrics}");
}

#[test]
fn torn_journal_tail_is_retried_on_restart() {
    let sandbox = Sandbox::new("torn");
    sandbox.seed_spool();
    let complete = serve(&sandbox.config("out", None), quiet()).unwrap();
    assert_eq!(complete.executed, 6);
    let expected_csv = sandbox.results("out");

    // Tear the last journal line mid-write (no trailing newline): that
    // completion was never committed, so the restart redoes it.
    let journal_path = sandbox.root.join("out").join(JOURNAL_FILE);
    let text = fs::read_to_string(&journal_path).unwrap();
    let torn = &text[..text.trim_end_matches('\n').len() - 10];
    fs::write(&journal_path, torn).unwrap();

    let resumed = serve(&sandbox.config("out", None), quiet()).unwrap();
    assert_eq!((resumed.executed, resumed.skipped), (1, 5));
    assert_eq!(sandbox.results("out"), expected_csv, "rebuilt CSV matches bytes");

    // The on-disk journal must be clean after the resumed append: the
    // torn bytes were truncated, not glued to the re-executed job's
    // entry, so a reload sees six well-formed committed lines.
    let reloaded = sandbox.journal("out");
    assert_eq!(reloaded.entries().len(), 6, "resume must not corrupt the journal file");
    assert!(
        reloaded.entries().iter().all(|e| e.is_done()),
        "every committed entry parses as done: {:?}",
        reloaded.entries()
    );
    let final_pass = serve(&sandbox.config("out", None), quiet()).unwrap();
    assert_eq!((final_pass.executed, final_pass.skipped), (0, 6), "reloaded journal skips all");
    assert_eq!(sandbox.results("out"), expected_csv);
}

#[test]
fn crash_after_final_job_still_rebuilds_results_on_restart() {
    let sandbox = Sandbox::new("finaljob");
    sandbox.seed_spool();
    let baseline = serve(&sandbox.config("base", None), quiet()).unwrap();
    assert_eq!(baseline.executed, 6);
    let expected_csv = sandbox.results("base");

    // Crash in the window after the last completion was journaled but
    // before the results.csv rename: the journal is complete, the CSV
    // was never published.
    let crashed = serve(&sandbox.config("out", Some(6)), quiet()).unwrap();
    assert!(crashed.aborted);
    assert_eq!(crashed.executed, 6);
    assert!(!sandbox.root.join("out").join(RESULTS_FILE).exists());

    // Restart finds nothing pending — the derived CSV must still be
    // rebuilt from the journal, not left missing forever.
    let resumed = serve(&sandbox.config("out", None), quiet()).unwrap();
    assert_eq!((resumed.executed, resumed.skipped, resumed.aborted), (0, 6, false));
    assert_eq!(sandbox.results("out"), expected_csv, "restart publishes the derived CSV");
}

#[test]
fn results_are_ordered_by_spool_position_not_completion() {
    let sandbox = Sandbox::new("order");
    sandbox.seed_spool();
    serve(&sandbox.config("out", None), quiet()).unwrap();
    let csv = sandbox.results("out");
    let scenarios: Vec<&str> =
        csv.lines().skip(1).map(|row| row.split(',').next().unwrap()).collect();
    // a.dlk's three specs, then b.dlk's three, regardless of which of
    // the two workers finished first.
    assert_eq!(scenarios, NAMES);
}
