//! `dlk bench diff <old.json> <new.json> [--check] [--max-regress
//! PCT]` — compare two schema-v2 snapshot documents.
//!
//! Thin shell over [`dlk_bench::diff`]: both documents are parsed with
//! the shared JSON reader, aligned by member name, and printed as a
//! delta table with percent changes. With `--check`, any row that
//! moved more than `--max-regress` percent (default 10) in its bad
//! direction — throughput down, time up — fails the command, which is
//! the CI regression gate over the committed `BENCH_*.json` baselines.

use dlk_bench::diff;
use dlk_sim::obs::json;

use crate::args;
use crate::CliError;

const USAGE: &str = "dlk bench diff <old.json> <new.json> [--check] [--max-regress PCT]";

/// Default regression threshold for `--check`, in percent.
const DEFAULT_MAX_REGRESS: f64 = 10.0;

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors, [`CliError::Failed`] when a document is missing or
/// unparseable, and — under `--check` — when any metric regressed past
/// the threshold.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let check = args::take_switch(&mut args, "--check");
    let max_regress = match args::take_value(&mut args, "--max-regress")? {
        Some(raw) => raw.parse::<f64>().map_err(|_| {
            CliError::Usage(format!("--max-regress expects a percentage, got '{raw}'"))
        })?,
        None => DEFAULT_MAX_REGRESS,
    };
    let mut operands = args::positionals(args, USAGE)?;
    if operands.first().map(String::as_str) != Some("diff") {
        return Err(CliError::Usage(format!("expected the 'diff' subcommand\n  {USAGE}")));
    }
    operands.remove(0);
    let [old_path, new_path] = operands.as_slice() else {
        return Err(CliError::Usage(format!("expected two snapshot files\n  {USAGE}")));
    };

    let old = json::parse_file(old_path).map_err(CliError::Failed)?;
    let new = json::parse_file(new_path).map_err(CliError::Failed)?;
    let diff = diff::diff(&old, &new);

    print!("{}", diff.render(check.then_some(max_regress)));

    if check {
        let regressed = diff.regressions(max_regress);
        if !regressed.is_empty() {
            let worst: Vec<String> = regressed
                .iter()
                .map(|d| {
                    format!("{}/{} {:.1}%", d.section, d.name, d.regression_pct().unwrap_or(0.0))
                })
                .collect();
            return Err(CliError::Failed(format!(
                "{} metric(s) regressed more than {max_regress}%: {}",
                regressed.len(),
                worst.join(", ")
            )));
        }
        println!("ok: no metric regressed more than {max_regress}%");
    }
    Ok(())
}
