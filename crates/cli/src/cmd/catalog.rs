//! `dlk catalog [--filter SUBSTR] [--dump NAME [--to FILE]]` — browse
//! the named scenario catalog and dump entries as runnable `.dlk`
//! files.

use std::fs;

use dlk_sim::Expected;

use crate::args;
use crate::CliError;

const USAGE: &str = "dlk catalog [--filter SUBSTR] [--dump NAME [--to FILE]]";

fn expected_token(expected: Expected) -> &'static str {
    match expected {
        Expected::Harmed => "harmed",
        Expected::Contained => "contained",
        Expected::Any => "any",
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors, unknown `--dump` names (with did-you-mean), a
/// `--filter` matching nothing (reported through the same suggestion
/// machinery), and `--to` write failures.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let filter = args::take_value(&mut args, "--filter")?;
    let dump = args::take_value(&mut args, "--dump")?;
    let to = args::take_value(&mut args, "--to")?;
    let rest = args::positionals(args, USAGE)?;
    if !rest.is_empty() {
        return Err(CliError::Usage(format!("unexpected operand '{}'\n  {USAGE}", rest[0])));
    }
    if to.is_some() && dump.is_none() {
        return Err(CliError::Usage(format!("--to needs --dump\n  {USAGE}")));
    }

    if let Some(name) = dump {
        let entry = dlk_sim::find(&name)?;
        let text = entry.spec.to_text();
        match to {
            Some(path) => {
                fs::write(&path, &text).map_err(|e| CliError::io(&path, e))?;
                eprintln!("dlk: wrote {} ({} bytes)", path, text.len());
            }
            None => print!("{text}"),
        }
        return Ok(());
    }

    let entries: Vec<_> = dlk_sim::catalog()
        .into_iter()
        .filter(|entry| filter.as_deref().is_none_or(|f| entry.name.contains(f)))
        .collect();
    if entries.is_empty() {
        if let Some(f) = filter {
            // Nothing contains the substring: reuse the catalog's
            // did-you-mean so `--filter lokcer` still points somewhere.
            return Err(dlk_sim::find(&f).expect_err("filter matched nothing").into());
        }
    }
    let name_w = entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
    let expected_w = "contained".len();
    for entry in &entries {
        println!(
            "{:name_w$}  {:expected_w$}  {:24}  {}",
            entry.name,
            expected_token(entry.expected),
            entry.artifact,
            entry.description,
        );
    }
    eprintln!("dlk: {} scenario(s)", entries.len());
    Ok(())
}
