//! `dlk check <spec.dlk | dir | catalog-name>` — semantic validation
//! of scenario specs without running them.
//!
//! Parsing already rejects malformed records; `check` runs the
//! [`dlk_lint::analyze`] rules (DLK101–DLK105) on everything that
//! parses: channel ranges vs the engine, duplicate labels, degenerate
//! budgets, target indices and duplicate mitigations. A directory
//! checks every `.dlk` file in it (recursively, sorted); a bare name
//! checks the catalog entry of that name, with the catalog's
//! did-you-mean on typos. Exit 0 when no error-severity findings
//! remain (warnings print but pass) — the same findings `dlk run` and
//! `dlk sweep` enforce before executing.

use std::path::{Path, PathBuf, MAIN_SEPARATOR};

use dlk_lint::analyze;
use dlk_lint::Report;

use crate::CliError;

const USAGE: &str = "dlk check <spec.dlk | dir | catalog-name>";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors, spec parse errors (with line context), unknown
/// catalog names (with did-you-mean), and [`CliError::Failed`] when
/// error-severity findings remain.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let target = super::one_operand(args, USAGE)?;
    let path = Path::new(&target);
    let report = if path.is_dir() {
        check_dir(path)?
    } else if path.exists() || target.ends_with(".dlk") || target.contains(MAIN_SEPARATOR) {
        check_file(path)?
    } else {
        // Catalog names reuse `sim::find`, so a typo gets the
        // catalog's did-you-mean suggestion.
        let entry = dlk_sim::find(&target)?;
        analyze::analyze_spec(&format!("<catalog:{}>", entry.name), &entry.spec)
    };
    print!("{}", report.render_text());
    match report.errors() {
        0 => Ok(()),
        n => Err(CliError::Failed(format!("{n} semantic error{}", if n == 1 { "" } else { "s" }))),
    }
}

fn check_file(path: &Path) -> Result<Report, CliError> {
    let text = std::fs::read_to_string(path).map_err(|error| CliError::io(path, error))?;
    Ok(analyze::analyze_text(&path.display().to_string(), &text)?)
}

fn check_dir(dir: &Path) -> Result<Report, CliError> {
    let mut files = Vec::new();
    collect_dlk(dir, &mut files).map_err(|error| CliError::io(dir, error))?;
    files.sort();
    if files.is_empty() {
        return Err(CliError::Failed(format!("{}: no .dlk files", dir.display())));
    }
    let mut report = Report::new();
    for file in files {
        report.merge(check_file(&file)?);
    }
    report.sort();
    Ok(report)
}

fn collect_dlk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_dlk(&path, files)?;
        } else if path.extension().is_some_and(|ext| ext == "dlk") {
            files.push(path);
        }
    }
    Ok(())
}
