//! `dlk top --spool DIR [--refresh-ms M] [--once]` — live terminal
//! view of a serve daemon, rendered from its heartbeat file alone.
//!
//! `DIR` is the daemon's `--out` directory; the only input is the
//! `metrics.json` the daemon atomically rewrites every scan, so `top`
//! works on a live daemon, a dead one (and says so), or a copied-out
//! heartbeat. Each frame shows every exported time series as a
//! sparkline with its latest value and rate, the histograms' current
//! `p50/p95/p99`, and a status line that tells a *stalled* daemon (the
//! heartbeat stopped aging forward) from an *idle* one (fresh
//! heartbeats, nothing executing). Rendering is a pure function of the
//! parsed heartbeat plus "now", golden-pinned in the integration
//! tests.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use dlk_sim::obs::json::{self, Value};
use dlk_sim::obs::series::parse_series_object;
use dlk_sim::obs::TimeSeries;

use crate::args;
use crate::spool::{unix_micros, METRICS_FILE};
use crate::CliError;

const USAGE: &str = "dlk top --spool DIR [--refresh-ms M] [--once]";

/// A heartbeat older than this means the daemon is stalled or dead —
/// even an idle daemon rewrites it every poll interval.
const STALL_AFTER_SECS: u64 = 10;
/// Sparkline width: the newest samples of each series.
const SPARK_WIDTH: usize = 24;
const SPARK_RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors, plus [`CliError::Failed`] when the heartbeat is
/// missing or unparseable.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let spool = args::take_value(&mut args, "--spool")?;
    let refresh_ms = args::take_value(&mut args, "--refresh-ms")?;
    let once = args::take_switch(&mut args, "--once");
    let rest = args::positionals(args, USAGE)?;
    if !rest.is_empty() {
        return Err(CliError::Usage(format!("unexpected operand '{}'\n  {USAGE}", rest[0])));
    }
    let Some(spool) = spool else {
        return Err(CliError::Usage(format!("--spool is required\n  {USAGE}")));
    };
    let refresh = match refresh_ms {
        Some(raw) => Duration::from_millis(args::parse_count("--refresh-ms", &raw)?),
        None => Duration::from_millis(1000),
    };
    let path = PathBuf::from(spool).join(METRICS_FILE);

    loop {
        let value = json::parse_file(&path).map_err(CliError::Failed)?;
        let frame = render_frame(&value, unix_micros());
        if once {
            print!("{frame}");
            return Ok(());
        }
        // Clear + home, then the frame — a flicker-free enough refresh
        // for a daemon heartbeat without pulling in a TUI layer.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(refresh);
    }
}

/// Renders one frame from a parsed heartbeat document and the current
/// Unix time in microseconds. Pure — the golden test pins its output.
pub fn render_frame(doc: &Value, now_us: u64) -> String {
    let name = doc.get("name").and_then(Value::as_str).unwrap_or("?");
    let hb_secs =
        doc.get("build").and_then(|b| b.get("unix_time_secs")).and_then(Value::as_u64).unwrap_or(0);
    let age_secs = (now_us / 1_000_000).saturating_sub(hb_secs);
    let scan_seq = gauge(doc, "serve.scan_seq").unwrap_or(0.0);
    let write_us = gauge(doc, "serve.heartbeat_write_us").unwrap_or(0.0);

    let series: Vec<(String, TimeSeries)> = doc
        .section("series")
        .iter()
        .filter_map(parse_series_object)
        .map(|(name, samples)| (name, TimeSeries::from_samples(samples.len().max(1), samples)))
        .collect();

    let status = status(&series, age_secs);
    let mut out = format!(
        "dlk top — {name}   scan #{scan_seq}   heartbeat {age_secs}s ago (write {write_us}us)   \
         status: {status}\n",
    );

    let width = series
        .iter()
        .map(|(name, _)| name.len())
        .chain(
            doc.section("histograms")
                .iter()
                .filter_map(|h| h.get("name").and_then(Value::as_str).map(str::len)),
        )
        .chain([24])
        .max()
        .unwrap_or(24);

    if !series.is_empty() {
        out.push_str(&format!("\n{:<width$} {:>12} {:>10}  history\n", "series", "last", "rate/s"));
        for (name, timeseries) in &series {
            let last = timeseries.last().map_or(0.0, |s| s.value);
            let rate =
                timeseries.rate(u64::MAX).map_or_else(|| "-".to_owned(), |r| format!("{r:+.2}"));
            out.push_str(&format!(
                "{name:<width$} {:>12} {rate:>10}  {}\n",
                fmt_value(last),
                sparkline(timeseries),
            ));
        }
    }

    let histograms = doc.section("histograms");
    if !histograms.is_empty() {
        out.push_str(&format!(
            "\n{:<width$} {:>8} {:>10} {:>8} {:>8} {:>8}\n",
            "histograms", "count", "mean", "p50", "p95", "p99"
        ));
        for hist in histograms {
            let field = |key: &str| hist.get(key).and_then(Value::as_f64).unwrap_or(0.0);
            out.push_str(&format!(
                "{:<width$} {:>8} {:>10} {:>8} {:>8} {:>8}\n",
                hist.get("name").and_then(Value::as_str).unwrap_or("?"),
                fmt_value(field("count")),
                fmt_value(field("mean")),
                fmt_value(field("p50")),
                fmt_value(field("p95")),
                fmt_value(field("p99")),
            ));
        }
    }
    out
}

/// Stalled beats everything: a daemon that stopped writing heartbeats
/// tells us nothing current, whatever its last frame said. Otherwise
/// "active" when work moved since the previous sample (the executed
/// counter still climbing, or jobs sitting in the queue), else "idle".
fn status(series: &[(String, TimeSeries)], age_secs: u64) -> &'static str {
    if age_secs > STALL_AFTER_SECS {
        return "STALLED (heartbeat stopped)";
    }
    let climbing = series
        .iter()
        .any(|(name, ts)| name == "serve.executed" && ts.rate(u64::MAX).is_some_and(|r| r > 0.0));
    let queued = series
        .iter()
        .any(|(name, ts)| name == "sweep.queue_depth" && ts.last().is_some_and(|s| s.value > 0.0));
    if climbing || queued {
        "active"
    } else {
        "idle"
    }
}

/// The newest [`SPARK_WIDTH`] samples as a unicode sparkline, scaled to
/// the window's own min/max (a flat series renders mid-ramp).
fn sparkline(series: &TimeSeries) -> String {
    let values: Vec<f64> = series.iter().map(|s| s.value).collect();
    let tail = &values[values.len().saturating_sub(SPARK_WIDTH)..];
    let (min, max) =
        tail.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    tail.iter()
        .map(|&v| {
            if max > min {
                let at = ((v - min) / (max - min) * 7.0).round() as usize;
                SPARK_RAMP[at.min(7)]
            } else {
                SPARK_RAMP[3]
            }
        })
        .collect()
}

/// A `gauges` section member's value by name.
fn gauge(doc: &Value, name: &str) -> Option<f64> {
    doc.section("gauges")
        .iter()
        .find(|g| g.get("name").and_then(Value::as_str) == Some(name))
        .and_then(|g| g.get("value"))
        .and_then(Value::as_f64)
}

/// Integers render bare, everything else with three decimals — same
/// policy as the shared JSON number writer, kept column-friendly.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        v.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat(scan_seq: i64, executed: &[(u64, f64)], depth: f64) -> Value {
        use dlk_sim::obs::{Registry, Sampler};
        let registry = Registry::new();
        registry.gauge("serve.scan_seq").set(scan_seq);
        registry.gauge("serve.heartbeat_write_us").set(250);
        registry.gauge("sweep.queue_depth").set(depth as i64);
        registry.histogram("sweep.job_wall_us").record(100);
        let mut doc = registry.to_document("dlk-serve");
        doc.set_build(json::BuildInfo::pinned());
        let mut sampler = Sampler::new(&Registry::new(), executed.len().max(1));
        sampler.seed(
            "serve.executed",
            executed.iter().map(|&(t_us, value)| dlk_sim::obs::Sample { t_us, value }),
        );
        sampler.seed(
            "sweep.queue_depth",
            executed.iter().map(|&(t_us, _)| dlk_sim::obs::Sample { t_us, value: depth }),
        );
        sampler.export_into(&mut doc);
        json::parse(&doc.to_json()).expect("test heartbeat parses")
    }

    #[test]
    fn fresh_heartbeat_with_climbing_executed_is_active() {
        let doc = heartbeat(7, &[(1_000_000, 2.0), (2_000_000, 5.0)], 0.0);
        // Pinned build has unix_time_secs 0; "now" 3s later is fresh.
        let frame = render_frame(&doc, 3_000_000);
        assert!(frame.contains("status: active"), "{frame}");
        assert!(frame.contains("scan #7"));
        assert!(frame.contains("serve.executed"));
        assert!(frame.contains("sweep.job_wall_us"));
    }

    #[test]
    fn flat_executed_is_idle_and_old_heartbeat_is_stalled() {
        let doc = heartbeat(3, &[(1_000_000, 5.0), (2_000_000, 5.0)], 0.0);
        assert!(render_frame(&doc, 3_000_000).contains("status: idle"));
        assert!(render_frame(&doc, 60_000_000).contains("STALLED"));
    }

    #[test]
    fn queued_jobs_count_as_active_even_with_flat_executed() {
        let doc = heartbeat(3, &[(1_000_000, 5.0), (2_000_000, 5.0)], 4.0);
        assert!(render_frame(&doc, 3_000_000).contains("status: active"));
    }

    #[test]
    fn sparkline_scales_to_the_window() {
        let series = TimeSeries::from_samples(
            4,
            [(0u64, 0.0), (1, 1.0), (2, 2.0), (3, 7.0)]
                .into_iter()
                .map(|(t_us, value)| dlk_sim::obs::Sample { t_us, value }),
        );
        assert_eq!(sparkline(&series), "▁▂▃█");
        let flat = TimeSeries::from_samples(
            2,
            [(0u64, 5.0), (1, 5.0)]
                .into_iter()
                .map(|(t_us, value)| dlk_sim::obs::Sample { t_us, value }),
        );
        assert_eq!(sparkline(&flat), "▄▄");
    }
}
