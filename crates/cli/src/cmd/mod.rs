//! The `dlk` subcommands. Each module exposes
//! `run(args: Vec<String>) -> Result<(), CliError>` over the argument
//! vector that followed the command word.

pub mod bench;
pub mod catalog;
pub mod run;
pub mod serve;
pub mod sweep;
pub mod top;

use std::path::{Path, MAIN_SEPARATOR};

use dlk_sim::ScenarioSpec;

use crate::CliError;

/// Resolves a `run`/`sweep` target to its spec list: anything that
/// looks like a path (exists, ends in `.dlk`, or contains a separator)
/// is loaded as a spec file; everything else is a catalog name, so an
/// unknown one surfaces the catalog's did-you-mean suggestion.
pub(crate) fn load_specs(target: &str) -> Result<Vec<ScenarioSpec>, CliError> {
    let looks_like_path =
        Path::new(target).exists() || target.ends_with(".dlk") || target.contains(MAIN_SEPARATOR);
    if looks_like_path {
        let specs = ScenarioSpec::list_from_file(Path::new(target))?;
        if specs.is_empty() {
            return Err(CliError::Failed(format!("{target}: no specs in file")));
        }
        Ok(specs)
    } else {
        Ok(vec![dlk_sim::find(target)?.spec])
    }
}

/// Exactly one positional operand, or a usage error citing `usage`.
pub(crate) fn one_operand(args: Vec<String>, usage: &str) -> Result<String, CliError> {
    let mut args = crate::args::positionals(args, usage)?;
    match args.len() {
        1 => Ok(args.remove(0)),
        0 => Err(CliError::Usage(format!("missing operand\n  {usage}"))),
        _ => Err(CliError::Usage(format!("too many operands\n  {usage}"))),
    }
}
