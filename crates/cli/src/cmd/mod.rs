//! The `dlk` subcommands. Each module exposes
//! `run(args: Vec<String>) -> Result<(), CliError>` over the argument
//! vector that followed the command word.

pub mod bench;
pub mod catalog;
pub mod check;
pub mod run;
pub mod serve;
pub mod sweep;
pub mod top;

use std::path::{Path, MAIN_SEPARATOR};

use dlk_sim::ScenarioSpec;

use crate::CliError;

/// Resolves a `run`/`sweep` target to its spec list: anything that
/// looks like a path (exists, ends in `.dlk`, or contains a separator)
/// is loaded as a spec file; everything else is a catalog name, so an
/// unknown one surfaces the catalog's did-you-mean suggestion.
///
/// Loaded specs pass through the `dlk check` semantic rules before
/// they are returned, so a bad spec fails fast with a rule code (and
/// its record's `file:line:col`) instead of somewhere mid-run;
/// warnings print to stderr and do not block.
pub(crate) fn load_specs(target: &str) -> Result<Vec<ScenarioSpec>, CliError> {
    let looks_like_path =
        Path::new(target).exists() || target.ends_with(".dlk") || target.contains(MAIN_SEPARATOR);
    if looks_like_path {
        let specs = ScenarioSpec::list_from_file(Path::new(target))?;
        if specs.is_empty() {
            return Err(CliError::Failed(format!("{target}: no specs in file")));
        }
        let text = std::fs::read_to_string(target).map_err(|error| CliError::io(target, error))?;
        deny_semantic_errors(dlk_lint::analyze::analyze_text(target, &text)?)?;
        Ok(specs)
    } else {
        let entry = dlk_sim::find(target)?;
        let report =
            dlk_lint::analyze::analyze_spec(&format!("<catalog:{}>", entry.name), &entry.spec);
        deny_semantic_errors(report)?;
        Ok(vec![entry.spec])
    }
}

/// Fails with the rendered findings when any are error-severity;
/// prints warning-only reports to stderr.
fn deny_semantic_errors(report: dlk_lint::Report) -> Result<(), CliError> {
    if report.errors() > 0 {
        return Err(CliError::Failed(format!(
            "spec failed semantic checks (see `dlk check`):\n{}",
            report.render_text()
        )));
    }
    if report.warnings() > 0 {
        eprint!("{}", report.render_text());
    }
    Ok(())
}

/// Exactly one positional operand, or a usage error citing `usage`.
pub(crate) fn one_operand(args: Vec<String>, usage: &str) -> Result<String, CliError> {
    let mut args = crate::args::positionals(args, usage)?;
    match args.len() {
        1 => Ok(args.remove(0)),
        0 => Err(CliError::Usage(format!("missing operand\n  {usage}"))),
        _ => Err(CliError::Usage(format!("too many operands\n  {usage}"))),
    }
}
