//! `dlk serve --spool DIR --out DIR [...]` — the spool daemon. All the
//! machinery lives in [`crate::spool`]; this module is flag parsing
//! plus a stderr log sink.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crate::args;
use crate::spool::{serve, ServeConfig};
use crate::CliError;

const USAGE: &str = "dlk serve --spool DIR --out DIR [--jobs N] [--poll-ms M] [--once] \
                     [--timeout-secs S] [--abort-after K]";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors and spool/out directory I/O failures; individual job
/// failures are journaled and reported in the summary instead.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let spool = args::take_value(&mut args, "--spool")?;
    let out = args::take_value(&mut args, "--out")?;
    let jobs = args::take_value(&mut args, "--jobs")?;
    let poll_ms = args::take_value(&mut args, "--poll-ms")?;
    let timeout = args::take_value(&mut args, "--timeout-secs")?;
    let abort_after = args::take_value(&mut args, "--abort-after")?;
    let once = args::take_switch(&mut args, "--once");
    let rest = args::positionals(args, USAGE)?;
    if !rest.is_empty() {
        return Err(CliError::Usage(format!("unexpected operand '{}'\n  {USAGE}", rest[0])));
    }
    let (Some(spool), Some(out)) = (spool, out) else {
        return Err(CliError::Usage(format!("--spool and --out are required\n  {USAGE}")));
    };

    let jobs = match jobs {
        Some(raw) => {
            let n = args::parse_count("--jobs", &raw)?;
            if n == 0 {
                return Err(CliError::Usage("--jobs must be at least 1".to_owned()));
            }
            n as usize
        }
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let poll = match poll_ms {
        Some(raw) => Duration::from_millis(args::parse_count("--poll-ms", &raw)?),
        None => Duration::from_millis(500),
    };
    let job_timeout = match timeout {
        Some(raw) => Some(Duration::from_secs(args::parse_count("--timeout-secs", &raw)?)),
        None => None,
    };
    let abort_after = match abort_after {
        Some(raw) => Some(args::parse_count("--abort-after", &raw)? as usize),
        None => None,
    };

    let cfg = ServeConfig {
        spool: PathBuf::from(spool),
        out: PathBuf::from(out),
        jobs,
        poll,
        once,
        job_timeout,
        abort_after,
        max_scans: None,
    };
    let summary = serve(&cfg, Arc::new(|line: &str| eprintln!("dlk: {line}")))?;
    eprintln!("dlk: {summary}");
    if summary.failed > 0 {
        return Err(CliError::Failed(format!("{} job(s) did not finish done", summary.failed)));
    }
    Ok(())
}
