//! `dlk sweep <grid.dlk> [--jobs N] [--out FILE] [--timeout-secs S]
//! [--metrics FILE]` — run every spec in a grid file on the
//! work-stealing queue, streaming CSV rows to stdout as jobs finish
//! (status lines go to stderr). `--out` additionally writes the rows
//! in spec order, which — because the queue's results are bit-identical
//! to a serial run — is the same file any job count produces.
//! `--metrics` dumps the observed registry (queue scheduling metrics
//! plus the aggregated engine/controller/locker metrics of every run)
//! as shared-schema JSON after the sweep.

use std::fs;
use std::time::{Duration, Instant};

use dlk_sim::obs::Registry;
use dlk_sim::{JobStatus, RunReport, SweepRunner};

use crate::args;
use crate::CliError;

const USAGE: &str =
    "dlk sweep <grid.dlk> [--jobs N] [--out FILE] [--timeout-secs S] [--metrics FILE]";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors, grid parse errors, `--out` write failures, and
/// [`CliError::Failed`] when any job ended other than `done`.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let jobs = args::take_value(&mut args, "--jobs")?;
    let out = args::take_value(&mut args, "--out")?;
    let timeout = args::take_value(&mut args, "--timeout-secs")?;
    let metrics = args::take_value(&mut args, "--metrics")?;
    let grid = super::one_operand(args, USAGE)?;
    let specs = super::load_specs(&grid)?;

    let mut runner = match jobs {
        Some(raw) => {
            let n = args::parse_count("--jobs", &raw)?;
            if n == 0 {
                return Err(CliError::Usage("--jobs must be at least 1".to_owned()));
            }
            SweepRunner::with_threads(n as usize)
        }
        None => SweepRunner::parallel(),
    };
    if let Some(raw) = timeout {
        runner = runner.timeout(Duration::from_secs(args::parse_count("--timeout-secs", &raw)?));
    }
    let registry = Registry::new();
    if metrics.is_some() {
        runner = runner.observe(&registry);
    }
    runner = runner.on_progress(|outcome| {
        match &outcome.report {
            Ok(report) => println!("{}", report.to_csv_row()),
            Err(err) => {
                eprintln!("dlk: sweep: {} {}: {err}", outcome.status().token(), outcome.label);
            }
        }
        true
    });

    println!("{}", RunReport::csv_header());
    let started = Instant::now();
    let threads = runner.threads();
    let outcomes = runner.run_jobs(&specs);
    let elapsed = started.elapsed();

    if let Some(path) = out {
        let mut csv = String::from(RunReport::csv_header());
        csv.push('\n');
        for outcome in &outcomes {
            if let Ok(report) = &outcome.report {
                csv.push_str(&report.to_csv_row());
                csv.push('\n');
            }
        }
        fs::write(&path, csv).map_err(|e| CliError::io(&path, e))?;
    }
    if let Some(path) = metrics {
        registry.write_json("dlk-sweep", &path).map_err(|e| CliError::io(&path, e))?;
        eprintln!("dlk: sweep: metrics written to {path}");
    }

    let done = outcomes.iter().filter(|o| o.status() == JobStatus::Done).count();
    let stolen = outcomes.iter().filter(|o| o.stolen).count();
    let rate = outcomes.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "dlk: sweep: {done}/{} done on {threads} worker(s) in {elapsed:.2?} \
         ({rate:.2} jobs/s, {stolen} stolen)",
        outcomes.len(),
    );
    if done < outcomes.len() {
        return Err(CliError::Failed(format!(
            "{} of {} jobs did not finish done",
            outcomes.len() - done,
            outcomes.len()
        )));
    }
    Ok(())
}
