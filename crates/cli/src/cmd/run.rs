//! `dlk run <spec.dlk | catalog-name> [--csv]` — execute one spec file
//! (every spec in it) or one named catalog entry.

use dlk_sim::{RunReport, Scenario};

use crate::args;
use crate::CliError;

const USAGE: &str = "dlk run <spec.dlk | catalog-name> [--csv]";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors, spec parse errors (with line context), unknown
/// catalog names (with did-you-mean), and scenario build/run failures.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let csv = args::take_switch(&mut args, "--csv");
    let target = super::one_operand(args, USAGE)?;
    let specs = super::load_specs(&target)?;
    if csv {
        println!("{}", RunReport::csv_header());
    }
    for (at, spec) in specs.iter().enumerate() {
        let report = Scenario::from_spec(spec)?.run()?;
        if csv {
            println!("{}", report.to_csv_row());
        } else {
            if at > 0 {
                println!();
            }
            println!("{report}");
        }
    }
    Ok(())
}
