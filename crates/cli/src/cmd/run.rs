//! `dlk run <spec.dlk | catalog-name> [--csv] [--trace]` — execute one
//! spec file (every spec in it) or one named catalog entry. `--trace`
//! prints each run's span tree (wall time per pipeline phase, engine
//! cycles on the attack span) to stderr, so it composes with `--csv`
//! without corrupting the stdout rows.

use dlk_sim::obs::Registry;
use dlk_sim::{RunReport, Scenario};

use crate::args;
use crate::CliError;

const USAGE: &str = "dlk run <spec.dlk | catalog-name> [--csv] [--trace]";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors, spec parse errors (with line context), unknown
/// catalog names (with did-you-mean), and scenario build/run failures.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let csv = args::take_switch(&mut args, "--csv");
    let trace = args::take_switch(&mut args, "--trace");
    let target = super::one_operand(args, USAGE)?;
    let specs = super::load_specs(&target)?;
    if csv {
        println!("{}", RunReport::csv_header());
    }
    for (at, spec) in specs.iter().enumerate() {
        let mut run = Scenario::from_spec(spec)?;
        let report = if trace {
            let registry = Registry::new();
            run.observe(&registry);
            let (report, tree) = run.run_traced()?;
            eprint!("{tree}");
            eprint!("{}", registry.to_text());
            report
        } else {
            run.run()?
        };
        if csv {
            println!("{}", report.to_csv_row());
        } else {
            if at > 0 {
                println!();
            }
            println!("{report}");
        }
    }
    Ok(())
}
