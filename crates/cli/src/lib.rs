//! # dlk-cli — the `dlk` binary and spool daemon
//!
//! The serving front door of the workspace: everything the
//! [`ScenarioSpec`](dlk_sim::ScenarioSpec) text codec made enumerable
//! data becomes loadable, runnable and queueable from disk.
//!
//! ```text
//! dlk run <spec.dlk | catalog-name> [--csv] [--trace]
//! dlk sweep <grid.dlk> [--jobs N] [--out FILE] [--timeout-secs S] [--metrics FILE]
//! dlk catalog [--filter SUBSTR] [--dump NAME [--to FILE]]
//! dlk serve --spool DIR --out DIR [--jobs N] [--poll-ms M] [--once]
//! dlk top --spool DIR [--refresh-ms M] [--once]
//! dlk bench diff <old.json> <new.json> [--check] [--max-regress PCT]
//! ```
//!
//! `run` executes one spec file (or named catalog entry — an unknown
//! name surfaces the catalog's did-you-mean suggestion) and prints the
//! aligned [`RunReport`](dlk_sim::RunReport) or its CSV row. `sweep`
//! pushes a spec-list file through the work-stealing
//! [`SweepRunner`](dlk_sim::SweepRunner), streaming CSV rows as jobs
//! finish. `serve` is the long-running daemon: it watches a spool
//! directory for `.dlk` files, queues every spec, records each
//! completion in an append-only checkpoint journal, and on restart
//! skips already-completed work — a kill mid-sweep loses at most the
//! in-flight jobs (see [`spool`] for the crash-safety contract). Every
//! scan atomically rewrites a `metrics.json` heartbeat (the shared
//! observability schema, including rolling time series that survive
//! restarts) next to the journal. `top` renders that heartbeat as a
//! live terminal view — sparklines, percentiles, stalled-vs-idle —
//! and `bench diff` compares any two schema-v2 snapshots, the CI
//! regression gate over the committed `BENCH_*.json` baselines.
//!
//! The binary is a thin shell over this library so the whole surface —
//! argument parsing, commands, journal, daemon loop — is unit- and
//! integration-testable in-process.

pub mod args;
pub mod cmd;
pub mod spool;

use dlk_sim::SimError;

/// Top-level usage text (also printed on `dlk help` and usage errors).
pub const USAGE: &str = "\
dlk — DRAM-Locker serving front door

USAGE:
  dlk run <spec.dlk | catalog-name> [--csv] [--trace]
  dlk sweep <grid.dlk> [--jobs N] [--out FILE] [--timeout-secs S]
            [--metrics FILE]
  dlk check <spec.dlk | dir | catalog-name>
  dlk catalog [--filter SUBSTR] [--dump NAME [--to FILE]]
  dlk serve --spool DIR --out DIR [--jobs N] [--poll-ms M] [--once]
            [--timeout-secs S] [--abort-after K]
  dlk top --spool DIR [--refresh-ms M] [--once]
  dlk bench diff <old.json> <new.json> [--check] [--max-regress PCT]
  dlk help

Spec files use the `# dlk-scenario v1` line codec; a file may hold any
number of concatenated specs (each `label` record starts the next one).
Dump a runnable starting point with `dlk catalog --dump <name>`.";

/// Everything the CLI can fail with, mapped to process exit codes by
/// [`run_main`].
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown flag, missing operand). Exit code 2.
    Usage(String),
    /// Spec/scenario-layer failure (parse errors with line context,
    /// unknown catalog names with did-you-mean). Exit code 1.
    Sim(SimError),
    /// Filesystem failure. Exit code 1.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The command ran but (some) work failed. Exit code 1.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::Sim(err) => write!(f, "{err}"),
            CliError::Io { path, error } => write!(f, "{path}: {error}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SimError> for CliError {
    fn from(err: SimError) -> Self {
        CliError::Sim(err)
    }
}

impl CliError {
    /// Wraps a filesystem error with its path.
    pub fn io(path: impl AsRef<std::path::Path>, error: std::io::Error) -> Self {
        CliError::Io { path: path.as_ref().display().to_string(), error }
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

/// Dispatches a full argument vector (without the program name) and
/// returns the process exit code. Errors are printed to stderr; usage
/// errors additionally print the synopsis.
pub fn run_main(args: Vec<String>) -> i32 {
    let mut args = args.into_iter();
    let command = args.next().unwrap_or_else(|| "help".to_owned());
    let rest: Vec<String> = args.collect();
    let result = match command.as_str() {
        "run" => cmd::run::run(rest),
        "sweep" => cmd::sweep::run(rest),
        "check" => cmd::check::run(rest),
        "catalog" => cmd::catalog::run(rest),
        "serve" => cmd::serve::run(rest),
        "top" => cmd::top::run(rest),
        "bench" => cmd::bench::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(()) => 0,
        Err(err) => {
            eprintln!("dlk: {err}");
            if matches!(err, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            err.exit_code()
        }
    }
}
