//! Hand-rolled flag parsing (the workspace vendors no arg-parser
//! crate, and `dlk`'s grammar is four flat subcommands).
//!
//! Each command consumes its `--flag value` pairs and `--switch`es out
//! of the argument vector with [`take_value`] / [`take_switch`], then
//! calls [`positionals`] to reject anything flag-shaped that survived
//! — so unknown flags are hard errors, not silently treated as
//! operands.

use crate::CliError;

/// Removes `--name <value>` from `args`, returning the value.
///
/// # Errors
///
/// Returns [`CliError::Usage`] when the flag is present without a
/// value.
pub fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|arg| arg == name) {
        None => Ok(None),
        Some(at) if at + 1 < args.len() => {
            let value = args.remove(at + 1);
            args.remove(at);
            Ok(Some(value))
        }
        Some(_) => Err(CliError::Usage(format!("{name} needs a value"))),
    }
}

/// Removes the switch `--name` from `args`, returning its presence.
pub fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|arg| arg == name) {
        Some(at) => {
            args.remove(at);
            true
        }
        None => false,
    }
}

/// Everything left must be positional: the first surviving `--flag` is
/// an unknown-flag error naming the command's usage line.
///
/// # Errors
///
/// Returns [`CliError::Usage`].
pub fn positionals(args: Vec<String>, usage: &str) -> Result<Vec<String>, CliError> {
    if let Some(flag) = args.iter().find(|arg| arg.starts_with("--")) {
        return Err(CliError::Usage(format!("unknown flag '{flag}'\n  {usage}")));
    }
    Ok(args)
}

/// Parses a flag value as an unsigned number.
///
/// # Errors
///
/// Returns [`CliError::Usage`] naming the flag.
pub fn parse_count(name: &str, raw: &str) -> Result<u64, CliError> {
    raw.parse().map_err(|_| CliError::Usage(format!("{name} expects a number, got '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_consumed_in_any_position() {
        let mut args: Vec<String> = ["a", "--jobs", "4", "b", "--csv"].map(str::to_owned).to_vec();
        assert_eq!(take_value(&mut args, "--jobs").unwrap().as_deref(), Some("4"));
        assert!(take_switch(&mut args, "--csv"));
        assert!(!take_switch(&mut args, "--csv"));
        assert_eq!(positionals(args, "usage").unwrap(), ["a", "b"]);
    }

    #[test]
    fn dangling_and_unknown_flags_are_usage_errors() {
        let mut args: Vec<String> = ["--jobs"].map(str::to_owned).to_vec();
        assert!(matches!(take_value(&mut args, "--jobs"), Err(CliError::Usage(_))));
        let args: Vec<String> = ["x", "--bogus"].map(str::to_owned).to_vec();
        let err = positionals(args, "the usage line").unwrap_err();
        assert!(err.to_string().contains("--bogus") && err.to_string().contains("the usage line"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn counts_parse_or_name_the_flag() {
        assert_eq!(parse_count("--jobs", "8").unwrap(), 8);
        let err = parse_count("--jobs", "lots").unwrap_err();
        assert!(err.to_string().contains("--jobs"));
    }
}
