//! Spool-directory daemon: scan, journal, resume.
//!
//! ## Crash-safety contract
//!
//! The only durable side effect of executing a job is one appended line
//! in `checkpoint.log` (`<status>\t<key>\t<payload>\n`, payload = the
//! report's CSV row for `done`, the error message otherwise). The
//! trailing newline is the commit point: [`Journal::load`] ignores a
//! torn final line without one, and [`serve`] truncates those torn
//! bytes away before its first append (so a resumed entry never lands
//! on the tail of a partial line), meaning a kill at any instant loses
//! at most the jobs that were in flight. `results.csv` is *derived*
//! state — it is rebuilt atomically (temp file + rename) from the
//! journal after every batch, and on the first scan that finds nothing
//! pending (covering a crash between the final journal append and the
//! results rename), with rows ordered by spool position (file name,
//! then spec index), never by completion order. An interrupted sweep
//! that is resumed therefore produces a `results.csv` byte-identical
//! to one that was never interrupted.
//!
//! Job keys are `<file-name>#<index>`: renaming a spool file or
//! reordering specs inside it makes the work look new, which is the
//! conservative direction.

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use dlk_sim::obs::series::parse_series_object;
use dlk_sim::obs::{json, Counter, Gauge, Registry, Sampler};
use dlk_sim::{JobOutcome, JobStatus, RunReport, ScenarioSpec, SweepRunner};

use crate::CliError;

/// Append-only checkpoint journal, inside the `--out` directory.
pub const JOURNAL_FILE: &str = "checkpoint.log";
/// Derived CSV of every `done` job, inside the `--out` directory.
pub const RESULTS_FILE: &str = "results.csv";
/// Metrics heartbeat (shared JSON schema), inside the `--out`
/// directory. Rewritten atomically (temp file + rename) after every
/// scan and on shutdown; an aborted pass leaves it stale, exactly like
/// [`RESULTS_FILE`].
pub const METRICS_FILE: &str = "metrics.json";
/// Samples retained per heartbeat time series — at the default 500ms
/// poll that is a one-minute rolling window, and the whole `series`
/// section stays a few KB no matter how long the daemon runs.
pub const SERIES_CAPACITY: usize = 120;

/// A log sink for daemon progress lines (stderr in the binary, a
/// capturing buffer in tests).
pub type LogFn = dyn Fn(&str) + Send + Sync;

/// Everything `dlk serve` needs to run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory watched for `.dlk` spec files.
    pub spool: PathBuf,
    /// Output directory holding the journal and derived CSV.
    pub out: PathBuf,
    /// Worker threads for the sweep queue.
    pub jobs: usize,
    /// Sleep between spool scans.
    pub poll: Duration,
    /// Exit after the first scan instead of polling forever.
    pub once: bool,
    /// Per-job wall-clock budget.
    pub job_timeout: Option<Duration>,
    /// Test hook: simulate a crash by cancelling the queue (and
    /// returning without rewriting the CSV) after this many journaled
    /// completions.
    pub abort_after: Option<usize>,
    /// Test hook: return after this many scans even without `once`
    /// (exercises multi-scan behavior — poisoned-file dedup, heartbeat
    /// rewrites — without a background thread).
    pub max_scans: Option<usize>,
}

/// What a serve pass did (the daemon loop only returns when `once` is
/// set or an abort fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs executed and journaled across all scans.
    pub executed: usize,
    /// Distinct spooled jobs skipped because the journal already had
    /// them.
    pub skipped: usize,
    /// Executed jobs that did not end `done`.
    pub failed: usize,
    /// Spool scans performed.
    pub scans: usize,
    /// Distinct spool files that failed to parse (each logged once).
    pub poisoned: usize,
    /// The `abort_after` crash hook fired.
    pub aborted: bool,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve: {} executed ({} failed), {} skipped, {} scan{}{}{}",
            self.executed,
            self.failed,
            self.skipped,
            self.scans,
            if self.scans == 1 { "" } else { "s" },
            if self.poisoned > 0 { format!(", {} poisoned", self.poisoned) } else { String::new() },
            if self.aborted { ", aborted" } else { "" },
        )
    }
}

/// One runnable unit discovered in the spool.
#[derive(Debug, Clone)]
pub struct SpoolJob {
    /// Stable identity: `<file-name>#<index>`.
    pub key: String,
    /// The parsed spec.
    pub spec: ScenarioSpec,
}

/// The journal key of spec `index` within spool file `file`.
pub fn job_key(file: &str, index: usize) -> String {
    format!("{file}#{index}")
}

/// What one spool scan found: runnable jobs plus the files that failed
/// to parse (the caller decides how loudly to report those — the
/// daemon logs each poisoned file once and counts it in the heartbeat).
#[derive(Debug, Default)]
pub struct SpoolScan {
    /// Every spec of every parseable `.dlk` file, in file-name order.
    pub jobs: Vec<SpoolJob>,
    /// `(file name, parse error)` for each unparseable `.dlk` file.
    pub poisoned: Vec<(String, String)>,
}

/// Scans the spool directory: every `.dlk` file in file-name order,
/// split into its spec list. A file that fails to parse lands in
/// [`SpoolScan::poisoned`] and is skipped — one poisoned file must not
/// take the daemon down.
///
/// # Errors
///
/// Returns [`CliError::Io`] only when the directory itself is
/// unreadable.
pub fn scan_spool(dir: &Path) -> Result<SpoolScan, CliError> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| CliError::io(dir, e))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "dlk"))
        .collect();
    files.sort();
    let mut scan = SpoolScan::default();
    for path in files {
        let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
        match ScenarioSpec::list_from_file(&path) {
            Ok(specs) => {
                scan.jobs.extend(
                    specs
                        .into_iter()
                        .enumerate()
                        .map(|(index, spec)| SpoolJob { key: job_key(&name, index), spec }),
                );
            }
            Err(err) => scan.poisoned.push((path.display().to_string(), err.to_string())),
        }
    }
    Ok(scan)
}

/// One committed journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// [`JobStatus::token`] of the outcome.
    pub status: String,
    /// The [`job_key`].
    pub key: String,
    /// CSV row (`done`) or one-line error message.
    pub payload: String,
}

impl JournalEntry {
    /// The entry records a successful (`done`) job.
    pub fn is_done(&self) -> bool {
        self.status == JobStatus::Done.token()
    }
}

/// The parsed checkpoint journal: entries in commit order plus a
/// last-write-wins key index.
#[derive(Debug, Default)]
pub struct Journal {
    entries: Vec<JournalEntry>,
    index: HashMap<String, usize>,
    committed_len: u64,
}

impl Journal {
    /// Loads a journal file; a missing file is an empty journal. Only
    /// newline-terminated lines count (a torn tail from a crash is
    /// silently dropped), as are lines that don't split into three
    /// tab-separated fields.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] when the file exists but can't be read.
    pub fn load(path: &Path) -> Result<Self, CliError> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::default()),
            Err(e) => return Err(CliError::io(path, e)),
        };
        let mut journal = Self::default();
        let committed = match text.rfind('\n') {
            Some(last) => &text[..=last],
            None => "",
        };
        journal.committed_len = committed.len() as u64;
        for line in committed.lines() {
            let mut fields = line.splitn(3, '\t');
            if let (Some(status), Some(key), Some(payload)) =
                (fields.next(), fields.next(), fields.next())
            {
                journal.record(JournalEntry {
                    status: status.to_owned(),
                    key: key.to_owned(),
                    payload: payload.to_owned(),
                });
            }
        }
        Ok(journal)
    }

    fn record(&mut self, entry: JournalEntry) {
        self.index.insert(entry.key.clone(), self.entries.len());
        self.entries.push(entry);
    }

    /// The journal already holds an outcome for `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// The (last) committed entry for `key`.
    pub fn get(&self, key: &str) -> Option<&JournalEntry> {
        self.index.get(key).map(|&at| &self.entries[at])
    }

    /// Committed entries, in commit order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Byte length of the committed prefix of the file this journal was
    /// loaded from (up to and including the last `\n`). Appending must
    /// start here: a torn tail left by a crash has to be truncated away
    /// first, or the next entry would be concatenated onto the partial
    /// line and both would parse as one garbage entry on the next load.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Appends one entry durably (write + fsync — the trailing newline
    /// is the commit point), then records it in memory.
    fn append(&mut self, file: &mut File, entry: JournalEntry) -> std::io::Result<()> {
        let line = format!("{}\t{}\t{}\n", entry.status, entry.key, one_line(&entry.payload));
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        self.record(entry);
        Ok(())
    }
}

/// Collapses a payload to one journal-safe line (the journal format is
/// newline-framed and tab-separated).
fn one_line(text: &str) -> String {
    text.replace(['\n', '\t'], " ")
}

/// Per-batch shared state between the daemon loop and the progress
/// callback running on worker threads.
struct Batch {
    journal: Journal,
    file: File,
    completions: usize,
    aborted: bool,
}

/// The daemon's own event counters, alongside whatever the observed
/// sweep queue and scenario runs report into the same registry.
struct ServeMetrics {
    registry: Registry,
    scans: Arc<Counter>,
    executed: Arc<Counter>,
    failed: Arc<Counter>,
    skipped: Arc<Counter>,
    spool_poisoned: Arc<Counter>,
    /// Monotonic across restarts (resumed from the previous heartbeat),
    /// unlike `serve.scans` which counts this process's scans — `dlk
    /// top` uses the pair to tell a stalled daemon from an idle one.
    scan_seq: Arc<Gauge>,
    /// Wall micros the previous heartbeat write took.
    heartbeat_write_us: Arc<Gauge>,
}

impl ServeMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        Self {
            scans: registry.counter("serve.scans"),
            executed: registry.counter("serve.executed"),
            failed: registry.counter("serve.failed"),
            skipped: registry.counter("serve.skipped"),
            spool_poisoned: registry.counter("serve.spool_poisoned"),
            scan_seq: registry.gauge("serve.scan_seq"),
            heartbeat_write_us: registry.gauge("serve.heartbeat_write_us"),
            registry,
        }
    }

    /// Atomically publishes the heartbeat (validate + temp + rename,
    /// via the shared JSON writer): the registry's point-in-time
    /// sections plus the sampler's rolling `series` section, ticked
    /// once here so every heartbeat carries a fresh sample. Returns the
    /// write's wall time (also published as `serve.heartbeat_write_us`
    /// for the *next* heartbeat).
    fn write(&self, out: &Path, sampler: &Mutex<Sampler>) -> Result<Duration, CliError> {
        let path = out.join(METRICS_FILE);
        let start = Instant::now();
        let mut doc = self.registry.to_document("dlk-serve");
        {
            let mut sampler = sampler.lock().expect("serve sampler poisoned");
            sampler.tick();
            sampler.export_into(&mut doc);
        }
        doc.write(&path).map_err(|e| CliError::io(&path, e))?;
        let wall = start.elapsed();
        self.heartbeat_write_us.set(i64::try_from(wall.as_micros()).unwrap_or(i64::MAX));
        Ok(wall)
    }
}

/// Microseconds since the Unix epoch — the sampler's timestamp origin,
/// so replayed history and fresh ticks share one monotone axis across
/// restarts (`dlk top` uses the same clock to age heartbeats).
pub(crate) fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// Replays the previous heartbeat into a fresh sampler: every exported
/// series is seeded back (the ring keeps the newest
/// [`SERIES_CAPACITY`]), and the previous `serve.scan_seq` is returned
/// so the sequence stays monotonic across restarts. A missing or
/// corrupt heartbeat (it is derived state, atomically replaced — a
/// crash can only leave the *old* one) replays nothing.
fn replay_heartbeat(path: &Path, sampler: &mut Sampler) -> u64 {
    let Ok(value) = json::parse_file(path) else { return 0 };
    for object in value.section("series") {
        if let Some((name, samples)) = parse_series_object(object) {
            sampler.seed(&name, samples);
        }
    }
    value
        .section("gauges")
        .iter()
        .find(|g| g.get("name").and_then(json::Value::as_str) == Some("serve.scan_seq"))
        .and_then(|g| g.get("value"))
        .and_then(json::Value::as_u64)
        .unwrap_or(0)
}

/// Runs the daemon loop. Returns after one scan in `once` mode, when
/// the `abort_after` crash hook fires, or never (steady-state daemon).
///
/// # Errors
///
/// Returns [`CliError::Io`] for spool/out directory failures; job
/// failures are journaled, not fatal.
pub fn serve(cfg: &ServeConfig, log: Arc<LogFn>) -> Result<ServeSummary, CliError> {
    fs::create_dir_all(&cfg.out).map_err(|e| CliError::io(&cfg.out, e))?;
    let journal_path = cfg.out.join(JOURNAL_FILE);
    let journal = Journal::load(&journal_path)?;
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&journal_path)
        .map_err(|e| CliError::io(&journal_path, e))?;
    // Drop any torn tail from a crashed predecessor before appending:
    // `load` ignored those bytes, and leaving them would glue the next
    // entry onto the partial line, corrupting both on the next load.
    file.set_len(journal.committed_len()).map_err(|e| CliError::io(&journal_path, e))?;

    let mut summary =
        ServeSummary { executed: 0, skipped: 0, failed: 0, scans: 0, poisoned: 0, aborted: false };
    let metrics = ServeMetrics::new();
    // The rolling time series survive restarts the same way results do:
    // the previous heartbeat (derived, atomically replaced) is replayed
    // as seed history, and the scan sequence number picks up where the
    // dead daemon left off.
    let mut sampler =
        Sampler::new(&metrics.registry, SERIES_CAPACITY).with_origin_us(unix_micros());
    let mut scan_seq = replay_heartbeat(&cfg.out.join(METRICS_FILE), &mut sampler);
    if scan_seq > 0 {
        log(&format!("serve: resuming heartbeat history at scan #{scan_seq}"));
    }
    let sampler = Arc::new(Mutex::new(sampler));
    let mut seen_skipped: HashSet<String> = HashSet::new();
    let mut poisoned_logged: HashSet<String> = HashSet::new();
    let mut results_synced = false;
    let batch = Arc::new(Mutex::new(Batch { journal, file, completions: 0, aborted: false }));

    loop {
        summary.scans += 1;
        scan_seq += 1;
        metrics.scan_seq.set(i64::try_from(scan_seq).unwrap_or(i64::MAX));
        metrics.scans.inc();
        let scan = scan_spool(&cfg.spool)?;
        // Report each poisoned file once per daemon lifetime, not once
        // per scan — a steady-state daemon polling a bad file would
        // otherwise flood the log with the same line forever.
        for (file, err) in &scan.poisoned {
            if poisoned_logged.insert(file.clone()) {
                summary.poisoned += 1;
                metrics.spool_poisoned.inc();
                log(&format!("serve: skipping {file}: {err}"));
            }
        }
        let jobs = scan.jobs;
        let pending: Vec<SpoolJob> = {
            let state = batch.lock().expect("serve batch state poisoned");
            jobs.iter()
                .filter(|job| {
                    if state.journal.contains(&job.key) {
                        if seen_skipped.insert(job.key.clone()) {
                            summary.skipped += 1;
                            metrics.skipped.inc();
                        }
                        false
                    } else {
                        true
                    }
                })
                .cloned()
                .collect()
        };

        if !pending.is_empty() {
            log(&format!(
                "serve: scan {}: {} pending of {} spooled",
                summary.scans,
                pending.len(),
                jobs.len()
            ));
            let (executed, failed) =
                run_batch(cfg, &batch, &pending, &log, &metrics.registry, &sampler);
            summary.executed += executed;
            summary.failed += failed;
            metrics.executed.add(executed as u64);
            metrics.failed.add(failed as u64);
            let state = batch.lock().expect("serve batch state poisoned");
            if state.aborted {
                // Simulated crash: leave results.csv (and the metrics
                // heartbeat) exactly as a real kill would — stale, to
                // be rebuilt on resume.
                summary.aborted = true;
                return Ok(summary);
            }
            write_results(&cfg.out, &jobs, &state.journal)?;
            results_synced = true;
            log(&format!("serve: scan {}: {executed} executed, {failed} failed", summary.scans));
        } else if !results_synced {
            // Nothing pending, but the derived CSV may still be stale:
            // a crash in the window between the last journaled job and
            // the results rename leaves the journal complete while
            // results.csv is missing or behind. Rebuild it once.
            let state = batch.lock().expect("serve batch state poisoned");
            if !state.journal.entries().is_empty() {
                write_results(&cfg.out, &jobs, &state.journal)?;
            }
            results_synced = true;
        }

        // The heartbeat: every scan ends with a fresh metrics.json, so
        // an operator (or the CI smoke) can always read a consistent,
        // current view — including the shutdown scan in `once` mode.
        let write_wall = metrics.write(&cfg.out, &sampler)?;
        if write_wall > cfg.poll {
            log(&format!(
                "serve: warning: heartbeat write took {write_wall:?}, longer than the {:?} poll \
                 interval — the heartbeat can never be current; raise --poll-ms",
                cfg.poll
            ));
        }

        if cfg.once || cfg.max_scans.is_some_and(|max| summary.scans >= max) {
            return Ok(summary);
        }
        std::thread::sleep(cfg.poll);
    }
}

/// Executes one batch of pending jobs on the work-stealing queue,
/// journaling each completion from the progress callback. Returns
/// (journaled, journaled-not-done) counts.
fn run_batch(
    cfg: &ServeConfig,
    batch: &Arc<Mutex<Batch>>,
    pending: &[SpoolJob],
    log: &Arc<LogFn>,
    registry: &Registry,
    sampler: &Arc<Mutex<Sampler>>,
) -> (usize, usize) {
    let keys: Arc<Vec<String>> = Arc::new(pending.iter().map(|job| job.key.clone()).collect());
    let specs: Vec<ScenarioSpec> = pending.iter().map(|job| job.spec.clone()).collect();
    let before = batch.lock().expect("serve batch state poisoned").completions;

    let state = Arc::clone(batch);
    let keys_cb = Arc::clone(&keys);
    let log_cb = Arc::clone(log);
    let abort_after = cfg.abort_after;
    let mut runner = SweepRunner::with_threads(cfg.jobs)
        .observe(registry)
        .sample(sampler)
        .on_progress(move |outcome| {
            let mut state = state.lock().expect("serve batch state poisoned");
            if state.aborted {
                // In-flight stragglers after the simulated crash: a dead
                // process journals nothing.
                return false;
            }
            let key = keys_cb[outcome.index].clone();
            let entry = journal_entry(&key, outcome);
            let Batch { journal, file, .. } = &mut *state;
            if let Err(err) = journal.append(file, entry) {
                log_cb(&format!("serve: journal write failed for {key}: {err}"));
                return false;
            }
            state.completions += 1;
            log_cb(&format!(
                "serve: {} {} ({:?}, worker {:?}{})",
                state.journal.entries().last().map_or("?", |e| e.status.as_str()),
                key,
                outcome.wall,
                outcome.worker,
                if outcome.stolen { ", stolen" } else { "" },
            ));
            if abort_after.is_some_and(|k| state.completions >= k) {
                state.aborted = true;
                return false;
            }
            true
        });
    if let Some(limit) = cfg.job_timeout {
        runner = runner.timeout(limit);
    }

    let outcomes = runner.run_jobs(&specs);
    let state = batch.lock().expect("serve batch state poisoned");
    let executed = state.completions - before;
    let failed = outcomes
        .iter()
        .filter(|o| {
            state.journal.get(&keys[o.index]).is_some_and(|entry| !entry.is_done())
                && o.status() != JobStatus::Cancelled
        })
        .count();
    (executed, failed)
}

/// Converts one queue outcome into its journal entry.
fn journal_entry(key: &str, outcome: &JobOutcome) -> JournalEntry {
    let payload = match &outcome.report {
        Ok(report) => report.to_csv_row(),
        Err(err) => err.to_string(),
    };
    JournalEntry { status: outcome.status().token().to_owned(), key: key.to_owned(), payload }
}

/// Rebuilds `results.csv` from the journal: header, then every `done`
/// row in spool order, then `done` rows for journaled keys no longer in
/// the spool (in commit order) so removing a spec file never silently
/// drops its results. Written to a temp file and renamed into place.
fn write_results(out: &Path, jobs: &[SpoolJob], journal: &Journal) -> Result<(), CliError> {
    let mut csv = String::from(RunReport::csv_header());
    csv.push('\n');
    let mut emitted: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for job in jobs {
        if let Some(entry) = journal.get(&job.key) {
            if entry.is_done() {
                csv.push_str(&entry.payload);
                csv.push('\n');
                emitted.insert(job.key.as_str());
            }
        }
    }
    for entry in journal.entries() {
        if entry.is_done() && !emitted.contains(entry.key.as_str()) {
            csv.push_str(&entry.payload);
            csv.push('\n');
        }
    }
    let tmp = out.join(format!("{RESULTS_FILE}.tmp"));
    fs::write(&tmp, csv).map_err(|e| CliError::io(&tmp, e))?;
    let target = out.join(RESULTS_FILE);
    fs::rename(&tmp, &target).map_err(|e| CliError::io(&target, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_ignores_torn_tail_and_malformed_lines() {
        let dir = std::env::temp_dir().join(format!("dlk-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        let text =
            "done\ta.dlk#0\trow,one\nnot a journal line\nfailed\ta.dlk#1\tboom\ndone\ta.dlk#2\ttorn-no-newline";
        fs::write(&path, text).unwrap();
        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.entries().len(), 2);
        assert_eq!(
            journal.committed_len(),
            (text.rfind('\n').unwrap() + 1) as u64,
            "committed_len must stop at the last newline so the torn tail gets truncated"
        );
        assert!(journal.contains("a.dlk#0") && journal.contains("a.dlk#1"));
        assert!(!journal.contains("a.dlk#2"), "torn tail must not count as committed");
        assert_eq!(journal.get("a.dlk#0").unwrap().payload, "row,one");
        assert!(!journal.get("a.dlk#1").unwrap().is_done());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_is_empty() {
        let journal = Journal::load(Path::new("/nonexistent/dir/checkpoint.log")).unwrap();
        assert!(journal.entries().is_empty());
    }

    #[test]
    fn payloads_are_flattened_to_one_line() {
        assert_eq!(one_line("a\nb\tc"), "a b c");
    }
}
