fn main() {
    std::process::exit(dlk_cli::run_main(std::env::args().skip(1).collect()));
}
