//! The object-safe [`Attack`] trait and its implementations.
//!
//! An `Attack` is a *driver* assignable to a scenario: given the
//! running environment (controller + deployed victims + budget) it
//! exercises the pipeline and reports what it achieved. Benign
//! workloads ([`InferenceStream`]) implement the same trait — they are
//! drivers with zero malice, which is what lets one scenario API
//! measure both damage and overhead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dlk_attacks::bfa::{BfaConfig, BitSearch};
use dlk_attacks::hammer::{HammerConfig, HammerDriver};
use dlk_attacks::pta::{PtaAttack, PtaConfig};
use dlk_attacks::RandomAttack;
use dlk_dnn::{models, BitIndex, QuantizedMlp, Tensor};
use dlk_engine::{ShardedEngine, Trace, TraceReplay, Workload};
use dlk_memctrl::{MemRequest, MemoryController};

use crate::error::SimError;
use crate::report::AttackOutcome;
use crate::scenario::Budget;
use crate::victim::DeployedVictim;

/// The attack's view of a running scenario.
pub struct RunEnv<'a> {
    /// The scenario's sharded execution engine (defenses already
    /// mounted on every channel shard).
    pub engine: &'a mut ShardedEngine,
    /// Every deployed victim, in deployment order.
    pub victims: &'a [DeployedVictim],
    /// Each victim's home channel, in deployment order.
    pub homes: &'a [usize],
    /// Index of the victim under attack.
    pub target: usize,
    /// The scenario's activation/iteration budget.
    pub budget: Budget,
    /// Held-out sample size for accuracy trajectories.
    pub eval_batch: usize,
}

impl RunEnv<'_> {
    /// The victim under attack.
    pub fn victim(&self) -> &DeployedVictim {
        &self.victims[self.target]
    }

    /// The target victim's home-channel controller — where classic
    /// single-controller attack drivers run, addressed in that shard's
    /// local address space. Engine-wide attacks (trace replay) use
    /// [`RunEnv::engine`] directly with global addresses.
    pub fn ctrl(&mut self) -> &mut MemoryController {
        self.engine.shard_mut(self.homes[self.target]).controller_mut()
    }
}

/// A driver assignable to a scenario.
pub trait Attack {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Exercises the pipeline against the target victim.
    ///
    /// # Errors
    ///
    /// Propagates controller/layout errors; attacks never fail just
    /// because a defense stopped them (that is a reported outcome).
    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError>;
}

impl Attack for Box<dyn Attack> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        (**self).execute(env)
    }
}

fn hammer_config(budget: Budget) -> HammerConfig {
    HammerConfig { max_activations: budget.max_activations, check_interval: budget.check_interval }
}

/// The raw RowHammer campaign: hammer the target victim's primary data
/// row until bit `bit` flips or the budget runs out.
#[derive(Debug, Clone, Copy)]
pub struct HammerAttack {
    /// Bit within the victim row to flip.
    pub bit: usize,
}

impl HammerAttack {
    /// A hammer campaign against row-bit `bit`.
    pub fn bit(bit: usize) -> Self {
        Self { bit }
    }
}

impl Attack for HammerAttack {
    fn name(&self) -> &str {
        "hammer"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let victim = &env.victims[env.target];
        let row = victim
            .primary_row(env.ctrl())
            .ok_or_else(|| SimError::Build("hammer attack needs a row-backed victim".to_owned()))?;
        let driver = HammerDriver::new(hammer_config(env.budget));
        let outcome = driver.hammer_bit(env.ctrl(), row, self.bit)?;
        Ok(AttackOutcome {
            landed_flips: u64::from(outcome.flipped),
            requests: outcome.requests,
            denied: outcome.denied,
            ..AttackOutcome::default()
        })
    }
}

/// Direct untrusted probing of the victim's own data address — the
/// quickstart attacker hitting a locked row head-on.
#[derive(Debug, Clone, Copy)]
pub struct RowProbe {
    /// Number of untrusted read attempts.
    pub accesses: u64,
}

impl Attack for RowProbe {
    fn name(&self) -> &str {
        "row-probe"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let start = env.victims[env.target].data_start().ok_or_else(|| {
            SimError::Build("row probe needs a victim with a data address".to_owned())
        })?;
        let mut outcome = AttackOutcome::default();
        for _ in 0..self.accesses {
            let done = env.ctrl().service(MemRequest::read(start, 1).untrusted())?;
            outcome.requests += 1;
            if done.denied {
                outcome.denied += 1;
            }
        }
        Ok(outcome)
    }
}

/// The BFA realized physically: gradient-rank the weight bits in the
/// image's *edge row* (the only row whose aggressor an OS-isolated
/// attacker can activate), then hammer the best one.
#[derive(Debug, Clone, Copy)]
pub struct BfaHammerAttack {
    /// Batch size for the white-box gradient scan.
    pub batch: usize,
}

impl Default for BfaHammerAttack {
    fn default() -> Self {
        Self { batch: 48 }
    }
}

impl Attack for BfaHammerAttack {
    fn name(&self) -> &str {
        "bfa-hammer"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let handle = &env.victims[env.target];
        let victim = handle
            .victim()
            .ok_or_else(|| SimError::Build("BFA needs a model-backed victim".to_owned()))?;
        let layout = handle.layout().ok_or_else(|| {
            SimError::Build("BFA hammer needs a contiguously deployed model".to_owned())
        })?;
        let (x, y) = victim.dataset.test_sample(self.batch, 0);
        let target = models::best_edge_target(&victim.model, layout, &x, &y)
            .or_else(|| {
                // No edge-row flip increases the loss: fall back to the
                // image's first MSB so the campaign still runs.
                let (layer, weight) = victim.model.locate_byte(0)?;
                Some(BitIndex { layer, weight, bit: 7 })
            })
            .ok_or_else(|| SimError::Build("victim model is empty".to_owned()))?;
        let (row, bit) = layout.bit_location(&victim.model, target)?;
        let driver = HammerDriver::new(hammer_config(env.budget));
        let outcome = driver.hammer_bit(env.ctrl(), row, bit)?;
        Ok(AttackOutcome {
            landed_flips: u64::from(outcome.flipped),
            requests: outcome.requests,
            denied: outcome.denied,
            target_bits: vec![target],
            flipped_bits: if outcome.flipped { vec![target] } else { vec![] },
            ..AttackOutcome::default()
        })
    }
}

/// The progressive bit search of Fig. 8: each iteration the white-box
/// attacker picks the most damaging flip of the *current* model state;
/// the flip lands with probability `success_rate` (1.0 undefended;
/// 0.096 under DRAM-Locker at ±20% process variation, §IV-D). Landed
/// flips are realized in the DRAM-resident image, so the recorded
/// accuracy trajectory is exactly what the victim would reload.
#[derive(Debug, Clone, Copy)]
pub struct ProgressiveBfa {
    /// Probability each iteration's flip lands.
    pub success_rate: f64,
    /// RNG seed for the landing draw.
    pub seed: u64,
    /// Bit-search configuration.
    pub config: BfaConfig,
}

impl ProgressiveBfa {
    /// A progressive BFA with the default search configuration.
    pub fn new(success_rate: f64, seed: u64) -> Self {
        Self { success_rate, seed, config: BfaConfig::default() }
    }
}

impl Attack for ProgressiveBfa {
    fn name(&self) -> &str {
        "bfa-progressive"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let mut search = BitSearch::new(self.config);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let success_rate = self.success_rate;
        flip_campaign(
            env,
            "progressive BFA",
            move || success_rate >= 1.0 || rng.random_bool(success_rate),
            move |model, x, y| search.next_flip(model, x, y),
        )
    }
}

/// The Fig. 1(a) baseline: uniformly random weight-bit flips injected
/// into the DRAM-resident image, one per iteration.
#[derive(Debug, Clone, Copy)]
pub struct RandomFlipAttack {
    /// RNG seed for bit selection.
    pub seed: u64,
}

impl RandomFlipAttack {
    /// A random flipper with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Attack for RandomFlipAttack {
    fn name(&self) -> &str {
        "random-flip"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let mut random = RandomAttack::new(self.seed);
        flip_campaign(env, "random-flip", || true, move |model, _, _| Some(random.next_flip(model)))
    }
}

/// Shared skeleton of the progressive flip attacks: each iteration
/// draws whether the flip lands, selects it on the *current* model
/// state, realizes it in the DRAM-resident image, and records the
/// accuracy trajectory. Selection is skipped for non-landing
/// iterations (the white-box search only pays off when the flip can be
/// realized).
fn flip_campaign(
    env: &mut RunEnv<'_>,
    kind: &str,
    mut lands: impl FnMut() -> bool,
    mut select: impl FnMut(&QuantizedMlp, &Tensor, &[usize]) -> Option<BitIndex>,
) -> Result<AttackOutcome, SimError> {
    let handle = &env.victims[env.target];
    let victim = handle
        .victim()
        .ok_or_else(|| SimError::Build(format!("{kind} needs a model-backed victim")))?;
    let layout = handle
        .layout()
        .ok_or_else(|| SimError::Build(format!("{kind} needs a contiguously deployed model")))?;
    let (x, y) = victim.dataset.test_sample(env.eval_batch, 0);
    let mut model = handle
        .model_from_dram(env.ctrl().dram())?
        .ok_or_else(|| SimError::Build("victim has no DRAM-resident model".to_owned()))?;
    let mut outcome = AttackOutcome::default();
    outcome.curve.push((0.0, model.accuracy(&x, &y)? * 100.0));
    for iteration in 1..=env.budget.iterations {
        if lands() {
            if let Some(flip) = select(&model, &x, &y) {
                let (row, bit) = layout.bit_location(&model, flip)?;
                env.ctrl().dram_mut().flip_bit(row, bit)?;
                model.flip_bit(flip)?;
                outcome.landed_flips += 1;
                outcome.target_bits.push(flip);
                outcome.flipped_bits.push(flip);
            }
        }
        outcome.curve.push((iteration as f64, model.accuracy(&x, &y)? * 100.0));
    }
    Ok(outcome)
}

/// The §V Page Table Attack: stage a poisoned copy of weight page 0 at
/// the frame one PFN-bit flip away, then hammer the PTE row.
#[derive(Debug, Clone, Copy)]
pub struct PageTablePoison {
    /// Which PFN bit to flip.
    pub pfn_bit: u32,
    /// XOR mask applied to the staged payload (0x80 flips every MSB).
    pub payload_xor: u8,
}

impl Default for PageTablePoison {
    fn default() -> Self {
        Self { pfn_bit: 1, payload_xor: 0x80 }
    }
}

impl Attack for PageTablePoison {
    fn name(&self) -> &str {
        "page-table"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let handle = &env.victims[env.target];
        let victim = handle
            .victim()
            .ok_or_else(|| SimError::Build("PTA needs a model-backed victim".to_owned()))?;
        let table = *handle.page_table().ok_or_else(|| {
            SimError::Build("PTA needs a paged victim (VictimSpec::paged)".to_owned())
        })?;
        let attack =
            PtaAttack::new(PtaConfig { pfn_bit: self.pfn_bit, hammer: hammer_config(env.budget) });
        let mut payload = victim.model.weight_bytes();
        payload.truncate(table.config().page_size as usize);
        for byte in &mut payload {
            *byte ^= self.payload_xor;
        }
        attack.stage_payload(env.ctrl(), &table, 0, &payload)?;
        let outcome = attack.execute(env.ctrl(), &table, 0)?;
        Ok(AttackOutcome {
            landed_flips: u64::from(outcome.redirected),
            requests: outcome.hammer.requests,
            denied: outcome.hammer.denied,
            redirected: outcome.redirected,
            ..AttackOutcome::default()
        })
    }
}

/// Benign victim traffic: stream the weight image through the
/// controller as the victim's inference loop would, to measure the
/// defense's overhead on legitimate reads (Table II prose).
#[derive(Debug, Clone, Copy)]
pub struct InferenceStream {
    /// Inference batches (full passes over the weight image).
    pub batches: u64,
    /// Bytes per read request.
    pub chunk: usize,
}

impl Default for InferenceStream {
    fn default() -> Self {
        Self { batches: 10, chunk: 32 }
    }
}

impl Attack for InferenceStream {
    fn name(&self) -> &str {
        "inference-stream"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let handle = &env.victims[env.target];
        let victim = handle.victim().ok_or_else(|| {
            SimError::Build("inference stream needs a model-backed victim".to_owned())
        })?;
        let layout = handle.layout().ok_or_else(|| {
            SimError::Build("inference stream needs a contiguously deployed model".to_owned())
        })?;
        let (start, end) = layout.phys_range(&victim.model);
        let mapper = *env.ctrl().mapper();
        let row_bytes = mapper.geometry().row_bytes;
        // A zero chunk would never advance the stream.
        let chunk = self.chunk.max(1);
        let mut outcome = AttackOutcome::default();
        for _ in 0..self.batches {
            let mut addr = start;
            while addr < end {
                let (_, col) = mapper.to_dram(addr)?;
                let take = chunk.min((end - addr) as usize).min(row_bytes - col);
                let done = env.ctrl().service(MemRequest::read(addr, take))?;
                outcome.requests += 1;
                if done.denied {
                    outcome.denied += 1;
                }
                addr += take as u64;
            }
        }
        Ok(outcome)
    }
}

/// Trace-driven workload replay through the *whole* engine: requests
/// carry global addresses, the router fans them out across every
/// channel shard, and shards execute in parallel when the scenario's
/// [`EngineConfig`](dlk_engine::EngineConfig) says so. This is the
/// driver behind the replay and multi-tenant catalog scenarios.
#[derive(Debug, Clone)]
pub struct ReplayWorkload {
    trace: Trace,
    name: String,
}

impl ReplayWorkload {
    /// Replays a recorded trace (e.g. parsed from a trace file with
    /// [`Trace::from_text`]).
    pub fn trace(trace: Trace) -> Self {
        Self { trace, name: "trace-replay".to_owned() }
    }

    /// Replays a generated workload pattern.
    pub fn workload(workload: &Workload) -> Self {
        Self { trace: workload.trace(), name: "workload-replay".to_owned() }
    }

    /// Replays several tenants' workloads interleaved round-robin —
    /// the multi-tenant mix.
    pub fn tenants(tenants: &[Workload]) -> Self {
        Self { trace: Workload::multi_tenant(tenants), name: "multi-tenant-replay".to_owned() }
    }
}

impl Attack for ReplayWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let outcome = env.engine.replay(TraceReplay::new(&self.trace))?;
        Ok(AttackOutcome {
            requests: outcome.len() as u64,
            denied: outcome.denied(),
            ..AttackOutcome::default()
        })
    }
}
