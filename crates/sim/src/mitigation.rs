//! The object-safe [`Mitigation`] trait and its implementations.
//!
//! A `Mitigation` is a *mountable* defense: given the scenario's
//! geometry and the victims' guarded physical ranges it produces the
//! [`DefenseHook`] the controller will consult on every request. After
//! the run it can read its own action count back out of the mounted
//! hook (via [`DefenseHook::as_any`]), which is how the unified
//! [`RunReport`](crate::RunReport) carries per-defense mitigation
//! counts without knowing any concrete defense type.

use dlk_defenses::{CounterDefenseHook, RowSwapDefense, RowTracker, Shadow, SwapPolicy};
use dlk_dram::{DramDevice, DramGeometry, RowAddr};
use dlk_locker::{DramLocker, LockTarget, LockerConfig, ProtectionPlan};
use dlk_memctrl::{AddressMapper, DefenseHook, HookAction, MemRequest};

use crate::error::SimError;

/// Everything a mitigation needs to mount itself on a scenario.
pub struct MountCtx<'a> {
    /// The device geometry.
    pub geometry: DramGeometry,
    /// The controller's address mapper.
    pub mapper: &'a AddressMapper,
    /// Physical byte ranges the deployed victims asked to have guarded.
    pub guarded: &'a [(u64, u64)],
}

/// A defense assignable to a scenario.
pub trait Mitigation {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Builds the controller hook for this scenario.
    ///
    /// # Errors
    ///
    /// Returns an error when the defense cannot cover the guarded
    /// ranges (lock-table capacity, unmappable ranges, …).
    fn mount(&self, ctx: &MountCtx<'_>) -> Result<Box<dyn DefenseHook>, SimError>;

    /// Defensive actions the mounted `hook` took, read back after the
    /// run. The default reports zero for hooks that expose no stats.
    fn actions(&self, hook: &dyn DefenseHook) -> u64 {
        let _ = hook;
        0
    }
}

impl Mitigation for Box<dyn Mitigation> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn mount(&self, ctx: &MountCtx<'_>) -> Result<Box<dyn DefenseHook>, SimError> {
        (**self).mount(ctx)
    }

    fn actions(&self, hook: &dyn DefenseHook) -> u64 {
        (**self).actions(hook)
    }
}

/// DRAM-Locker mounted through a [`ProtectionPlan`] over the guarded
/// ranges.
#[derive(Debug, Clone)]
pub struct LockerMitigation {
    config: LockerConfig,
    target: LockTarget,
    radius: u32,
}

impl LockerMitigation {
    /// The paper's configuration: lock the rows *adjacent* to the
    /// guarded data (the aggressor-candidate rows).
    pub fn adjacent() -> Self {
        Self::new(LockerConfig::default(), LockTarget::AdjacentRows)
    }

    /// The ablation configuration: lock the guarded data rows
    /// themselves (maximum unlock churn).
    pub fn data_rows() -> Self {
        Self::new(LockerConfig::default(), LockTarget::DataRows)
    }

    /// A locker with an explicit configuration and lock target.
    pub fn new(config: LockerConfig, target: LockTarget) -> Self {
        Self { config, target, radius: 1 }
    }

    /// Sets the lock radius (2 covers Half-Double-style distance-2
    /// disturbance).
    pub fn with_radius(mut self, radius: u32) -> Self {
        self.radius = radius.max(1);
        self
    }
}

impl From<LockerMitigation> for crate::spec::DefenseSpec {
    fn from(m: LockerMitigation) -> Self {
        crate::spec::DefenseSpec::Locker { config: m.config, target: m.target, radius: m.radius }
    }
}

impl Mitigation for LockerMitigation {
    fn name(&self) -> &str {
        "dram-locker"
    }

    fn mount(&self, ctx: &MountCtx<'_>) -> Result<Box<dyn DefenseHook>, SimError> {
        let mut locker = DramLocker::new(self.config, ctx.geometry);
        if !ctx.guarded.is_empty() {
            let mut plan = ProtectionPlan::new(self.target).with_radius(self.radius);
            for &(start, end) in ctx.guarded {
                plan.protect_range(ctx.mapper, start, end)?;
            }
            plan.apply(&mut locker)?;
        }
        Ok(Box::new(locker))
    }

    fn actions(&self, hook: &dyn DefenseHook) -> u64 {
        hook.as_any()
            .and_then(|any| any.downcast_ref::<DramLocker>())
            .map(|locker| locker.stats().denies + locker.stats().swaps)
            .unwrap_or(0)
    }
}

/// Any counter-based [`RowTracker`] mounted as a targeted-refresh hook.
#[derive(Debug, Clone)]
pub struct TrackerMitigation<T> {
    tracker: T,
    name: String,
}

impl<T: RowTracker + Clone + 'static> TrackerMitigation<T> {
    /// Wraps a tracker; the mounted hook gets a fresh clone of it.
    pub fn new(tracker: T) -> Self {
        let name = tracker.name().to_owned();
        Self { tracker, name }
    }
}

impl<T: RowTracker + Clone + 'static> Mitigation for TrackerMitigation<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn mount(&self, _ctx: &MountCtx<'_>) -> Result<Box<dyn DefenseHook>, SimError> {
        Ok(Box::new(CounterDefenseHook::new(self.tracker.clone())))
    }

    fn actions(&self, hook: &dyn DefenseHook) -> u64 {
        hook.as_any()
            .and_then(|any| any.downcast_ref::<CounterDefenseHook<T>>())
            .map(CounterDefenseHook::mitigations)
            .unwrap_or(0)
    }
}

/// RRS / SRS (swap-based row remapping).
#[derive(Debug, Clone)]
pub struct RowSwapMitigation {
    policy: SwapPolicy,
    threshold: u64,
    seed: u64,
}

impl RowSwapMitigation {
    /// A swap defense triggering at `threshold` activations.
    pub fn new(policy: SwapPolicy, threshold: u64, seed: u64) -> Self {
        Self { policy, threshold, seed }
    }
}

impl From<RowSwapMitigation> for crate::spec::DefenseSpec {
    fn from(m: RowSwapMitigation) -> Self {
        crate::spec::DefenseSpec::RowSwap { policy: m.policy, threshold: m.threshold, seed: m.seed }
    }
}

impl Mitigation for RowSwapMitigation {
    fn name(&self) -> &str {
        match self.policy {
            SwapPolicy::Randomized => "rrs",
            SwapPolicy::Secure => "srs",
        }
    }

    fn mount(&self, _ctx: &MountCtx<'_>) -> Result<Box<dyn DefenseHook>, SimError> {
        Ok(Box::new(RowSwapDefense::new(self.policy, self.threshold, self.seed)))
    }

    fn actions(&self, hook: &dyn DefenseHook) -> u64 {
        hook.as_any()
            .and_then(|any| any.downcast_ref::<RowSwapDefense>())
            .map(RowSwapDefense::swaps)
            .unwrap_or(0)
    }
}

/// SHADOW (intra-subarray shuffling).
#[derive(Debug, Clone)]
pub struct ShadowMitigation {
    threshold: u64,
    seed: u64,
}

impl ShadowMitigation {
    /// A SHADOW defense shuffling at `threshold` activations.
    pub fn new(threshold: u64, seed: u64) -> Self {
        Self { threshold, seed }
    }
}

impl From<ShadowMitigation> for crate::spec::DefenseSpec {
    fn from(m: ShadowMitigation) -> Self {
        crate::spec::DefenseSpec::Shadow { threshold: m.threshold, seed: m.seed }
    }
}

impl Mitigation for ShadowMitigation {
    fn name(&self) -> &str {
        "shadow"
    }

    fn mount(&self, _ctx: &MountCtx<'_>) -> Result<Box<dyn DefenseHook>, SimError> {
        Ok(Box::new(Shadow::new(self.threshold, self.seed)))
    }

    fn actions(&self, hook: &dyn DefenseHook) -> u64 {
        hook.as_any()
            .and_then(|any| any.downcast_ref::<Shadow>())
            .map(Shadow::shuffles)
            .unwrap_or(0)
    }
}

/// Several hooks stacked on one controller: the first non-`Allow`
/// verdict wins, every hook observes every activation, and lookup
/// latencies add up (each defense is separate hardware on the request
/// path).
pub struct HookChain {
    hooks: Vec<Box<dyn DefenseHook>>,
    name: String,
}

impl HookChain {
    /// Chains hooks in consultation order.
    pub fn new(hooks: Vec<Box<dyn DefenseHook>>) -> Self {
        let name = hooks.iter().map(|h| h.name().to_owned()).collect::<Vec<_>>().join("+");
        Self { hooks, name }
    }

    /// The chained hooks, in consultation order.
    pub fn hooks(&self) -> &[Box<dyn DefenseHook>] {
        &self.hooks
    }
}

impl DefenseHook for HookChain {
    fn before_access(
        &mut self,
        request: &MemRequest,
        target: RowAddr,
        dram: &mut DramDevice,
    ) -> HookAction {
        let mut verdict = HookAction::Allow;
        for hook in &mut self.hooks {
            match hook.before_access(request, target, dram) {
                HookAction::Allow => {}
                action => {
                    verdict = action;
                    break;
                }
            }
        }
        verdict
    }

    fn on_activate(&mut self, row: RowAddr, dram: &mut DramDevice) {
        for hook in &mut self.hooks {
            hook.on_activate(row, dram);
        }
    }

    fn check_latency(&self) -> u64 {
        self.hooks.iter().map(|h| h.check_latency()).sum()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_defenses::Graphene;
    use dlk_dram::DramConfig;
    use dlk_memctrl::MappingScheme;

    fn ctx(mapper: &AddressMapper) -> MountCtx<'_> {
        MountCtx { geometry: *mapper.geometry(), mapper, guarded: &[] }
    }

    #[test]
    fn locker_mounts_empty_without_guarded_ranges() {
        let mapper = AddressMapper::new(DramGeometry::tiny(), MappingScheme::BankSequential);
        let mitigation = LockerMitigation::adjacent();
        let hook = mitigation.mount(&ctx(&mapper)).unwrap();
        assert_eq!(hook.name(), "dram-locker");
        assert_eq!(mitigation.actions(hook.as_ref()), 0);
    }

    #[test]
    fn locker_guards_ranges_through_the_plan() {
        let mapper = AddressMapper::new(DramGeometry::tiny(), MappingScheme::BankSequential);
        let guarded = [(10 * 64u64, 11 * 64u64)];
        let ctx = MountCtx { geometry: *mapper.geometry(), mapper: &mapper, guarded: &guarded };
        let hook = LockerMitigation::adjacent().mount(&ctx).unwrap();
        let locker = hook.as_any().unwrap().downcast_ref::<DramLocker>().unwrap();
        assert_eq!(locker.lock_table().len(), 2, "two neighbours of row 10");
    }

    #[test]
    fn tracker_mitigation_reports_refreshes() {
        let mapper = AddressMapper::new(DramGeometry::tiny(), MappingScheme::BankSequential);
        let mitigation = TrackerMitigation::new(Graphene::new(64, 4));
        let mut hook = mitigation.mount(&ctx(&mapper)).unwrap();
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let row = RowAddr::new(0, 0, 5);
        for _ in 0..16 {
            hook.on_activate(row, &mut dram);
        }
        assert!(mitigation.actions(hook.as_ref()) > 0);
    }

    #[test]
    fn chain_first_verdict_wins_and_latency_sums() {
        let mapper = AddressMapper::new(DramGeometry::tiny(), MappingScheme::BankSequential);
        let guarded = [(10 * 64u64, 11 * 64u64)];
        let ctx = MountCtx { geometry: *mapper.geometry(), mapper: &mapper, guarded: &guarded };
        let locker = LockerMitigation::data_rows().mount(&ctx).unwrap();
        let graphene = TrackerMitigation::new(Graphene::new(64, 4)).mount(&ctx).unwrap();
        let mut chain = HookChain::new(vec![locker, graphene]);
        assert_eq!(chain.name(), "dram-locker+graphene");
        assert_eq!(chain.check_latency(), 2);
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let locked = RowAddr::new(0, 0, 10);
        let request = MemRequest::read(10 * 64, 1).untrusted();
        assert_eq!(chain.before_access(&request, locked, &mut dram), HookAction::Deny);
    }
}
