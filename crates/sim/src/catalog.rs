//! The named scenario registry.
//!
//! Every attack × defense combination the paper evaluates is a named,
//! enumerable scenario — and since the spec redesign each entry *is
//! data*: a [`ScenarioSpec`] that can be printed, diffed, persisted
//! through the spec codec and fed to sweep grids. [`catalog`] lists the
//! entries, [`find`] looks one up (with a did-you-mean suggestion on
//! a miss), and [`CatalogEntry::scenario`] hands back a pre-loaded
//! builder so callers can tweak budgets or geometry before running.
//! Head-to-head sweeps are one loop over the catalog — or one
//! [`SweepGrid`](crate::sweep::SweepGrid) over any entry's spec.

use dlk_attacks::bfa::BfaConfig;
use dlk_dnn::models::ModelKind;
use dlk_engine::{EngineConfig, Workload};

use crate::error::SimError;
use crate::scenario::{Budget, ScenarioBuilder};
use crate::spec::{AttackSpec, DefenseSpec, ScenarioSpec};
use crate::victim::VictimSpec;

/// What a scenario is expected to show when swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// The attack visibly harms the victim.
    Harmed,
    /// The defense contains the attack; the victim is unharmed.
    Contained,
    /// No containment claim (statistical or overhead scenarios).
    Any,
}

/// One named scenario: metadata plus the full declarative spec.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Unique scenario name (`attack-vs-defense`).
    pub name: &'static str,
    /// The paper artifact this scenario reproduces.
    pub artifact: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Sweep expectation.
    pub expected: Expected,
    /// The scenario, as data (label = `name`).
    pub spec: ScenarioSpec,
}

impl CatalogEntry {
    /// A builder pre-loaded with this entry's spec (victims trained on
    /// demand at build time).
    pub fn scenario(&self) -> ScenarioBuilder {
        ScenarioBuilder::from_spec(self.spec.clone())
    }
}

const WEIGHT_BASE: u64 = 0x400;
const ROW_BYTES: u64 = 64; // tiny geometry

fn entry(
    name: &'static str,
    artifact: &'static str,
    description: &'static str,
    expected: Expected,
    spec: ScenarioSpec,
) -> CatalogEntry {
    CatalogEntry {
        name,
        artifact,
        description,
        expected,
        spec: ScenarioSpec { label: name.to_owned(), ..spec },
    }
}

fn hammer_base() -> ScenarioSpec {
    ScenarioSpec {
        victims: vec![(VictimSpec::row(20, 0xA5), 0)],
        attack: Some(AttackSpec::Hammer { bit: 77 }),
        budget: Budget { max_activations: 4_000, check_interval: 8, iterations: 1 },
        ..ScenarioSpec::default()
    }
}

fn hammer_vs(defense: DefenseSpec) -> ScenarioSpec {
    ScenarioSpec { defenses: vec![defense], ..hammer_base() }
}

fn bfa_base(success_rate: f64) -> ScenarioSpec {
    ScenarioSpec {
        victims: vec![(VictimSpec::model(ModelKind::Tiny, 42, WEIGHT_BASE), 0)],
        attack: Some(AttackSpec::ProgressiveBfa {
            success_rate,
            seed: 8,
            config: BfaConfig::default(),
        }),
        ..ScenarioSpec::default()
    }
}

/// The ResNet-20-shaped CNN victim under progressive BFA. The bit
/// search walks every conv kernel and the dense head through the same
/// flat indexing as the MLP scenarios; candidate trials are trimmed to
/// keep the 22-layer sweep test-sized.
fn cnn_bfa_base(success_rate: f64) -> ScenarioSpec {
    ScenarioSpec {
        victims: vec![(VictimSpec::model(ModelKind::Resnet20Cnn, 42, WEIGHT_BASE), 0)],
        attack: Some(AttackSpec::ProgressiveBfa {
            success_rate,
            seed: 8,
            config: BfaConfig { candidates_per_layer: 2, bits_considered: Some([6, 7]) },
        }),
        budget: Budget { max_activations: 20_000, check_interval: 8, iterations: 8 },
        eval_batch: 32,
        ..ScenarioSpec::default()
    }
}

fn bfa_hammer_base(model: ModelKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        victims: vec![(VictimSpec::model(model, seed, WEIGHT_BASE), 0)],
        attack: Some(AttackSpec::BfaHammer { batch: 48 }),
        budget: Budget { max_activations: 20_000, check_interval: 8, iterations: 1 },
        ..ScenarioSpec::default()
    }
}

/// The CNN victim's weight-fetch stream replayed over a 2-channel
/// sharded engine: the fetch trace is recorded shard-local against the
/// victim's layout at build time, then lifted to global addresses homed
/// on channel 0 — inference traffic driving the multi-channel pipeline.
fn cnn_inference_2ch() -> ScenarioSpec {
    ScenarioSpec {
        engine: EngineConfig::sharded(2),
        victims: vec![(VictimSpec::model(ModelKind::TinyCnn, 7, WEIGHT_BASE), 0)],
        attack: Some(AttackSpec::weight_fetch(4, 32, 0)),
        ..ScenarioSpec::default()
    }
}

fn pta_base() -> ScenarioSpec {
    ScenarioSpec {
        victims: vec![(VictimSpec::paged(ModelKind::Tiny, 21), 0)],
        attack: Some(AttackSpec::PageTable { pfn_bit: 1, payload_xor: 0x80 }),
        budget: Budget { max_activations: 20_000, check_interval: 8, iterations: 1 },
        ..ScenarioSpec::default()
    }
}

/// Multi-tenant replay over a 4-channel sharded engine: two row
/// victims homed on channels 0 and 1, three benign tenants plus an
/// attacker hammer loop aimed at channel 0's victim. Global rows
/// stripe over 4 channels, so local rows 19/21 of channel 0 (the
/// aggressor-candidate neighbours of victim row 20) are global rows
/// 76/84.
fn multitenant_4ch() -> ScenarioSpec {
    ScenarioSpec {
        engine: EngineConfig::sharded(4),
        victims: vec![(VictimSpec::row(20, 0xA5), 0), (VictimSpec::row(20, 0x5A), 1)],
        attack: Some(AttackSpec::tenants(vec![
            Workload::Sequential { base: 0, len: 8, count: 400 },
            Workload::Strided { base: 0, stride: 4 * ROW_BYTES, len: 4, count: 200 },
            Workload::PointerChase { base: 0, span: 512 * ROW_BYTES, len: 8, count: 400, seed: 11 },
            Workload::HammerLoop {
                addr_a: 76 * ROW_BYTES,
                addr_b: 84 * ROW_BYTES,
                iterations: 200,
            },
        ])),
        ..ScenarioSpec::default()
    }
}

fn with_defense(spec: ScenarioSpec, defense: DefenseSpec) -> ScenarioSpec {
    let mut spec = spec;
    spec.defenses.push(defense);
    spec
}

/// Every named scenario, in evaluation order, as data.
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        entry(
            "hammer-vs-none",
            "Fig. 4 premise",
            "RowHammer flips a victim-row bit on an undefended device",
            Expected::Harmed,
            hammer_base(),
        ),
        entry(
            "hammer-vs-dram-locker",
            "Fig. 4(d)",
            "DRAM-Locker locks the aggressor-candidate rows; every access denied",
            Expected::Contained,
            hammer_vs(DefenseSpec::locker_adjacent()),
        ),
        entry(
            "hammer-vs-graphene",
            "Table I baseline",
            "Graphene's Misra-Gries tracker refreshes before TRH",
            Expected::Contained,
            hammer_vs(DefenseSpec::graphene(64, 8)),
        ),
        entry(
            "hammer-vs-hydra",
            "Table I baseline",
            "Hydra's hybrid tracker refreshes before TRH",
            Expected::Contained,
            hammer_vs(DefenseSpec::hydra(16, 4, 8)),
        ),
        entry(
            "hammer-vs-twice",
            "Table I baseline",
            "TWiCE's pruned counter table refreshes before TRH",
            Expected::Contained,
            hammer_vs(DefenseSpec::twice(8, 64, 1)),
        ),
        entry(
            "hammer-vs-counter-per-row",
            "Table I upper bound",
            "Exact per-row counters refresh before TRH",
            Expected::Contained,
            hammer_vs(DefenseSpec::counter_per_row(8)),
        ),
        entry(
            "hammer-vs-rrs",
            "Table I baseline",
            "Randomized Row-Swap relocates the aggressor; victim data survives",
            Expected::Contained,
            hammer_vs(DefenseSpec::rrs(8, 5)),
        ),
        entry(
            "hammer-vs-srs",
            "Table I baseline",
            "Secure Row-Swap relocates proactively; victim data survives",
            Expected::Contained,
            hammer_vs(DefenseSpec::srs(8, 5)),
        ),
        entry(
            "hammer-vs-shadow",
            "Fig. 7",
            "SHADOW shuffles the subarray; victim data survives",
            Expected::Contained,
            hammer_vs(DefenseSpec::shadow(8, 5)),
        ),
        entry(
            "bfa-hammer-vs-none",
            "§III / Fig. 3(a)",
            "Gradient-ranked edge-row MSB realized by a physical hammer campaign",
            Expected::Any,
            bfa_hammer_base(ModelKind::Tiny, 31),
        ),
        entry(
            "bfa-hammer-vs-dram-locker",
            "§IV / Fig. 4(d)",
            "The same physical BFA campaign, denied by the lock table",
            Expected::Contained,
            with_defense(bfa_hammer_base(ModelKind::Tiny, 31), DefenseSpec::locker_adjacent()),
        ),
        entry(
            "bfa-vs-none",
            "Fig. 8 (without)",
            "Progressive BFA: every chosen flip lands, accuracy collapses",
            Expected::Harmed,
            bfa_base(1.0),
        ),
        entry(
            "bfa-vs-dram-locker",
            "Fig. 8 (with) / §IV-D",
            "Under DRAM-Locker only 9.6% of flips land (±20% variation)",
            Expected::Any,
            bfa_base(0.096),
        ),
        entry(
            "cnn-bfa-vs-none",
            "Fig. 8, CNN victim",
            "Progressive BFA walks ResNet-20-shaped conv kernels; accuracy collapses",
            Expected::Harmed,
            cnn_bfa_base(1.0),
        ),
        entry(
            "cnn-bfa-vs-dram-locker",
            "Fig. 8 (with) / §IV-D, CNN victim",
            "The same conv-kernel BFA with only 9.6% of flips landing under the locker",
            Expected::Any,
            with_defense(cnn_bfa_base(0.096), DefenseSpec::locker_adjacent()),
        ),
        entry(
            "cnn-bfa-hammer-vs-dram-locker",
            "§IV / Fig. 4(d), CNN victim",
            "Physical BFA against the CNN image's edge-row conv kernels, denied",
            Expected::Contained,
            with_defense(bfa_hammer_base(ModelKind::TinyCnn, 7), DefenseSpec::locker_adjacent()),
        ),
        entry(
            "cnn-inference-2ch",
            "scaling (ROADMAP), CNN victim",
            "CNN weight-fetch trace replayed through a 2-channel sharded engine",
            Expected::Contained,
            cnn_inference_2ch(),
        ),
        entry(
            "cnn-inference-2ch-vs-dram-locker",
            "Table II prose, CNN victim",
            "The same 2-channel CNN weight fetch with per-shard lock tables mounted",
            Expected::Contained,
            with_defense(cnn_inference_2ch(), DefenseSpec::locker_adjacent()),
        ),
        entry(
            "random-vs-none",
            "Fig. 1(a)",
            "Uniformly random flips — orders of magnitude weaker than BFA",
            Expected::Any,
            ScenarioSpec {
                victims: vec![(VictimSpec::model(ModelKind::Tiny, 42, WEIGHT_BASE), 0)],
                attack: Some(AttackSpec::RandomFlip { seed: 7 }),
                ..ScenarioSpec::default()
            },
        ),
        entry(
            "pta-vs-none",
            "§V",
            "Page Table Attack redirects a weight page to a poisoned frame",
            Expected::Harmed,
            pta_base(),
        ),
        entry(
            "pta-vs-dram-locker",
            "§V",
            "DRAM-Locker guards the page-table rows; the PTE survives",
            Expected::Contained,
            with_defense(pta_base(), DefenseSpec::locker_adjacent()),
        ),
        entry(
            "inference-vs-dram-locker",
            "Table II prose",
            "Victim inference traffic under adjacent-row locking (overhead run)",
            Expected::Contained,
            ScenarioSpec {
                victims: vec![(VictimSpec::model(ModelKind::Tiny, 3, WEIGHT_BASE), 0)],
                attack: Some(AttackSpec::InferenceStream { batches: 10, chunk: 32 }),
                defenses: vec![DefenseSpec::locker_adjacent()],
                ..ScenarioSpec::default()
            },
        ),
        entry(
            "replay-stream-2ch",
            "scaling (ROADMAP)",
            "Sequential trace replay fanned over a 2-channel sharded engine",
            Expected::Contained,
            ScenarioSpec {
                engine: EngineConfig::sharded(2),
                victims: vec![(VictimSpec::row(20, 0xA5), 0)],
                attack: Some(AttackSpec::replay(Workload::Sequential {
                    base: 0,
                    len: 8,
                    count: 2_000,
                })),
                ..ScenarioSpec::default()
            },
        ),
        entry(
            "replay-chase-2ch",
            "scaling (ROADMAP)",
            "Dependent pointer-chase replay across 2 channels (worst-case locality)",
            Expected::Any,
            ScenarioSpec {
                engine: EngineConfig::sharded(2),
                victims: vec![(VictimSpec::row(20, 0xA5), 0)],
                attack: Some(AttackSpec::replay(Workload::PointerChase {
                    base: 0,
                    span: 512 * ROW_BYTES,
                    len: 8,
                    count: 1_000,
                    seed: 7,
                })),
                ..ScenarioSpec::default()
            },
        ),
        entry(
            "replay-hammer-vs-dram-locker",
            "Fig. 4(d) via replay",
            "A recorded hammer-loop trace replayed against the lock table",
            Expected::Contained,
            ScenarioSpec {
                victims: vec![(VictimSpec::row(20, 0xA5), 0)],
                attack: Some(AttackSpec::replay(Workload::HammerLoop {
                    addr_a: 19 * ROW_BYTES,
                    addr_b: 21 * ROW_BYTES,
                    iterations: 500,
                })),
                defenses: vec![DefenseSpec::locker_adjacent()],
                ..ScenarioSpec::default()
            },
        ),
        entry(
            "replay-multitenant-4ch",
            "multi-tenant (ROADMAP)",
            "Four tenants interleaved over 4 channels; the hammer tenant corrupts \
             channel 0's victim, channel 1's tenant is untouched",
            Expected::Harmed,
            multitenant_4ch(),
        ),
        entry(
            "replay-multitenant-4ch-vs-dram-locker",
            "multi-tenant (ROADMAP)",
            "The same 4-channel mix with per-shard lock-table slices mounted",
            Expected::Contained,
            with_defense(multitenant_4ch(), DefenseSpec::locker_adjacent()),
        ),
    ]
}

/// Looks a scenario up by name.
///
/// # Errors
///
/// Returns [`SimError::UnknownScenario`] for an unknown name, carrying
/// the nearest catalog name by edit distance as a did-you-mean
/// suggestion when one is plausibly a typo.
pub fn find(name: &str) -> Result<CatalogEntry, SimError> {
    let entries = catalog();
    match entries.iter().position(|entry| entry.name == name) {
        Some(index) => Ok(entries.into_iter().nth(index).expect("position is in range")),
        None => {
            let suggestion = entries
                .iter()
                .map(|entry| (edit_distance(name, entry.name), entry.name))
                .min()
                // A suggestion further away than half the query is
                // noise, not a typo.
                .filter(|&(distance, _)| distance <= name.len().max(4) / 2)
                .map(|(_, best)| best.to_owned());
            Err(SimError::UnknownScenario { name: name.to_owned(), suggestion })
        }
    }
}

/// Levenshtein distance (insert/delete/substitute, unit costs).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let substitute = previous[j] + usize::from(ca != cb);
            current.push(substitute.min(previous[j + 1] + 1).min(current[j] + 1));
        }
        previous = current;
    }
    previous[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_plentiful() {
        let names: std::collections::HashSet<_> = catalog().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), catalog().len());
        assert!(catalog().len() >= 6, "the catalog must enumerate at least 6 scenarios");
    }

    #[test]
    fn entries_are_labelled_data() {
        for entry in catalog() {
            assert_eq!(entry.spec.label, entry.name);
        }
    }

    #[test]
    fn every_entry_survives_a_codec_round_trip() {
        for entry in catalog() {
            let text = entry.spec.to_text();
            let parsed = ScenarioSpec::from_text(&text).unwrap();
            assert_eq!(parsed, entry.spec, "{}:\n{text}", entry.name);
        }
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("hammer-vs-dram-locker").is_ok());
        assert!(find("no-such-scenario").is_err());
    }

    #[test]
    fn find_suggests_the_nearest_name() {
        let err = find("hammer-vs-dram-loker").unwrap_err();
        match err {
            SimError::UnknownScenario { suggestion, .. } => {
                assert_eq!(suggestion.as_deref(), Some("hammer-vs-dram-locker"));
            }
            other => panic!("wrong error: {other}"),
        }
        // A name nothing like any entry gets no suggestion.
        let err = find("zzzzzzzzzzzzzzzzzzzzzzzz").unwrap_err();
        assert!(err.to_string() == "unknown scenario 'zzzzzzzzzzzzzzzzzzzzzzzz'", "{err}");
    }

    #[test]
    fn edit_distance_is_sane() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn entries_build_labelled_runs() {
        let entry = find("hammer-vs-none").unwrap();
        let run = entry.scenario().build().unwrap();
        assert_eq!(run.label(), "hammer-vs-none");
    }
}
