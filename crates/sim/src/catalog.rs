//! The named scenario registry.
//!
//! Every attack × defense combination the paper evaluates is a named,
//! enumerable scenario: `catalog()` lists them, [`find`] looks one up,
//! and [`CatalogEntry::scenario`] hands back a fresh builder so callers
//! can tweak budgets or geometry before running. Head-to-head sweeps
//! are one loop over the catalog.

use dlk_attacks::bfa::BfaConfig;
use dlk_defenses::{CounterPerRow, Graphene, Hydra, SwapPolicy, Twice};
use dlk_dnn::models;
use dlk_dnn::WeightLayout;
use dlk_engine::{ChannelRouter, EngineConfig, Workload};
use dlk_memctrl::{AddressMapper, MemCtrlConfig};

use crate::attack::{
    BfaHammerAttack, HammerAttack, InferenceStream, PageTablePoison, ProgressiveBfa,
    RandomFlipAttack, ReplayWorkload,
};
use crate::mitigation::{LockerMitigation, RowSwapMitigation, ShadowMitigation, TrackerMitigation};
use crate::scenario::{Budget, Scenario, ScenarioBuilder};
use crate::victim::VictimSpec;

/// What a scenario is expected to show when swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// The attack visibly harms the victim.
    Harmed,
    /// The defense contains the attack; the victim is unharmed.
    Contained,
    /// No containment claim (statistical or overhead scenarios).
    Any,
}

/// One named scenario.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// Unique scenario name (`attack-vs-defense`).
    pub name: &'static str,
    /// The paper artifact this scenario reproduces.
    pub artifact: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Sweep expectation.
    pub expected: Expected,
    build: fn() -> ScenarioBuilder,
}

impl CatalogEntry {
    /// A fresh builder for this scenario (victims trained on demand).
    pub fn scenario(&self) -> ScenarioBuilder {
        (self.build)().label(self.name)
    }
}

fn hammer_base() -> ScenarioBuilder {
    Scenario::builder()
        .victim(VictimSpec::row(20, 0xA5))
        .attack(HammerAttack::bit(77))
        .budget(Budget { max_activations: 4_000, check_interval: 8, iterations: 1 })
}

fn bfa_base(success_rate: f64) -> ScenarioBuilder {
    Scenario::builder()
        .victim(VictimSpec::model(models::victim_tiny(42), 0x400))
        .attack(ProgressiveBfa::new(success_rate, 8))
        .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 10 })
}

/// The ResNet-20-shaped CNN victim under progressive BFA. The bit
/// search walks every conv kernel and the dense head through the same
/// flat indexing as the MLP scenarios; candidate trials are trimmed to
/// keep the 22-layer sweep test-sized.
fn cnn_bfa_base(success_rate: f64) -> ScenarioBuilder {
    Scenario::builder()
        .victim(VictimSpec::model(models::victim_resnet20_cnn(42), 0x400))
        .attack(ProgressiveBfa {
            success_rate,
            seed: 8,
            config: BfaConfig { candidates_per_layer: 2, bits_considered: Some([6, 7]) },
        })
        .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 8 })
        .eval_batch(32)
}

/// The CNN victim's weight-fetch stream replayed over a 2-channel
/// sharded engine: the fetch trace is recorded shard-local against the
/// victim's layout, then lifted to global addresses homed on channel 0
/// — inference traffic driving the multi-channel pipeline.
fn cnn_inference_2ch() -> ScenarioBuilder {
    let victim = models::victim_tiny_cnn(7);
    let config = MemCtrlConfig::tiny_for_tests();
    let mapper = AddressMapper::new(config.dram.geometry, config.scheme);
    let layout = WeightLayout::new(0x400, mapper);
    let local = layout.fetch_trace(&victim.model, 4, 32).expect("image fits the device");
    let router = ChannelRouter::new(2, &mapper);
    let trace = router.globalize_trace(&local, 0).expect("channel 0 exists");
    Scenario::builder()
        .engine(EngineConfig::sharded(2))
        .victim(VictimSpec::model(victim, 0x400))
        .attack(ReplayWorkload::trace(trace))
}

fn pta_base() -> ScenarioBuilder {
    Scenario::builder()
        .victim(VictimSpec::paged(models::victim_tiny(21)))
        .attack(PageTablePoison::default())
        .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
}

/// Multi-tenant replay over a 4-channel sharded engine: two row
/// victims homed on channels 0 and 1, three benign tenants plus an
/// attacker hammer loop aimed at channel 0's victim. Global rows
/// stripe over 4 channels, so local rows 19/21 of channel 0 (the
/// aggressor-candidate neighbours of victim row 20) are global rows
/// 76/84.
fn multitenant_4ch() -> ScenarioBuilder {
    let row_bytes = 64u64; // tiny geometry
    Scenario::builder()
        .engine(EngineConfig::sharded(4))
        .victim_on(VictimSpec::row(20, 0xA5), 0)
        .victim_on(VictimSpec::row(20, 0x5A), 1)
        .attack(ReplayWorkload::tenants(&[
            Workload::Sequential { base: 0, len: 8, count: 400 },
            Workload::Strided { base: 0, stride: 4 * row_bytes, len: 4, count: 200 },
            Workload::PointerChase { base: 0, span: 512 * row_bytes, len: 8, count: 400, seed: 11 },
            Workload::HammerLoop {
                addr_a: 76 * row_bytes,
                addr_b: 84 * row_bytes,
                iterations: 200,
            },
        ]))
}

static CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        name: "hammer-vs-none",
        artifact: "Fig. 4 premise",
        description: "RowHammer flips a victim-row bit on an undefended device",
        expected: Expected::Harmed,
        build: || hammer_base(),
    },
    CatalogEntry {
        name: "hammer-vs-dram-locker",
        artifact: "Fig. 4(d)",
        description: "DRAM-Locker locks the aggressor-candidate rows; every access denied",
        expected: Expected::Contained,
        build: || hammer_base().defense(LockerMitigation::adjacent()),
    },
    CatalogEntry {
        name: "hammer-vs-graphene",
        artifact: "Table I baseline",
        description: "Graphene's Misra-Gries tracker refreshes before TRH",
        expected: Expected::Contained,
        build: || hammer_base().defense(TrackerMitigation::new(Graphene::new(64, 8))),
    },
    CatalogEntry {
        name: "hammer-vs-hydra",
        artifact: "Table I baseline",
        description: "Hydra's hybrid tracker refreshes before TRH",
        expected: Expected::Contained,
        build: || hammer_base().defense(TrackerMitigation::new(Hydra::new(16, 4, 8))),
    },
    CatalogEntry {
        name: "hammer-vs-twice",
        artifact: "Table I baseline",
        description: "TWiCE's pruned counter table refreshes before TRH",
        expected: Expected::Contained,
        build: || hammer_base().defense(TrackerMitigation::new(Twice::new(8, 64, 1))),
    },
    CatalogEntry {
        name: "hammer-vs-counter-per-row",
        artifact: "Table I upper bound",
        description: "Exact per-row counters refresh before TRH",
        expected: Expected::Contained,
        build: || hammer_base().defense(TrackerMitigation::new(CounterPerRow::new(8))),
    },
    CatalogEntry {
        name: "hammer-vs-rrs",
        artifact: "Table I baseline",
        description: "Randomized Row-Swap relocates the aggressor; victim data survives",
        expected: Expected::Contained,
        build: || hammer_base().defense(RowSwapMitigation::new(SwapPolicy::Randomized, 8, 5)),
    },
    CatalogEntry {
        name: "hammer-vs-srs",
        artifact: "Table I baseline",
        description: "Secure Row-Swap relocates proactively; victim data survives",
        expected: Expected::Contained,
        build: || hammer_base().defense(RowSwapMitigation::new(SwapPolicy::Secure, 8, 5)),
    },
    CatalogEntry {
        name: "hammer-vs-shadow",
        artifact: "Fig. 7",
        description: "SHADOW shuffles the subarray; victim data survives",
        expected: Expected::Contained,
        build: || hammer_base().defense(ShadowMitigation::new(8, 5)),
    },
    CatalogEntry {
        name: "bfa-hammer-vs-none",
        artifact: "§III / Fig. 3(a)",
        description: "Gradient-ranked edge-row MSB realized by a physical hammer campaign",
        expected: Expected::Any,
        build: || {
            Scenario::builder()
                .victim(VictimSpec::model(models::victim_tiny(31), 0x400))
                .attack(BfaHammerAttack::default())
                .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
        },
    },
    CatalogEntry {
        name: "bfa-hammer-vs-dram-locker",
        artifact: "§IV / Fig. 4(d)",
        description: "The same physical BFA campaign, denied by the lock table",
        expected: Expected::Contained,
        build: || {
            Scenario::builder()
                .victim(VictimSpec::model(models::victim_tiny(31), 0x400))
                .attack(BfaHammerAttack::default())
                .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
                .defense(LockerMitigation::adjacent())
        },
    },
    CatalogEntry {
        name: "bfa-vs-none",
        artifact: "Fig. 8 (without)",
        description: "Progressive BFA: every chosen flip lands, accuracy collapses",
        expected: Expected::Harmed,
        build: || bfa_base(1.0),
    },
    CatalogEntry {
        name: "bfa-vs-dram-locker",
        artifact: "Fig. 8 (with) / §IV-D",
        description: "Under DRAM-Locker only 9.6% of flips land (±20% variation)",
        expected: Expected::Any,
        build: || bfa_base(0.096),
    },
    CatalogEntry {
        name: "cnn-bfa-vs-none",
        artifact: "Fig. 8, CNN victim",
        description: "Progressive BFA walks ResNet-20-shaped conv kernels; accuracy collapses",
        expected: Expected::Harmed,
        build: || cnn_bfa_base(1.0),
    },
    CatalogEntry {
        name: "cnn-bfa-vs-dram-locker",
        artifact: "Fig. 8 (with) / §IV-D, CNN victim",
        description: "The same conv-kernel BFA with only 9.6% of flips landing under the locker",
        expected: Expected::Any,
        build: || cnn_bfa_base(0.096).defense(LockerMitigation::adjacent()),
    },
    CatalogEntry {
        name: "cnn-bfa-hammer-vs-dram-locker",
        artifact: "§IV / Fig. 4(d), CNN victim",
        description: "Physical BFA against the CNN image's edge-row conv kernels, denied",
        expected: Expected::Contained,
        build: || {
            Scenario::builder()
                .victim(VictimSpec::model(models::victim_tiny_cnn(7), 0x400))
                .attack(BfaHammerAttack::default())
                .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
                .defense(LockerMitigation::adjacent())
        },
    },
    CatalogEntry {
        name: "cnn-inference-2ch",
        artifact: "scaling (ROADMAP), CNN victim",
        description: "CNN weight-fetch trace replayed through a 2-channel sharded engine",
        expected: Expected::Contained,
        build: cnn_inference_2ch,
    },
    CatalogEntry {
        name: "cnn-inference-2ch-vs-dram-locker",
        artifact: "Table II prose, CNN victim",
        description: "The same 2-channel CNN weight fetch with per-shard lock tables mounted",
        expected: Expected::Contained,
        build: || cnn_inference_2ch().defense(LockerMitigation::adjacent()),
    },
    CatalogEntry {
        name: "random-vs-none",
        artifact: "Fig. 1(a)",
        description: "Uniformly random flips — orders of magnitude weaker than BFA",
        expected: Expected::Any,
        build: || {
            Scenario::builder()
                .victim(VictimSpec::model(models::victim_tiny(42), 0x400))
                .attack(RandomFlipAttack::new(7))
                .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 10 })
        },
    },
    CatalogEntry {
        name: "pta-vs-none",
        artifact: "§V",
        description: "Page Table Attack redirects a weight page to a poisoned frame",
        expected: Expected::Harmed,
        build: || pta_base(),
    },
    CatalogEntry {
        name: "pta-vs-dram-locker",
        artifact: "§V",
        description: "DRAM-Locker guards the page-table rows; the PTE survives",
        expected: Expected::Contained,
        build: || pta_base().defense(LockerMitigation::adjacent()),
    },
    CatalogEntry {
        name: "inference-vs-dram-locker",
        artifact: "Table II prose",
        description: "Victim inference traffic under adjacent-row locking (overhead run)",
        expected: Expected::Contained,
        build: || {
            Scenario::builder()
                .victim(VictimSpec::model(models::victim_tiny(3), 0x400))
                .attack(InferenceStream::default())
                .defense(LockerMitigation::adjacent())
        },
    },
    CatalogEntry {
        name: "replay-stream-2ch",
        artifact: "scaling (ROADMAP)",
        description: "Sequential trace replay fanned over a 2-channel sharded engine",
        expected: Expected::Contained,
        build: || {
            Scenario::builder()
                .engine(EngineConfig::sharded(2))
                .victim(VictimSpec::row(20, 0xA5))
                .attack(ReplayWorkload::workload(&Workload::Sequential {
                    base: 0,
                    len: 8,
                    count: 2_000,
                }))
        },
    },
    CatalogEntry {
        name: "replay-chase-2ch",
        artifact: "scaling (ROADMAP)",
        description: "Dependent pointer-chase replay across 2 channels (worst-case locality)",
        expected: Expected::Any,
        build: || {
            Scenario::builder()
                .engine(EngineConfig::sharded(2))
                .victim(VictimSpec::row(20, 0xA5))
                .attack(ReplayWorkload::workload(&Workload::PointerChase {
                    base: 0,
                    span: 512 * 64,
                    len: 8,
                    count: 1_000,
                    seed: 7,
                }))
        },
    },
    CatalogEntry {
        name: "replay-hammer-vs-dram-locker",
        artifact: "Fig. 4(d) via replay",
        description: "A recorded hammer-loop trace replayed against the lock table",
        expected: Expected::Contained,
        build: || {
            Scenario::builder()
                .victim(VictimSpec::row(20, 0xA5))
                .attack(ReplayWorkload::workload(&Workload::HammerLoop {
                    addr_a: 19 * 64,
                    addr_b: 21 * 64,
                    iterations: 500,
                }))
                .defense(LockerMitigation::adjacent())
        },
    },
    CatalogEntry {
        name: "replay-multitenant-4ch",
        artifact: "multi-tenant (ROADMAP)",
        description: "Four tenants interleaved over 4 channels; the hammer tenant corrupts \
                      channel 0's victim, channel 1's tenant is untouched",
        expected: Expected::Harmed,
        build: multitenant_4ch,
    },
    CatalogEntry {
        name: "replay-multitenant-4ch-vs-dram-locker",
        artifact: "multi-tenant (ROADMAP)",
        description: "The same 4-channel mix with per-shard lock-table slices mounted",
        expected: Expected::Contained,
        build: || multitenant_4ch().defense(LockerMitigation::adjacent()),
    },
];

/// Every named scenario, in evaluation order.
pub fn catalog() -> &'static [CatalogEntry] {
    CATALOG
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static CatalogEntry> {
    CATALOG.iter().find(|entry| entry.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_plentiful() {
        let names: std::collections::HashSet<_> = catalog().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), catalog().len());
        assert!(catalog().len() >= 6, "the catalog must enumerate at least 6 scenarios");
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("hammer-vs-dram-locker").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn entries_build_labelled_runs() {
        let entry = find("hammer-vs-none").unwrap();
        let run = entry.scenario().build().unwrap();
        assert_eq!(run.label(), "hammer-vs-none");
    }
}
