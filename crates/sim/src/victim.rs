//! Victim specifications and their deployed form.
//!
//! A [`VictimSpec`] is *data*: it names what lives in DRAM before the
//! attack starts — raw rows, or a `(ModelKind, seed)` pair from the
//! enumerable model zoo — so the whole spec can be compared, persisted
//! through the scenario-spec codec and expanded by sweep grids.
//! [`ScenarioBuilder::victim`](crate::ScenarioBuilder::victim) accepts
//! any number of them (multi-tenant scenarios deploy several victims on
//! one device). Building the scenario resolves the model (training is
//! deterministic and memoized per seed) and turns each spec into a
//! [`DeployedVictim`]: data written to the device, OS page protection
//! installed, and the physical ranges defenses should guard recorded.

use dlk_dnn::models::{ModelKind, Victim};
use dlk_dnn::{QuantizedMlp, WeightLayout};
use dlk_dram::{DramDevice, RowAddr};
use dlk_memctrl::{
    MemCtrlError, MemRequest, MemoryController, PageTable, PageTableConfig, VirtAddr,
};

use crate::error::SimError;

/// A victim workload to deploy on the device, as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimSpec {
    pub(crate) kind: SpecKind,
    pub(crate) os_protect: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecKind {
    /// One or more raw data rows filled with a byte pattern.
    RowSpan { first_row: u64, rows: u64, fill: u8 },
    /// A quantized model deployed contiguously at a base address.
    Model { model: ModelKind, seed: u64, base_phys: u64 },
    /// A quantized model deployed frame-by-frame behind a DRAM-resident
    /// page table (the §V page-table-attack substrate).
    Paged { model: ModelKind, seed: u64, page_size: u64, first_pfn: u64, table_base: u64 },
}

impl VictimSpec {
    /// A single raw data row (global row index) filled with `fill`.
    /// Not OS-protected by default: the row plays the role of generic
    /// victim data an attacker can address (but a defense may lock).
    pub fn row(row: u64, fill: u8) -> Self {
        Self::row_span(row, 1, fill)
    }

    /// `rows` consecutive raw data rows starting at `first_row`.
    pub fn row_span(first_row: u64, rows: u64, fill: u8) -> Self {
        Self { kind: SpecKind::RowSpan { first_row, rows: rows.max(1), fill }, os_protect: false }
    }

    /// The zoo victim `model` trained with `seed`, its weight image
    /// deployed at `base_phys`. OS-protected by default (the MLaaS
    /// threat model: the attacker cannot address the victim's own
    /// pages).
    pub fn model(model: ModelKind, seed: u64, base_phys: u64) -> Self {
        Self { kind: SpecKind::Model { model, seed, base_phys }, os_protect: true }
    }

    /// A victim whose weight pages sit behind a DRAM-resident page
    /// table (defaults: 256-byte pages, first frame 8, table at 4096).
    pub fn paged(model: ModelKind, seed: u64) -> Self {
        Self {
            kind: SpecKind::Paged { model, seed, page_size: 256, first_pfn: 8, table_base: 4096 },
            os_protect: true,
        }
    }

    /// The victim's model kind, for model-backed specs.
    pub fn model_kind(&self) -> Option<ModelKind> {
        match self.kind {
            SpecKind::Model { model, .. } | SpecKind::Paged { model, .. } => Some(model),
            SpecKind::RowSpan { .. } => None,
        }
    }

    /// Swaps the model kind of a model-backed spec (the sweep grid's
    /// model axis); a no-op for raw-row victims.
    pub fn with_model_kind(mut self, new: ModelKind) -> Self {
        match &mut self.kind {
            SpecKind::Model { model, .. } | SpecKind::Paged { model, .. } => *model = new,
            SpecKind::RowSpan { .. } => {}
        }
        self
    }

    /// Overrides the paging layout of a [`VictimSpec::paged`] victim.
    pub fn with_paging(mut self, page_size: u64, first_pfn: u64, table_base: u64) -> Self {
        if let SpecKind::Paged { page_size: ps, first_pfn: fp, table_base: tb, .. } = &mut self.kind
        {
            *ps = page_size;
            *fp = first_pfn;
            *tb = table_base;
        }
        self
    }

    /// Enables or disables OS page protection for this victim.
    pub fn with_os_protect(mut self, on: bool) -> Self {
        self.os_protect = on;
        self
    }

    /// Writes the victim into DRAM and registers OS protection,
    /// resolving `(ModelKind, seed)` into its trained victim.
    pub(crate) fn deploy(&self, ctrl: &mut MemoryController) -> Result<DeployedVictim, SimError> {
        let mapper = *ctrl.mapper();
        let row_bytes = mapper.geometry().row_bytes as u64;
        match self.kind {
            SpecKind::RowSpan { first_row, rows, fill } => {
                let pattern = vec![fill; row_bytes as usize];
                let mut addrs = Vec::with_capacity(rows as usize);
                for r in first_row..first_row + rows {
                    let (row, _) = mapper.to_dram(r * row_bytes)?;
                    ctrl.dram_mut().write_row(row, &pattern)?;
                    addrs.push(row);
                }
                let start = first_row * row_bytes;
                let end = (first_row + rows) * row_bytes;
                if self.os_protect {
                    ctrl.os_protect_range(start, end);
                }
                Ok(DeployedVictim {
                    guarded: vec![(start, end)],
                    kind: DeployedKind::Rows { addrs, start, fill },
                })
            }
            SpecKind::Model { model, seed, base_phys } => {
                let victim = model.victim(seed);
                let layout = WeightLayout::new(base_phys, mapper);
                layout.deploy(&victim.model, ctrl.dram_mut())?;
                let (start, end) = layout.phys_range(&victim.model);
                if self.os_protect {
                    ctrl.os_protect_range(start, end);
                }
                Ok(DeployedVictim {
                    guarded: vec![(start, end)],
                    kind: DeployedKind::Model { victim, layout },
                })
            }
            SpecKind::Paged { model, seed, page_size, first_pfn, table_base } => {
                let victim = model.victim(seed);
                let weight_bytes = victim.model.weight_bytes();
                let pages = (weight_bytes.len() as u64).div_ceil(page_size);
                let table = PageTable::new(PageTableConfig {
                    page_size,
                    base_phys: table_base,
                    num_pages: pages,
                });
                // Install translations and deposit the weight image
                // frame by frame.
                for page in 0..pages {
                    table.map(ctrl.dram_mut(), &mapper, page, first_pfn + page)?;
                    let start = (page * page_size) as usize;
                    let end = (start + page_size as usize).min(weight_bytes.len());
                    let phys = (first_pfn + page) * page_size;
                    let mut offset = 0usize;
                    while start + offset < end {
                        let (row, col) = mapper.to_dram(phys + offset as u64)?;
                        let take = (mapper.geometry().row_bytes - col).min(end - start - offset);
                        let mut row_data = ctrl.dram().read_row(row).map_err(MemCtrlError::Dram)?;
                        row_data[col..col + take]
                            .copy_from_slice(&weight_bytes[start + offset..start + offset + take]);
                        ctrl.dram_mut().write_row(row, &row_data).map_err(MemCtrlError::Dram)?;
                        offset += take;
                    }
                }
                let table_bytes = pages * 8;
                if self.os_protect {
                    // The OS isolates kernel page tables and the
                    // victim's frames; the attacker can only activate
                    // its own (adjacent) rows.
                    ctrl.os_protect_range(table_base, table_base + table_bytes);
                    ctrl.os_protect_range(first_pfn * page_size, (first_pfn + pages) * page_size);
                }
                Ok(DeployedVictim {
                    // Defenses guard the page-table rows: that is what
                    // the attack must hammer to corrupt a translation.
                    guarded: vec![(table_base, table_base + table_bytes)],
                    kind: DeployedKind::Paged { victim, table },
                })
            }
        }
    }
}

#[derive(Debug)]
enum DeployedKind {
    Rows { addrs: Vec<RowAddr>, start: u64, fill: u8 },
    Model { victim: Victim, layout: WeightLayout },
    Paged { victim: Victim, table: PageTable },
}

/// A victim deployed on the scenario's device.
#[derive(Debug)]
pub struct DeployedVictim {
    kind: DeployedKind,
    guarded: Vec<(u64, u64)>,
}

impl DeployedVictim {
    /// The physical byte ranges defenses should guard for this victim.
    pub fn guarded_ranges(&self) -> &[(u64, u64)] {
        &self.guarded
    }

    /// The victim's first (or only) DRAM data row, where applicable.
    pub fn primary_row(&self, ctrl: &MemoryController) -> Option<RowAddr> {
        match &self.kind {
            DeployedKind::Rows { addrs, .. } => addrs.first().copied(),
            DeployedKind::Model { layout, .. } => {
                ctrl.mapper().to_dram(layout.base_phys()).ok().map(|(row, _)| row)
            }
            DeployedKind::Paged { .. } => None,
        }
    }

    /// First physical byte of the victim's data (rows or weight image).
    pub fn data_start(&self) -> Option<u64> {
        match &self.kind {
            DeployedKind::Rows { start, .. } => Some(*start),
            DeployedKind::Model { layout, .. } => Some(layout.base_phys()),
            DeployedKind::Paged { .. } => None,
        }
    }

    /// The trained victim (model + dataset), for model-backed kinds.
    pub fn victim(&self) -> Option<&Victim> {
        match &self.kind {
            DeployedKind::Model { victim, .. } | DeployedKind::Paged { victim, .. } => Some(victim),
            DeployedKind::Rows { .. } => None,
        }
    }

    /// The weight layout, for contiguously deployed models.
    pub fn layout(&self) -> Option<&WeightLayout> {
        match &self.kind {
            DeployedKind::Model { layout, .. } => Some(layout),
            _ => None,
        }
    }

    /// The page table, for paged victims.
    pub fn page_table(&self) -> Option<&PageTable> {
        match &self.kind {
            DeployedKind::Paged { table, .. } => Some(table),
            _ => None,
        }
    }

    /// Reads the model back from the device exactly as the victim
    /// process would — trusted requests through the controller (and the
    /// page-table walk for paged victims), following any defense
    /// redirects. Denied reads yield zero bytes (fail-closed).
    ///
    /// Returns `None` for raw-row victims.
    ///
    /// # Errors
    ///
    /// Propagates controller and layout errors.
    pub fn reload_model(
        &self,
        ctrl: &mut MemoryController,
    ) -> Result<Option<QuantizedMlp>, SimError> {
        let mapper = *ctrl.mapper();
        let row_bytes = mapper.geometry().row_bytes as u64;
        let (victim, bytes) = match &self.kind {
            DeployedKind::Rows { .. } => return Ok(None),
            DeployedKind::Model { victim, layout } => {
                // Contiguous images know every chunk up front, so the
                // whole fetch goes through the controller's batched
                // one-pass path (stats-identical to per-request reads).
                let mut requests = Vec::new();
                let (start, end) = layout.phys_range(&victim.model);
                let mut phys = start;
                while phys < end {
                    let col = mapper.to_dram(phys).map(|(_, col)| col as u64)?;
                    let take = (row_bytes - col).min(end - phys);
                    requests.push(MemRequest::read(phys, take as usize));
                    phys += take;
                }
                let mut bytes = Vec::with_capacity((end - start) as usize);
                for done in ctrl.service_batch(&requests)? {
                    match done.data {
                        Some(data) => bytes.extend_from_slice(&data),
                        // Denied reads yield zero bytes (fail-closed).
                        None => bytes.extend(std::iter::repeat_n(0u8, done.request.len)),
                    }
                }
                (victim, bytes)
            }
            DeployedKind::Paged { victim, table } => {
                let page_size = table.config().page_size;
                let total = victim.model.total_weights();
                let bytes = read_stream(ctrl, total, |ctrl, done| {
                    let pa = table.translate(ctrl.dram(), &mapper, VirtAddr(done as u64))?;
                    let take = (page_size - pa % page_size)
                        .min(row_bytes - pa % row_bytes)
                        .min((total - done) as u64);
                    Ok((pa, take))
                })?;
                (victim, bytes)
            }
        };
        let mut model = victim.model.clone();
        model.load_weight_bytes(&bytes)?;
        Ok(Some(model))
    }

    /// Reads the model back *functionally* (no controller requests, no
    /// hook interaction) — the fast path for iterated searches whose
    /// physical realization is modelled statistically.
    pub fn model_from_dram(&self, dram: &DramDevice) -> Result<Option<QuantizedMlp>, SimError> {
        match &self.kind {
            DeployedKind::Model { victim, layout } => {
                let mut model = victim.model.clone();
                layout.load(&mut model, dram)?;
                Ok(Some(model))
            }
            _ => Ok(None),
        }
    }

    /// Accuracy (percent) of `model` on this victim's held-out sample.
    pub fn accuracy_pct(&self, model: &QuantizedMlp, eval_batch: usize) -> Option<f64> {
        let victim = self.victim()?;
        let (x, y) = victim.dataset.test_sample(eval_batch, 0);
        model.accuracy(&x, &y).ok().map(|a| a * 100.0)
    }

    /// For raw-row victims: reads every data row back through the
    /// controller (trusted, following redirects) and checks the fill
    /// pattern survived.
    pub fn data_intact(&self, ctrl: &mut MemoryController) -> Result<Option<bool>, SimError> {
        let DeployedKind::Rows { addrs, start, fill } = &self.kind else {
            return Ok(None);
        };
        let row_bytes = ctrl.geometry().row_bytes;
        let expected = vec![*fill; row_bytes];
        for index in 0..addrs.len() as u64 {
            let phys = start + index * row_bytes as u64;
            let done = ctrl.service(MemRequest::read(phys, row_bytes))?;
            if done.data.as_deref() != Some(expected.as_slice()) {
                return Ok(Some(false));
            }
        }
        Ok(Some(true))
    }
}

/// Streams `total` bytes through the controller as trusted reads,
/// asking `next` for each step's `(physical address, take)` given the
/// number of bytes read so far. Denied reads yield zero bytes — the
/// fail-closed policy shared by every model reload path.
fn read_stream(
    ctrl: &mut MemoryController,
    total: usize,
    mut next: impl FnMut(&MemoryController, usize) -> Result<(u64, u64), SimError>,
) -> Result<Vec<u8>, SimError> {
    let mut bytes = Vec::with_capacity(total);
    while bytes.len() < total {
        let (pa, take) = next(ctrl, bytes.len())?;
        let done = ctrl.service(MemRequest::read(pa, take as usize))?;
        match done.data {
            Some(data) => bytes.extend_from_slice(&data),
            None => bytes.extend(std::iter::repeat_n(0u8, take as usize)),
        }
    }
    Ok(bytes)
}
