//! The declarative scenario description and its on-disk codec.
//!
//! A [`ScenarioSpec`] is an owned, comparable value describing a whole
//! experiment: geometry preset, execution engine, victims and their
//! home channels, the attack, the defense stack and the budget. Every
//! part is enum-keyed data — [`AttackSpec`], [`DefenseSpec`],
//! [`VictimSpec`](crate::VictimSpec) — so specs can be enumerated
//! (`catalog()`), diffed (`PartialEq`), expanded into grids
//! ([`SweepGrid`](crate::sweep::SweepGrid)) and persisted.
//!
//! The vendored `serde` is marker-only, so the line-oriented
//! [`to_text`](ScenarioSpec::to_text) / [`from_text`](ScenarioSpec::from_text)
//! codec — like [`Trace`]'s — *is* the on-disk format:
//!
//! ```text
//! # dlk-scenario v1
//! label bfa-vs-dram-locker
//! geometry tiny
//! engine serial
//! budget activations=20000 check=8 iterations=10
//! eval-batch 64
//! target 0
//! victim model home=0 protect=1 kind=tiny seed=42 base=0x400
//! attack progressive-bfa rate=0.096 seed=8 candidates=5 bits=6,7
//! defense graphene capacity=64 threshold=8
//! ```
//!
//! [`Scenario::from_spec`](crate::Scenario::from_spec) is the one
//! construction path from a spec to a runnable pipeline;
//! [`ScenarioBuilder`](crate::ScenarioBuilder) is sugar that assembles
//! a spec.

use dlk_attacks::bfa::BfaConfig;
use dlk_defenses::SwapPolicy;
use dlk_dnn::models::ModelKind;
use dlk_engine::{EngineConfig, Workload};
use dlk_locker::{LockTarget, LockerConfig};
use dlk_memctrl::{MemCtrlConfig, Trace};

use crate::error::SimError;
use crate::scenario::Budget;
use crate::victim::{SpecKind, VictimSpec};

/// A named device/controller configuration preset. Geometry is keyed
/// (not free-form) so specs stay diffable and the codec stays exact;
/// free-form `MemCtrlConfig`s remain available through
/// [`ScenarioBuilder::custom_geometry`](crate::ScenarioBuilder::custom_geometry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum GeometrySpec {
    /// The tiny test geometry, TRH 16 (`MemCtrlConfig::tiny_for_tests`).
    #[default]
    Tiny,
    /// The paper-scale default geometry (`MemCtrlConfig::default`).
    Paper,
    /// Paper-scale organization on DDR4 datasheet timing/energy.
    Ddr4,
    /// Paper-scale organization on LPDDR4 datasheet timing/energy.
    Lpddr4,
}

impl GeometrySpec {
    const ALL: [GeometrySpec; 4] =
        [GeometrySpec::Tiny, GeometrySpec::Paper, GeometrySpec::Ddr4, GeometrySpec::Lpddr4];

    /// Materializes the preset.
    pub fn config(self) -> MemCtrlConfig {
        match self {
            GeometrySpec::Tiny => MemCtrlConfig::tiny_for_tests(),
            GeometrySpec::Paper => MemCtrlConfig::default(),
            GeometrySpec::Ddr4 => {
                MemCtrlConfig { dram: dlk_dram::DramConfig::ddr4(), ..MemCtrlConfig::default() }
            }
            GeometrySpec::Lpddr4 => {
                MemCtrlConfig { dram: dlk_dram::DramConfig::lpddr4(), ..MemCtrlConfig::default() }
            }
        }
    }

    /// The stable spec-file token.
    pub fn token(self) -> &'static str {
        match self {
            GeometrySpec::Tiny => "tiny",
            GeometrySpec::Paper => "paper",
            GeometrySpec::Ddr4 => "ddr4",
            GeometrySpec::Lpddr4 => "lpddr4",
        }
    }

    /// Parses a [`token`](GeometrySpec::token) back into a preset.
    pub fn from_token(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|g| g.token() == token)
    }
}

/// An attack (or benign driver) as enum-keyed data. Each variant
/// resolves to one concrete [`Attack`](crate::Attack) driver when the
/// scenario is built.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackSpec {
    /// Raw RowHammer campaign against the victim row's bit `bit`.
    Hammer {
        /// Bit within the victim row to flip.
        bit: usize,
    },
    /// Untrusted probing of the victim's own data address.
    RowProbe {
        /// Number of untrusted read attempts.
        accesses: u64,
    },
    /// Gradient-ranked edge-row MSB realized by a physical hammer.
    BfaHammer {
        /// Batch size for the white-box gradient scan.
        batch: usize,
    },
    /// The progressive bit search of Fig. 8.
    ProgressiveBfa {
        /// Probability each iteration's flip lands.
        success_rate: f64,
        /// RNG seed for the landing draw.
        seed: u64,
        /// Bit-search configuration.
        config: BfaConfig,
    },
    /// Uniformly random weight-bit flips (Fig. 1(a) baseline).
    RandomFlip {
        /// RNG seed for bit selection.
        seed: u64,
    },
    /// The §V page-table attack.
    PageTable {
        /// Which PFN bit to flip.
        pfn_bit: u32,
        /// XOR mask applied to the staged payload.
        payload_xor: u8,
    },
    /// Benign victim inference traffic (overhead runs).
    InferenceStream {
        /// Inference batches (full passes over the weight image).
        batches: u64,
        /// Bytes per read request.
        chunk: usize,
    },
    /// Workload replay through the whole engine; one tenant is a plain
    /// workload replay, several are interleaved round-robin.
    Replay {
        /// The tenants' workload patterns.
        tenants: Vec<Workload>,
    },
    /// Replay of a recorded trace (embedded in the spec through the
    /// trace codec).
    ReplayTrace {
        /// The recorded trace.
        trace: Trace,
    },
    /// The target victim's own weight-fetch trace, recorded against its
    /// layout at build time and replayed through the engine homed on
    /// `channel` — derived inference traffic without embedding a trace.
    WeightFetch {
        /// Input samples per recorded inference pass.
        samples: usize,
        /// Bytes per read request.
        chunk: usize,
        /// Channel the globalized trace is homed on.
        channel: usize,
    },
}

impl AttackSpec {
    /// Replays one generated workload pattern.
    pub fn replay(workload: Workload) -> Self {
        AttackSpec::Replay { tenants: vec![workload] }
    }

    /// Replays several tenants' workloads interleaved round-robin.
    pub fn tenants(tenants: Vec<Workload>) -> Self {
        AttackSpec::Replay { tenants }
    }

    /// Replays a recorded trace.
    pub fn trace(trace: Trace) -> Self {
        AttackSpec::ReplayTrace { trace }
    }

    /// Replays the target victim's weight-fetch trace homed on
    /// `channel`.
    pub fn weight_fetch(samples: usize, chunk: usize, channel: usize) -> Self {
        AttackSpec::WeightFetch { samples, chunk, channel }
    }

    /// The stable spec-file token (also the sweep-axis label).
    pub fn token(&self) -> &'static str {
        match self {
            AttackSpec::Hammer { .. } => "hammer",
            AttackSpec::RowProbe { .. } => "row-probe",
            AttackSpec::BfaHammer { .. } => "bfa-hammer",
            AttackSpec::ProgressiveBfa { .. } => "progressive-bfa",
            AttackSpec::RandomFlip { .. } => "random-flip",
            AttackSpec::PageTable { .. } => "page-table",
            AttackSpec::InferenceStream { .. } => "inference",
            AttackSpec::Replay { .. } => "replay",
            AttackSpec::ReplayTrace { .. } => "replay-trace",
            AttackSpec::WeightFetch { .. } => "weight-fetch",
        }
    }
}

impl From<crate::attack::HammerAttack> for AttackSpec {
    fn from(a: crate::attack::HammerAttack) -> Self {
        AttackSpec::Hammer { bit: a.bit }
    }
}

impl From<crate::attack::RowProbe> for AttackSpec {
    fn from(a: crate::attack::RowProbe) -> Self {
        AttackSpec::RowProbe { accesses: a.accesses }
    }
}

impl From<crate::attack::BfaHammerAttack> for AttackSpec {
    fn from(a: crate::attack::BfaHammerAttack) -> Self {
        AttackSpec::BfaHammer { batch: a.batch }
    }
}

impl From<crate::attack::ProgressiveBfa> for AttackSpec {
    fn from(a: crate::attack::ProgressiveBfa) -> Self {
        AttackSpec::ProgressiveBfa { success_rate: a.success_rate, seed: a.seed, config: a.config }
    }
}

impl From<crate::attack::RandomFlipAttack> for AttackSpec {
    fn from(a: crate::attack::RandomFlipAttack) -> Self {
        AttackSpec::RandomFlip { seed: a.seed }
    }
}

impl From<crate::attack::PageTablePoison> for AttackSpec {
    fn from(a: crate::attack::PageTablePoison) -> Self {
        AttackSpec::PageTable { pfn_bit: a.pfn_bit, payload_xor: a.payload_xor }
    }
}

impl From<crate::attack::InferenceStream> for AttackSpec {
    fn from(a: crate::attack::InferenceStream) -> Self {
        AttackSpec::InferenceStream { batches: a.batches, chunk: a.chunk }
    }
}

/// A defense as enum-keyed data. Each variant resolves to one mounted
/// [`Mitigation`](crate::Mitigation) when the scenario is built.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseSpec {
    /// DRAM-Locker over the guarded ranges.
    Locker {
        /// The full locker configuration.
        config: LockerConfig,
        /// Which rows the protection plan locks.
        target: LockTarget,
        /// Lock radius (2 covers Half-Double distance-2 disturbance).
        radius: u32,
    },
    /// Graphene's Misra-Gries tracker.
    Graphene {
        /// Tracked-entry capacity.
        capacity: usize,
        /// Targeted-refresh threshold.
        threshold: u64,
    },
    /// Hydra's hybrid group/row tracker.
    Hydra {
        /// Rows per counting group.
        group_size: u64,
        /// Group-counter split threshold.
        group_threshold: u64,
        /// Per-row refresh threshold.
        row_threshold: u64,
    },
    /// TWiCE's pruned counter table.
    Twice {
        /// Targeted-refresh threshold.
        threshold: u64,
        /// Activations between prune passes.
        prune_interval: u64,
        /// Prune cutoff count.
        prune_rate: u64,
    },
    /// Exact per-row counters (upper bound).
    CounterPerRow {
        /// Targeted-refresh threshold.
        threshold: u64,
    },
    /// RRS / SRS swap-based row remapping.
    RowSwap {
        /// Randomized (RRS) or Secure (SRS).
        policy: SwapPolicy,
        /// Swap threshold in activations.
        threshold: u64,
        /// RNG seed for swap-partner selection.
        seed: u64,
    },
    /// SHADOW intra-subarray shuffling.
    Shadow {
        /// Shuffle threshold in activations.
        threshold: u64,
        /// RNG seed for the shuffle.
        seed: u64,
    },
}

impl DefenseSpec {
    /// DRAM-Locker in the paper's configuration: lock the rows
    /// adjacent to the guarded data.
    pub fn locker_adjacent() -> Self {
        DefenseSpec::Locker {
            config: LockerConfig::default(),
            target: LockTarget::AdjacentRows,
            radius: 1,
        }
    }

    /// DRAM-Locker locking the guarded data rows themselves (ablation).
    pub fn locker_data_rows() -> Self {
        DefenseSpec::Locker {
            config: LockerConfig::default(),
            target: LockTarget::DataRows,
            radius: 1,
        }
    }

    /// Graphene with `capacity` tracked entries refreshing at
    /// `threshold`.
    pub fn graphene(capacity: usize, threshold: u64) -> Self {
        DefenseSpec::Graphene { capacity, threshold }
    }

    /// Hydra with the given group/row thresholds.
    pub fn hydra(group_size: u64, group_threshold: u64, row_threshold: u64) -> Self {
        DefenseSpec::Hydra { group_size, group_threshold, row_threshold }
    }

    /// TWiCE with the given threshold and pruning schedule.
    pub fn twice(threshold: u64, prune_interval: u64, prune_rate: u64) -> Self {
        DefenseSpec::Twice { threshold, prune_interval, prune_rate }
    }

    /// Exact per-row counters refreshing at `threshold`.
    pub fn counter_per_row(threshold: u64) -> Self {
        DefenseSpec::CounterPerRow { threshold }
    }

    /// Randomized Row-Swap at `threshold` activations.
    pub fn rrs(threshold: u64, seed: u64) -> Self {
        DefenseSpec::RowSwap { policy: SwapPolicy::Randomized, threshold, seed }
    }

    /// Secure Row-Swap at `threshold` activations.
    pub fn srs(threshold: u64, seed: u64) -> Self {
        DefenseSpec::RowSwap { policy: SwapPolicy::Secure, threshold, seed }
    }

    /// SHADOW shuffling at `threshold` activations.
    pub fn shadow(threshold: u64, seed: u64) -> Self {
        DefenseSpec::Shadow { threshold, seed }
    }

    /// The mounted defense's report name (also the sweep-axis label).
    pub fn name(&self) -> &'static str {
        match self {
            DefenseSpec::Locker { .. } => "dram-locker",
            DefenseSpec::Graphene { .. } => "graphene",
            DefenseSpec::Hydra { .. } => "hydra",
            DefenseSpec::Twice { .. } => "twice",
            DefenseSpec::CounterPerRow { .. } => "counter-per-row",
            DefenseSpec::RowSwap { policy: SwapPolicy::Randomized, .. } => "rrs",
            DefenseSpec::RowSwap { policy: SwapPolicy::Secure, .. } => "srs",
            DefenseSpec::Shadow { .. } => "shadow",
        }
    }
}

/// The fully declarative description of one experiment.
///
/// `PartialEq` is intentional infrastructure: specs are compared by
/// sweep dedup logic and the codec round-trip tests; a spec plus the
/// workspace version pins a run completely (victim training, attacks
/// and engine merge are all deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario label (shows up in the report).
    pub label: String,
    /// Device/controller preset, per channel.
    pub geometry: GeometrySpec,
    /// Execution engine shape.
    pub engine: EngineConfig,
    /// Victims and their home channels, in deployment order.
    pub victims: Vec<(VictimSpec, usize)>,
    /// The attack (or benign driver), if any.
    pub attack: Option<AttackSpec>,
    /// The defense stack, in mount order.
    pub defenses: Vec<DefenseSpec>,
    /// The attack-side resource budget.
    pub budget: Budget,
    /// Held-out sample size for accuracy measurements.
    pub eval_batch: usize,
    /// Index of the victim under attack.
    pub target: usize,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self {
            label: "unnamed".to_owned(),
            geometry: GeometrySpec::Tiny,
            engine: EngineConfig::serial(),
            victims: Vec::new(),
            attack: None,
            defenses: Vec::new(),
            budget: Budget::default(),
            eval_batch: 64,
            target: 0,
        }
    }
}

impl ScenarioSpec {
    /// A default spec with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), ..Self::default() }
    }

    /// Serializes the spec to the line-oriented spec-file format (the
    /// vendored `serde` is marker-only, so this codec *is* the on-disk
    /// representation).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# dlk-scenario v1\n");
        // The label record is one line and the parser trims it, so
        // normalize here: every to_text output is parseable, and a
        // non-normalized label round-trips to its normalized form.
        let label = self.label.replace(['\n', '\r'], " ");
        out.push_str(&format!("label {}\n", label.trim()));
        out.push_str(&format!("geometry {}\n", self.geometry.token()));
        out.push_str(&format!("engine {}\n", self.engine));
        out.push_str(&format!(
            "budget activations={} check={} iterations={}\n",
            self.budget.max_activations, self.budget.check_interval, self.budget.iterations
        ));
        out.push_str(&format!("eval-batch {}\n", self.eval_batch));
        out.push_str(&format!("target {}\n", self.target));
        for (victim, home) in &self.victims {
            write_victim(&mut out, victim, *home);
        }
        if let Some(attack) = &self.attack {
            write_attack(&mut out, attack);
        }
        for defense in &self.defenses {
            write_defense(&mut out, defense);
        }
        out
    }

    /// Parses the format produced by [`to_text`](ScenarioSpec::to_text).
    /// Blank lines and `#` comments are skipped; any recognized record
    /// overrides the default-constructed field, so partial spec files
    /// are valid.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SpecParse`] with the offending 1-based line
    /// number *and* the offending line's content, so front ends (the
    /// `dlk` CLI) can print actionable parse failures.
    pub fn from_text(text: &str) -> Result<Self, SimError> {
        Self::parse_text(text).map_err(|err| attach_line_text(err, text))
    }

    fn parse_text(text: &str) -> Result<Self, SimError> {
        let mut spec = ScenarioSpec::default();
        // `tenant`/`op` continuation lines attach to the most recent
        // `attack replay` / `attack replay-trace` record.
        let mut pending_trace: Option<(usize, bool, String)> = None;
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let record = raw.trim();
            if record.is_empty() || record.starts_with('#') {
                continue;
            }
            let mut tokens = record.split_whitespace();
            let key = tokens.next().expect("non-empty record");
            if key != "op" {
                // Any other record closes an embedded trace.
                if let Some((at, untrusted, body)) = pending_trace.take() {
                    spec.attack = Some(finish_trace(at, untrusted, &body)?);
                }
            }
            match key {
                "label" => {
                    // Empty labels are constructible, so they must
                    // parse back (`label` with no value).
                    let rest = record.strip_prefix("label").expect("checked").trim();
                    spec.label = rest.to_owned();
                }
                "geometry" => {
                    let token = one_token(line, &mut tokens)?;
                    spec.geometry = GeometrySpec::from_token(token)
                        .ok_or_else(|| parse_error(line, &format!("unknown geometry '{token}'")))?;
                }
                "engine" => {
                    let token = one_token(line, &mut tokens)?;
                    spec.engine = token.parse().map_err(|e: String| parse_error(line, &e))?;
                }
                "budget" => {
                    let fields = Fields::parse(line, tokens)?;
                    spec.budget = Budget {
                        max_activations: fields.num("activations")?,
                        check_interval: fields.num("check")?,
                        iterations: fields.num("iterations")?,
                    };
                }
                "eval-batch" => spec.eval_batch = parse_num(line, one_token(line, &mut tokens)?)?,
                "target" => spec.target = parse_num(line, one_token(line, &mut tokens)?)?,
                "victim" => {
                    let kind = one_token(line, &mut tokens)?;
                    let fields = Fields::parse(line, tokens)?;
                    spec.victims.push(parse_victim(line, kind, &fields)?);
                }
                "attack" => {
                    let kind = one_token(line, &mut tokens)?;
                    let fields = Fields::parse(line, tokens)?;
                    if kind == "replay-trace" {
                        let untrusted = fields.num::<u8>("untrusted")? != 0;
                        pending_trace = Some((line, untrusted, String::new()));
                    } else {
                        spec.attack = Some(parse_attack(line, kind, &fields)?);
                    }
                }
                "tenant" => {
                    let kind = one_token(line, &mut tokens)?;
                    let fields = Fields::parse(line, tokens)?;
                    let workload = parse_workload(line, kind, &fields)?;
                    match &mut spec.attack {
                        Some(AttackSpec::Replay { tenants }) => tenants.push(workload),
                        _ => {
                            return Err(parse_error(
                                line,
                                "tenant record outside an 'attack replay' block",
                            ))
                        }
                    }
                }
                "op" => match &mut pending_trace {
                    Some((_, _, body)) => {
                        let rest = record.strip_prefix("op").expect("checked").trim();
                        body.push_str(rest);
                        body.push('\n');
                    }
                    None => {
                        return Err(parse_error(
                            line,
                            "op record outside an 'attack replay-trace' block",
                        ))
                    }
                },
                "defense" => {
                    let kind = one_token(line, &mut tokens)?;
                    let fields = Fields::parse(line, tokens)?;
                    spec.defenses.push(parse_defense(line, kind, &fields)?);
                }
                other => {
                    return Err(parse_error(line, &format!("unknown record '{other}'")));
                }
            }
        }
        if let Some((at, untrusted, body)) = pending_trace.take() {
            spec.attack = Some(finish_trace(at, untrusted, &body)?);
        }
        Ok(spec)
    }

    /// Loads one spec from a `.dlk` file on disk.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the file cannot be read and
    /// [`SimError::SpecParse`] (line number + offending line) when it
    /// cannot be parsed.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, SimError> {
        Self::from_text(&read_spec_file(path.as_ref())?)
    }

    /// Parses a *spec list*: one file holding any number of specs,
    /// formed by concatenating [`to_text`](ScenarioSpec::to_text)
    /// outputs. Every `label` record after the first starts a new spec
    /// (exactly the boundary `to_text` emits first), so `dlk sweep`
    /// grids and spool files are plain concatenations. Parse errors
    /// keep whole-file line numbers. Files holding only comments and
    /// blank lines parse to an empty list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SpecParse`] with the offending line.
    pub fn list_from_text(text: &str) -> Result<Vec<Self>, SimError> {
        Ok(Self::list_from_text_with_lines(text)?.into_iter().map(|(_, spec)| spec).collect())
    }

    /// [`list_from_text`](ScenarioSpec::list_from_text), with each
    /// spec paired to the 1-based whole-file line its chunk starts on.
    /// Static analyzers (`dlk check`) use the offsets to report
    /// per-spec findings with real file spans.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SpecParse`] with the offending line.
    pub fn list_from_text_with_lines(text: &str) -> Result<Vec<(usize, Self)>, SimError> {
        let mut chunks: Vec<(usize, String)> = Vec::new(); // (0-based start line, body)
        let mut current = String::new();
        let mut start = 0usize;
        let mut has_label = false;
        let mut has_record = false;
        for (index, raw) in text.lines().enumerate() {
            let record = raw.trim();
            let is_record = !record.is_empty() && !record.starts_with('#');
            if is_record && record.split_whitespace().next() == Some("label") {
                if has_label {
                    chunks.push((start, std::mem::take(&mut current)));
                    start = index;
                    has_record = false;
                }
                has_label = true;
            }
            current.push_str(raw);
            current.push('\n');
            has_record |= is_record;
        }
        if has_record {
            chunks.push((start, current));
        }
        chunks
            .into_iter()
            .map(|(start, body)| {
                // Left-pad with the chunk's offset so errors report
                // whole-file line numbers (the padding lines are blank
                // and skipped by the parser).
                let padded = "\n".repeat(start) + &body;
                Self::from_text(&padded).map(|spec| (start + 1, spec))
            })
            .collect()
    }

    /// Loads a spec list (see
    /// [`list_from_text`](ScenarioSpec::list_from_text)) from a `.dlk`
    /// file on disk.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the file cannot be read and
    /// [`SimError::SpecParse`] when any spec in it cannot be parsed.
    pub fn list_from_file(path: impl AsRef<std::path::Path>) -> Result<Vec<Self>, SimError> {
        Self::list_from_text(&read_spec_file(path.as_ref())?)
    }
}

fn read_spec_file(path: &std::path::Path) -> Result<String, SimError> {
    std::fs::read_to_string(path)
        .map_err(|error| SimError::Io { path: path.display().to_string(), error })
}

/// Fills an empty [`SimError::SpecParse`] `text` field with the
/// offending line's (trimmed) content from the source being parsed.
fn attach_line_text(err: SimError, source: &str) -> SimError {
    match err {
        SimError::SpecParse { line, text, reason } if text.is_empty() => {
            let content = source.lines().nth(line.saturating_sub(1)).unwrap_or("").trim();
            SimError::SpecParse { line, text: content.to_owned(), reason }
        }
        other => other,
    }
}

fn parse_error(line: usize, reason: &str) -> SimError {
    SimError::SpecParse { line, text: String::new(), reason: reason.to_owned() }
}

fn one_token<'a>(
    line: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, SimError> {
    tokens.next().ok_or_else(|| parse_error(line, "record is missing its value"))
}

/// `key=value` fields of one record, in line order.
struct Fields<'a> {
    line: usize,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(line: usize, tokens: impl Iterator<Item = &'a str>) -> Result<Self, SimError> {
        let mut pairs = Vec::new();
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| parse_error(line, &format!("expected key=value, got '{token}'")))?;
            pairs.push((key, value));
        }
        Ok(Self { line, pairs })
    }

    fn get(&self, key: &str) -> Result<&'a str, SimError> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| parse_error(self.line, &format!("missing field '{key}'")))
    }

    fn num<T: TryFrom<u64>>(&self, key: &str) -> Result<T, SimError> {
        parse_num(self.line, self.get(key)?)
    }

    fn float(&self, key: &str) -> Result<f64, SimError> {
        let raw = self.get(key)?;
        raw.parse().map_err(|_| parse_error(self.line, &format!("bad float '{raw}'")))
    }
}

/// Parses a decimal or `0x`-prefixed integer into any unsigned width.
fn parse_num<T: TryFrom<u64>>(line: usize, raw: &str) -> Result<T, SimError> {
    let value = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    };
    value
        .and_then(|v| T::try_from(v).ok())
        .ok_or_else(|| parse_error(line, &format!("bad number '{raw}'")))
}

fn write_victim(out: &mut String, victim: &VictimSpec, home: usize) {
    let protect = u8::from(victim.os_protect);
    match victim.kind {
        SpecKind::RowSpan { first_row, rows, fill } => out.push_str(&format!(
            "victim rows home={home} protect={protect} first={first_row} count={rows} fill={fill:#x}\n"
        )),
        SpecKind::Model { model, seed, base_phys } => out.push_str(&format!(
            "victim model home={home} protect={protect} kind={} seed={seed} base={base_phys:#x}\n",
            model.token()
        )),
        SpecKind::Paged { model, seed, page_size, first_pfn, table_base } => out.push_str(&format!(
            "victim paged home={home} protect={protect} kind={} seed={seed} page={page_size} pfn={first_pfn} table={table_base:#x}\n",
            model.token()
        )),
    }
}

fn parse_victim(
    line: usize,
    kind: &str,
    fields: &Fields<'_>,
) -> Result<(VictimSpec, usize), SimError> {
    let home = fields.num("home")?;
    let os_protect = fields.num::<u8>("protect")? != 0;
    let model_kind = |key: &str| -> Result<ModelKind, SimError> {
        let token = fields.get(key)?;
        ModelKind::from_token(token)
            .ok_or_else(|| parse_error(line, &format!("unknown model kind '{token}'")))
    };
    let spec_kind = match kind {
        "rows" => SpecKind::RowSpan {
            first_row: fields.num("first")?,
            rows: fields.num("count")?,
            fill: fields.num("fill")?,
        },
        "model" => SpecKind::Model {
            model: model_kind("kind")?,
            seed: fields.num("seed")?,
            base_phys: fields.num("base")?,
        },
        "paged" => SpecKind::Paged {
            model: model_kind("kind")?,
            seed: fields.num("seed")?,
            page_size: fields.num("page")?,
            first_pfn: fields.num("pfn")?,
            table_base: fields.num("table")?,
        },
        other => return Err(parse_error(line, &format!("unknown victim kind '{other}'"))),
    };
    Ok((VictimSpec { kind: spec_kind, os_protect }, home))
}

fn write_attack(out: &mut String, attack: &AttackSpec) {
    match attack {
        AttackSpec::Hammer { bit } => out.push_str(&format!("attack hammer bit={bit}\n")),
        AttackSpec::RowProbe { accesses } => {
            out.push_str(&format!("attack row-probe accesses={accesses}\n"));
        }
        AttackSpec::BfaHammer { batch } => {
            out.push_str(&format!("attack bfa-hammer batch={batch}\n"));
        }
        AttackSpec::ProgressiveBfa { success_rate, seed, config } => {
            let bits = match config.bits_considered {
                Some([lo, hi]) => format!("{lo},{hi}"),
                None => "all".to_owned(),
            };
            out.push_str(&format!(
                "attack progressive-bfa rate={success_rate} seed={seed} candidates={} bits={bits}\n",
                config.candidates_per_layer
            ));
        }
        AttackSpec::RandomFlip { seed } => {
            out.push_str(&format!("attack random-flip seed={seed}\n"));
        }
        AttackSpec::PageTable { pfn_bit, payload_xor } => {
            out.push_str(&format!("attack page-table pfn-bit={pfn_bit} xor={payload_xor:#x}\n"));
        }
        AttackSpec::InferenceStream { batches, chunk } => {
            out.push_str(&format!("attack inference batches={batches} chunk={chunk}\n"));
        }
        AttackSpec::WeightFetch { samples, chunk, channel } => out.push_str(&format!(
            "attack weight-fetch samples={samples} chunk={chunk} channel={channel}\n"
        )),
        AttackSpec::Replay { tenants } => {
            out.push_str("attack replay\n");
            for tenant in tenants {
                write_workload(out, tenant);
            }
        }
        AttackSpec::ReplayTrace { trace } => {
            out.push_str(&format!("attack replay-trace untrusted={}\n", u8::from(trace.untrusted)));
            // Reuse the trace codec, re-keyed line by line (its header
            // carries only the trust flag, already on the attack line).
            for line in trace.to_text().lines().skip(1) {
                out.push_str("op ");
                out.push_str(line);
                out.push('\n');
            }
        }
    }
}

fn parse_attack(line: usize, kind: &str, fields: &Fields<'_>) -> Result<AttackSpec, SimError> {
    Ok(match kind {
        "hammer" => AttackSpec::Hammer { bit: fields.num("bit")? },
        "row-probe" => AttackSpec::RowProbe { accesses: fields.num("accesses")? },
        "bfa-hammer" => AttackSpec::BfaHammer { batch: fields.num("batch")? },
        "progressive-bfa" => {
            let bits = fields.get("bits")?;
            let bits_considered = if bits == "all" {
                None
            } else {
                let (lo, hi) = bits
                    .split_once(',')
                    .ok_or_else(|| parse_error(line, &format!("bad bits '{bits}'")))?;
                Some([parse_num(line, lo)?, parse_num(line, hi)?])
            };
            AttackSpec::ProgressiveBfa {
                success_rate: fields.float("rate")?,
                seed: fields.num("seed")?,
                config: BfaConfig {
                    candidates_per_layer: fields.num("candidates")?,
                    bits_considered,
                },
            }
        }
        "random-flip" => AttackSpec::RandomFlip { seed: fields.num("seed")? },
        "page-table" => AttackSpec::PageTable {
            pfn_bit: fields.num("pfn-bit")?,
            payload_xor: fields.num("xor")?,
        },
        "inference" => AttackSpec::InferenceStream {
            batches: fields.num("batches")?,
            chunk: fields.num("chunk")?,
        },
        "weight-fetch" => AttackSpec::WeightFetch {
            samples: fields.num("samples")?,
            chunk: fields.num("chunk")?,
            channel: fields.num("channel")?,
        },
        "replay" => AttackSpec::Replay { tenants: Vec::new() },
        other => return Err(parse_error(line, &format!("unknown attack '{other}'"))),
    })
}

fn finish_trace(line: usize, untrusted: bool, body: &str) -> Result<AttackSpec, SimError> {
    let text = format!("# dlk-trace v1 untrusted={}\n{body}", u8::from(untrusted));
    let trace =
        Trace::from_text(&text).map_err(|e| parse_error(line, &format!("embedded trace: {e}")))?;
    Ok(AttackSpec::ReplayTrace { trace })
}

fn write_workload(out: &mut String, workload: &Workload) {
    match *workload {
        Workload::Sequential { base, len, count } => {
            out.push_str(&format!("tenant sequential base={base:#x} len={len} count={count}\n"));
        }
        Workload::Strided { base, stride, len, count } => out.push_str(&format!(
            "tenant strided base={base:#x} stride={stride} len={len} count={count}\n"
        )),
        Workload::PointerChase { base, span, len, count, seed } => out.push_str(&format!(
            "tenant chase base={base:#x} span={span} len={len} count={count} seed={seed}\n"
        )),
        Workload::HammerLoop { addr_a, addr_b, iterations } => out.push_str(&format!(
            "tenant hammer-loop a={addr_a:#x} b={addr_b:#x} iterations={iterations}\n"
        )),
    }
}

fn parse_workload(line: usize, kind: &str, fields: &Fields<'_>) -> Result<Workload, SimError> {
    Ok(match kind {
        "sequential" => Workload::Sequential {
            base: fields.num("base")?,
            len: fields.num("len")?,
            count: fields.num("count")?,
        },
        "strided" => Workload::Strided {
            base: fields.num("base")?,
            stride: fields.num("stride")?,
            len: fields.num("len")?,
            count: fields.num("count")?,
        },
        "chase" => Workload::PointerChase {
            base: fields.num("base")?,
            span: fields.num("span")?,
            len: fields.num("len")?,
            count: fields.num("count")?,
            seed: fields.num("seed")?,
        },
        "hammer-loop" => Workload::HammerLoop {
            addr_a: fields.num("a")?,
            addr_b: fields.num("b")?,
            iterations: fields.num("iterations")?,
        },
        other => return Err(parse_error(line, &format!("unknown workload '{other}'"))),
    })
}

fn lock_target_token(target: LockTarget) -> &'static str {
    match target {
        LockTarget::AdjacentRows => "adjacent",
        LockTarget::DataRows => "data",
        LockTarget::Both => "both",
    }
}

fn parse_lock_target(line: usize, token: &str) -> Result<LockTarget, SimError> {
    match token {
        "adjacent" => Ok(LockTarget::AdjacentRows),
        "data" => Ok(LockTarget::DataRows),
        "both" => Ok(LockTarget::Both),
        other => Err(parse_error(line, &format!("unknown lock target '{other}'"))),
    }
}

fn write_defense(out: &mut String, defense: &DefenseSpec) {
    match defense {
        DefenseSpec::Locker { config, target, radius } => out.push_str(&format!(
            "defense dram-locker target={} radius={radius} relock={} table={} entry={} \
             check={} copy-err={} free={} lock-target={} seed={}\n",
            lock_target_token(*target),
            config.relock_interval,
            config.table_capacity_bytes,
            config.entry_bytes,
            config.check_cycles,
            config.copy_error_rate,
            config.free_rows_per_subarray,
            lock_target_token(config.lock_target),
            config.seed,
        )),
        DefenseSpec::Graphene { capacity, threshold } => out.push_str(&format!(
            "defense graphene capacity={capacity} threshold={threshold}\n"
        )),
        DefenseSpec::Hydra { group_size, group_threshold, row_threshold } => out.push_str(&format!(
            "defense hydra group={group_size} group-threshold={group_threshold} row-threshold={row_threshold}\n"
        )),
        DefenseSpec::Twice { threshold, prune_interval, prune_rate } => out.push_str(&format!(
            "defense twice threshold={threshold} prune-interval={prune_interval} prune-rate={prune_rate}\n"
        )),
        DefenseSpec::CounterPerRow { threshold } => {
            out.push_str(&format!("defense counter-per-row threshold={threshold}\n"));
        }
        DefenseSpec::RowSwap { policy, threshold, seed } => {
            let kind = match policy {
                SwapPolicy::Randomized => "rrs",
                SwapPolicy::Secure => "srs",
            };
            out.push_str(&format!("defense {kind} threshold={threshold} seed={seed}\n"));
        }
        DefenseSpec::Shadow { threshold, seed } => {
            out.push_str(&format!("defense shadow threshold={threshold} seed={seed}\n"));
        }
    }
}

fn parse_defense(line: usize, kind: &str, fields: &Fields<'_>) -> Result<DefenseSpec, SimError> {
    Ok(match kind {
        "dram-locker" => DefenseSpec::Locker {
            config: LockerConfig {
                relock_interval: fields.num("relock")?,
                table_capacity_bytes: fields.num("table")?,
                entry_bytes: fields.num("entry")?,
                check_cycles: fields.num("check")?,
                copy_error_rate: fields.float("copy-err")?,
                free_rows_per_subarray: fields.num("free")?,
                lock_target: parse_lock_target(line, fields.get("lock-target")?)?,
                seed: fields.num("seed")?,
            },
            target: parse_lock_target(line, fields.get("target")?)?,
            radius: fields.num("radius")?,
        },
        "graphene" => DefenseSpec::Graphene {
            capacity: fields.num("capacity")?,
            threshold: fields.num("threshold")?,
        },
        "hydra" => DefenseSpec::Hydra {
            group_size: fields.num("group")?,
            group_threshold: fields.num("group-threshold")?,
            row_threshold: fields.num("row-threshold")?,
        },
        "twice" => DefenseSpec::Twice {
            threshold: fields.num("threshold")?,
            prune_interval: fields.num("prune-interval")?,
            prune_rate: fields.num("prune-rate")?,
        },
        "counter-per-row" => DefenseSpec::CounterPerRow { threshold: fields.num("threshold")? },
        "rrs" => DefenseSpec::RowSwap {
            policy: SwapPolicy::Randomized,
            threshold: fields.num("threshold")?,
            seed: fields.num("seed")?,
        },
        "srs" => DefenseSpec::RowSwap {
            policy: SwapPolicy::Secure,
            threshold: fields.num("threshold")?,
            seed: fields.num("seed")?,
        },
        "shadow" => {
            DefenseSpec::Shadow { threshold: fields.num("threshold")?, seed: fields.num("seed")? }
        }
        other => return Err(parse_error(line, &format!("unknown defense '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimSpec;

    fn rich_spec() -> ScenarioSpec {
        ScenarioSpec {
            label: "codec coverage".to_owned(),
            geometry: GeometrySpec::Paper,
            engine: EngineConfig::sharded(4),
            victims: vec![
                (VictimSpec::row(20, 0xA5), 0),
                (VictimSpec::model(ModelKind::TinyCnn, 7, 0x400), 1),
                (VictimSpec::paged(ModelKind::Tiny, 21).with_paging(128, 9, 0x2000), 2),
            ],
            attack: Some(AttackSpec::tenants(vec![
                Workload::Sequential { base: 0, len: 8, count: 400 },
                Workload::Strided { base: 64, stride: 256, len: 4, count: 200 },
                Workload::PointerChase { base: 0, span: 32768, len: 8, count: 400, seed: 11 },
                Workload::HammerLoop { addr_a: 4864, addr_b: 5376, iterations: 200 },
            ])),
            defenses: vec![DefenseSpec::locker_adjacent(), DefenseSpec::graphene(64, 8)],
            budget: Budget { max_activations: 123, check_interval: 4, iterations: 9 },
            eval_batch: 48,
            target: 1,
        }
    }

    #[test]
    fn rich_spec_round_trips() {
        let spec = rich_spec();
        let text = spec.to_text();
        let parsed = ScenarioSpec::from_text(&text).unwrap();
        assert_eq!(parsed, spec, "{text}");
    }

    #[test]
    fn embedded_trace_round_trips() {
        let mut trace = Workload::Sequential { base: 0, len: 8, count: 3 }.trace();
        trace.untrusted = true;
        let spec =
            ScenarioSpec { attack: Some(AttackSpec::trace(trace)), ..ScenarioSpec::new("trace") };
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn progressive_bfa_floats_round_trip_exactly() {
        for rate in [0.096_f64, 1.0, 0.5, 1.0 / 3.0, f64::MIN_POSITIVE] {
            let spec = ScenarioSpec {
                attack: Some(AttackSpec::ProgressiveBfa {
                    success_rate: rate,
                    seed: 8,
                    config: BfaConfig::default(),
                }),
                ..ScenarioSpec::new("float")
            };
            let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
            assert_eq!(parsed, spec, "rate {rate}");
        }
    }

    #[test]
    fn partial_files_fill_in_defaults() {
        let spec = ScenarioSpec::from_text("label only-a-label\n").unwrap();
        assert_eq!(spec.label, "only-a-label");
        assert_eq!(spec.geometry, GeometrySpec::Tiny);
        assert_eq!(spec.engine, EngineConfig::serial());
        assert!(spec.victims.is_empty() && spec.attack.is_none());
        assert_eq!(ScenarioSpec::from_text("").unwrap(), ScenarioSpec::default());
    }

    #[test]
    fn pathological_labels_serialize_to_parseable_normalized_form() {
        for (label, normalized) in [
            ("", ""),
            ("   ", ""),
            ("two\nlines\r\n", "two lines"),
            ("# looks like a comment", "# looks like a comment"),
            ("  padded  ", "padded"),
        ] {
            let spec = ScenarioSpec::new(label);
            let parsed = ScenarioSpec::from_text(&spec.to_text())
                .unwrap_or_else(|e| panic!("label {label:?} must stay parseable: {e}"));
            assert_eq!(parsed.label, normalized, "label {label:?}");
            // Normalized labels are a codec fixed point.
            assert_eq!(ScenarioSpec::from_text(&parsed.to_text()).unwrap(), parsed);
        }
    }

    #[test]
    fn spec_lists_split_on_label_records() {
        let specs = vec![rich_spec(), ScenarioSpec::new("second"), ScenarioSpec::new("third")];
        let text: String = specs.iter().map(ScenarioSpec::to_text).collect();
        let parsed = ScenarioSpec::list_from_text(&text).unwrap();
        assert_eq!(parsed, specs);
        // A single spec with its label mid-file stays one spec.
        let parsed = ScenarioSpec::list_from_text("geometry paper\nlabel late\n").unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].label, "late");
        assert_eq!(parsed[0].geometry, GeometrySpec::Paper);
        // Comment-only files are an empty list, not a default spec.
        assert_eq!(ScenarioSpec::list_from_text("# nothing here\n\n").unwrap(), vec![]);
    }

    #[test]
    fn spec_list_errors_keep_whole_file_line_numbers() {
        let mut text = ScenarioSpec::new("one").to_text();
        text.push_str(&ScenarioSpec::new("two").to_text());
        text.push_str("defense bogus\n");
        let err = ScenarioSpec::list_from_text(&text).unwrap_err();
        let expected_line = text.lines().count();
        match err {
            SimError::SpecParse { line, ref text, .. } => {
                assert_eq!(line, expected_line);
                assert_eq!(text, "defense bogus");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = ScenarioSpec::from_text("label x\nbogus record\n").unwrap_err();
        assert!(matches!(err, SimError::SpecParse { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("2 | bogus record"), "{err}");
        let err = ScenarioSpec::from_text("victim rows home=0\n").unwrap_err();
        assert!(err.to_string().contains("protect"), "{err}");
        let err = ScenarioSpec::from_text("tenant sequential base=0 len=8 count=1\n").unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
        let err = ScenarioSpec::from_text("op R 0x0 1\n").unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn geometry_tokens_cover_every_preset() {
        for preset in GeometrySpec::ALL {
            assert_eq!(GeometrySpec::from_token(preset.token()), Some(preset));
        }
        assert_eq!(GeometrySpec::from_token("huge"), None);
    }
}
