//! The builder-driven scenario pipeline.
//!
//! One object owns a run: device geometry, deployed victims, the
//! mounted defense stack, the attack driver and its budget. Everything
//! the workspace previously hand-wired (`MemCtrlConfig` →
//! `MemoryController` → `WeightLayout::deploy` → `os_protect_range` →
//! attack driver → ad-hoc defense mounting) goes through here.
//!
//! ```
//! use dlk_sim::{Budget, HammerAttack, LockerMitigation, Scenario, VictimSpec};
//!
//! # fn main() -> Result<(), dlk_sim::SimError> {
//! let mut run = Scenario::builder()
//!     .label("doc")
//!     .victim(VictimSpec::row(20, 0xA5))
//!     .attack(HammerAttack::bit(7))
//!     .defense(LockerMitigation::adjacent())
//!     .budget(Budget { max_activations: 1_000, check_interval: 8, iterations: 1 })
//!     .build()?;
//! let report = run.run()?;
//! assert!(report.fully_denied());
//! assert_eq!(report.victims[0].data_intact, Some(true));
//! # Ok(())
//! # }
//! ```

use dlk_dnn::QuantizedMlp;
use dlk_memctrl::{MemCtrlConfig, MemoryController};

use crate::attack::{Attack, RunEnv};
use crate::error::SimError;
use crate::mitigation::{HookChain, Mitigation, MountCtx};
use crate::report::{AttackOutcome, MitigationReport, RunReport, VictimReport};
use crate::victim::{DeployedVictim, VictimSpec};

/// The attack-side resource budget of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum aggressor activations per hammer campaign.
    pub max_activations: u64,
    /// Hammer loop checks the victim bit every this many activations.
    pub check_interval: u64,
    /// Iterations for progressive attacks (BFA, random flips).
    pub iterations: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Self { max_activations: 20_000, check_interval: 8, iterations: 10 }
    }
}

/// Entry point of the unified simulation API: `Scenario::builder()`.
pub struct Scenario;

impl Scenario {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }
}

/// Builds a [`ScenarioRun`] from parts.
pub struct ScenarioBuilder {
    label: String,
    config: MemCtrlConfig,
    victims: Vec<VictimSpec>,
    attack: Option<Box<dyn Attack>>,
    defenses: Vec<Box<dyn Mitigation>>,
    budget: Budget,
    eval_batch: usize,
    target: usize,
}

impl ScenarioBuilder {
    fn new() -> Self {
        Self {
            label: "unnamed".to_owned(),
            config: MemCtrlConfig::tiny_for_tests(),
            victims: Vec::new(),
            attack: None,
            defenses: Vec::new(),
            budget: Budget::default(),
            eval_batch: 64,
            target: 0,
        }
    }

    /// Names the scenario (shows up in the report).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the device/controller configuration (default: the tiny
    /// test geometry, TRH 16).
    pub fn geometry(mut self, config: MemCtrlConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds a victim. Repeatable: later victims share the device
    /// (multi-tenant scenarios).
    pub fn victim(mut self, spec: VictimSpec) -> Self {
        self.victims.push(spec);
        self
    }

    /// Sets the attack (or benign workload) driver.
    pub fn attack(mut self, attack: impl Attack + 'static) -> Self {
        self.attack = Some(Box::new(attack));
        self
    }

    /// Mounts a defense. Repeatable: multiple defenses stack into a
    /// [`HookChain`] consulted in mount order.
    pub fn defense(mut self, mitigation: impl Mitigation + 'static) -> Self {
        self.defenses.push(Box::new(mitigation));
        self
    }

    /// Sets the attack budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Held-out sample size for accuracy measurements (default 64).
    pub fn eval_batch(mut self, n: usize) -> Self {
        self.eval_batch = n.max(1);
        self
    }

    /// Which victim the attack targets (default 0, the first).
    pub fn target_victim(mut self, index: usize) -> Self {
        self.target = index;
        self
    }

    /// Deploys the victims, mounts the defenses and returns the
    /// executable pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Build`] for an empty victim list or a bad
    /// target index, and propagates deployment/mount failures.
    pub fn build(self) -> Result<ScenarioRun, SimError> {
        if self.victims.is_empty() {
            return Err(SimError::Build(format!("scenario '{}' has no victim", self.label)));
        }
        if self.target >= self.victims.len() {
            return Err(SimError::Build(format!(
                "target victim {} out of range ({} victims)",
                self.target,
                self.victims.len()
            )));
        }
        let mut ctrl = MemoryController::new(self.config);
        let mut victims = Vec::with_capacity(self.victims.len());
        for spec in self.victims {
            victims.push(spec.deploy(&mut ctrl)?);
        }
        let guarded: Vec<(u64, u64)> =
            victims.iter().flat_map(|v| v.guarded_ranges().iter().copied()).collect();
        let ctx = MountCtx { geometry: ctrl.geometry(), mapper: ctrl.mapper(), guarded: &guarded };
        let mut hooks = Vec::with_capacity(self.defenses.len());
        for mitigation in &self.defenses {
            hooks.push(mitigation.mount(&ctx)?);
        }
        match hooks.len() {
            0 => {}
            1 => {
                ctrl.set_hook(hooks.pop().expect("one hook"));
            }
            _ => {
                ctrl.set_hook(Box::new(HookChain::new(hooks)));
            }
        }
        Ok(ScenarioRun {
            label: self.label,
            ctrl,
            victims,
            attack: self.attack,
            defenses: self.defenses,
            budget: self.budget,
            eval_batch: self.eval_batch,
            target: self.target,
        })
    }
}

/// A built, deployed pipeline, ready to run.
pub struct ScenarioRun {
    label: String,
    ctrl: MemoryController,
    victims: Vec<DeployedVictim>,
    attack: Option<Box<dyn Attack>>,
    defenses: Vec<Box<dyn Mitigation>>,
    budget: Budget,
    eval_batch: usize,
    target: usize,
}

impl std::fmt::Debug for ScenarioRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRun")
            .field("label", &self.label)
            .field("victims", &self.victims.len())
            .field("attack", &self.attack.as_ref().map(|a| a.name()))
            .field("hook", &self.ctrl.hook().name())
            .field("budget", &self.budget)
            .finish()
    }
}

impl ScenarioRun {
    /// The scenario label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The scenario's budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The memory controller (read-only).
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Mutable access to the controller — for demonstrations and tests
    /// that drive extra traffic through the same pipeline.
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.ctrl
    }

    /// The deployed victims.
    pub fn victims(&self) -> &[DeployedVictim] {
        &self.victims
    }

    /// One deployed victim.
    pub fn victim(&self, index: usize) -> &DeployedVictim {
        &self.victims[index]
    }

    /// Reloads victim `index`'s model from the device through the
    /// controller (trusted reads, following defense redirects).
    ///
    /// # Errors
    ///
    /// Propagates controller errors; `Ok(None)` for raw-row victims.
    pub fn reload_model(&mut self, index: usize) -> Result<Option<QuantizedMlp>, SimError> {
        let victim = &self.victims[index];
        victim.reload_model(&mut self.ctrl)
    }

    /// Executes the attack phase, then measures every victim and
    /// assembles the unified report. Cycle/energy/controller statistics
    /// are snapshotted at the end of the attack phase, before the
    /// measurement probes. Calling `run` again re-executes the attack
    /// on the already-attacked device (useful for benchmarking a
    /// steady-state defended campaign); accuracy baselines always refer
    /// to the pristine deployment.
    ///
    /// # Errors
    ///
    /// Propagates attack and measurement failures.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let accuracy_before: Vec<Option<f64>> = self
            .victims
            .iter()
            .map(|v| v.victim().and_then(|vic| v.accuracy_pct(&vic.model, self.eval_batch)))
            .collect();

        let (outcome, attack_name) = match self.attack.take() {
            Some(mut attack) => {
                let mut env = RunEnv {
                    ctrl: &mut self.ctrl,
                    victims: &self.victims,
                    target: self.target,
                    budget: self.budget,
                    eval_batch: self.eval_batch,
                };
                let result = attack.execute(&mut env);
                let name = attack.name().to_owned();
                self.attack = Some(attack);
                (result?, name)
            }
            None => (AttackOutcome::default(), String::new()),
        };

        // Snapshot attack-phase costs before the measurement probes
        // drive their own traffic.
        let cycles = self.ctrl.dram().stats().cycles;
        let energy_pj = self.ctrl.dram().stats().energy_pj;
        let controller = *self.ctrl.stats();

        let mut victim_reports = Vec::with_capacity(self.victims.len());
        for (index, victim) in self.victims.iter().enumerate() {
            let reloaded = victim.reload_model(&mut self.ctrl)?;
            let accuracy_after_pct =
                reloaded.and_then(|model| victim.accuracy_pct(&model, self.eval_batch));
            let data_intact = victim.data_intact(&mut self.ctrl)?;
            victim_reports.push(VictimReport {
                accuracy_before_pct: accuracy_before[index],
                accuracy_after_pct,
                data_intact,
            });
        }

        let hook = self.ctrl.hook();
        let mitigations: Vec<MitigationReport> = match hook
            .as_any()
            .and_then(|any| any.downcast_ref::<HookChain>())
        {
            Some(chain) => self
                .defenses
                .iter()
                .zip(chain.hooks())
                .map(|(m, h)| MitigationReport {
                    name: m.name().to_owned(),
                    actions: m.actions(h.as_ref()),
                })
                .collect(),
            None => self
                .defenses
                .iter()
                .map(|m| MitigationReport { name: m.name().to_owned(), actions: m.actions(hook) })
                .collect(),
        };

        Ok(RunReport {
            scenario: self.label.clone(),
            attack: attack_name,
            defenses: self.defenses.iter().map(|m| m.name().to_owned()).collect(),
            landed_flips: outcome.landed_flips,
            requests: outcome.requests,
            denied: outcome.denied,
            redirected: outcome.redirected,
            target_bits: outcome.target_bits,
            flipped_bits: outcome.flipped_bits,
            curve: outcome.curve,
            cycles,
            energy_pj,
            controller,
            victims: victim_reports,
            mitigations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{HammerAttack, RowProbe};
    use crate::mitigation::{LockerMitigation, TrackerMitigation};
    use dlk_defenses::Graphene;

    fn hammer_budget() -> Budget {
        Budget { max_activations: 4_000, check_interval: 8, iterations: 1 }
    }

    #[test]
    fn builder_rejects_empty_scenarios() {
        assert!(matches!(Scenario::builder().build(), Err(SimError::Build(_))));
        let bad_target = Scenario::builder().victim(VictimSpec::row(5, 1)).target_victim(3).build();
        assert!(matches!(bad_target, Err(SimError::Build(_))));
    }

    #[test]
    fn undefended_hammer_harms_the_row_victim() {
        let mut run = Scenario::builder()
            .label("undefended")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.landed_flips, 1);
        assert_eq!(report.denied, 0);
        assert_eq!(report.victims[0].data_intact, Some(false));
        assert!(report.harmed());
    }

    #[test]
    fn locker_denies_the_same_campaign() {
        let mut run = Scenario::builder()
            .label("defended")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert!(report.fully_denied(), "{report:?}");
        assert_eq!(report.victims[0].data_intact, Some(true));
        assert!(!report.harmed());
        assert_eq!(report.defenses, vec!["dram-locker".to_owned()]);
        assert!(report.mitigation_total() > 0);
    }

    #[test]
    fn stacked_defenses_report_individually() {
        let mut run = Scenario::builder()
            .label("stacked")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .defense(TrackerMitigation::new(Graphene::new(64, 8)))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.mitigations.len(), 2);
        assert_eq!(report.mitigations[0].name, "dram-locker");
        assert_eq!(report.mitigations[1].name, "graphene");
        // The locker denies everything, so the tracker sees nothing.
        assert!(report.fully_denied());
        assert!(report.mitigations[0].actions > 0);
    }

    #[test]
    fn probe_against_data_locked_row_is_denied_but_data_flows_for_victim() {
        let mut run = Scenario::builder()
            .label("probe")
            .victim(VictimSpec::row(10, 0x42))
            .attack(RowProbe { accesses: 100 })
            .defense(LockerMitigation::data_rows())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.denied, 100);
        // The integrity probe (trusted) was served via SWAP + redirect.
        assert_eq!(report.victims[0].data_intact, Some(true));
    }

    #[test]
    fn report_snapshots_attack_phase_costs() {
        let mut run = Scenario::builder()
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(3))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert!(report.cycles > 0);
        assert!(report.energy_pj > 0.0);
        // The trailing integrity read is excluded from the snapshot.
        assert!(run.controller().dram().stats().cycles > report.cycles);
    }
}
