//! The scenario pipeline: spec in, report out.
//!
//! One object owns a run: device geometry, deployed victims, the
//! mounted defense stack, the attack driver and its budget. Everything
//! the workspace previously hand-wired (`MemCtrlConfig` →
//! `MemoryController` → `WeightLayout::deploy` → `os_protect_range` →
//! attack driver → ad-hoc defense mounting) goes through here.
//!
//! [`Scenario::from_spec`] is the one construction path: it resolves a
//! declarative [`ScenarioSpec`] — geometry preset, engine shape,
//! victims, attack, defense stack, budget — into a deployed
//! [`ScenarioRun`]. [`ScenarioBuilder`] is sugar that assembles a spec
//! method by method (and offers `custom_*` escape hatches for drivers
//! and hooks that are code, not data — spy hooks in tests, one-off
//! bench workloads).
//!
//! ```
//! use dlk_sim::{Budget, HammerAttack, LockerMitigation, Scenario, VictimSpec};
//!
//! # fn main() -> Result<(), dlk_sim::SimError> {
//! let mut run = Scenario::builder()
//!     .label("doc")
//!     .victim(VictimSpec::row(20, 0xA5))
//!     .attack(HammerAttack::bit(7))
//!     .defense(LockerMitigation::adjacent())
//!     .budget(Budget { max_activations: 1_000, check_interval: 8, iterations: 1 })
//!     .build()?;
//! let report = run.run()?;
//! assert!(report.fully_denied());
//! assert_eq!(report.victims[0].data_intact, Some(true));
//! # Ok(())
//! # }
//! ```
//!
//! The builder above assembles exactly the spec a file would:
//!
//! ```
//! use dlk_sim::{Scenario, ScenarioSpec};
//!
//! # fn main() -> Result<(), dlk_sim::SimError> {
//! let spec = ScenarioSpec::from_text(
//!     "label doc\n\
//!      victim rows home=0 protect=0 first=20 count=1 fill=0xa5\n\
//!      attack hammer bit=7\n\
//!      defense graphene capacity=64 threshold=8\n\
//!      budget activations=1000 check=8 iterations=1\n",
//! )?;
//! let report = Scenario::from_spec(&spec)?.run()?;
//! assert_eq!(report.landed_flips, 0);
//! # Ok(())
//! # }
//! ```

use dlk_dnn::{QuantizedMlp, WeightLayout};
use dlk_engine::{ChannelRouter, EngineConfig, ShardedEngine};
use dlk_locker::DramLocker;
use dlk_memctrl::{AddressMapper, MemCtrlConfig, MemoryController};
use dlk_obs::{Registry, SpanRecorder, SpanTree};

use crate::attack::{
    Attack, BfaHammerAttack, HammerAttack, InferenceStream, PageTablePoison, ProgressiveBfa,
    RandomFlipAttack, ReplayWorkload, RowProbe, RunEnv,
};
use crate::error::SimError;
use crate::mitigation::{HookChain, Mitigation, MountCtx};
use crate::report::{AttackOutcome, MitigationReport, RunReport, VictimReport};
use crate::spec::{AttackSpec, DefenseSpec, GeometrySpec, ScenarioSpec};
use crate::victim::{DeployedVictim, SpecKind, VictimSpec};

/// The attack-side resource budget of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum aggressor activations per hammer campaign.
    pub max_activations: u64,
    /// Hammer loop checks the victim bit every this many activations.
    pub check_interval: u64,
    /// Iterations for progressive attacks (BFA, random flips).
    pub iterations: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Self { max_activations: 20_000, check_interval: 8, iterations: 10 }
    }
}

/// Entry point of the unified simulation API: `Scenario::builder()` or
/// [`Scenario::from_spec`].
pub struct Scenario;

impl Scenario {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The one construction path from a declarative spec to a deployed,
    /// runnable pipeline: resolves the geometry preset, instantiates
    /// the engine, trains/deploys the victims, resolves the attack
    /// driver and mounts the defense stack on every channel shard.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Build`] for an empty victim list, a bad
    /// target index, a zero channel count or an out-of-range home
    /// channel, and propagates deployment/mount failures.
    pub fn from_spec(spec: &ScenarioSpec) -> Result<ScenarioRun, SimError> {
        ScenarioBuilder::from_spec(spec.clone()).build()
    }
}

/// One defense slot of a builder: declarative, or a custom mounted
/// object (spy hooks, one-off bench defenses).
enum DefenseSlot {
    Spec(DefenseSpec),
    Custom(Box<dyn Mitigation>),
}

/// Assembles a [`ScenarioSpec`] method by method, then builds it.
///
/// The builder *is* spec assembly: every declarative method writes one
/// spec field, [`ScenarioBuilder::spec`] hands the assembled value
/// back, and [`ScenarioBuilder::build`] routes through the same
/// resolution path as [`Scenario::from_spec`]. The `custom_*` methods
/// accept components that are code rather than data; a builder that
/// used any of them no longer corresponds to a serializable spec.
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
    custom_geometry: Option<MemCtrlConfig>,
    custom_attack: Option<Box<dyn Attack>>,
    defenses: Vec<DefenseSlot>,
}

impl ScenarioBuilder {
    fn new() -> Self {
        Self::from_spec(ScenarioSpec::default())
    }

    /// A builder pre-loaded with `spec` (the catalog's path from an
    /// entry to a tweakable builder).
    pub fn from_spec(mut spec: ScenarioSpec) -> Self {
        let defenses = spec.defenses.drain(..).map(DefenseSlot::Spec).collect();
        Self { spec, custom_geometry: None, custom_attack: None, defenses }
    }

    /// The assembled spec.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Build`] when the builder holds `custom_*`
    /// components, which have no data representation.
    pub fn spec(&self) -> Result<ScenarioSpec, SimError> {
        if self.custom_geometry.is_some() || self.custom_attack.is_some() {
            return Err(SimError::Build(
                "scenario uses a custom geometry/attack; not spec-representable".to_owned(),
            ));
        }
        let mut spec = self.spec.clone();
        spec.defenses = Vec::with_capacity(self.defenses.len());
        for slot in &self.defenses {
            match slot {
                DefenseSlot::Spec(defense) => spec.defenses.push(defense.clone()),
                DefenseSlot::Custom(mitigation) => {
                    return Err(SimError::Build(format!(
                        "scenario mounts custom defense '{}'; not spec-representable",
                        mitigation.name()
                    )))
                }
            }
        }
        Ok(spec)
    }

    /// Names the scenario (shows up in the report).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.spec.label = label.into();
        self
    }

    /// Sets the *per-channel* device/controller preset (default:
    /// [`GeometrySpec::Tiny`], the tiny test geometry with TRH 16).
    pub fn geometry(mut self, geometry: GeometrySpec) -> Self {
        self.spec.geometry = geometry;
        self
    }

    /// Escape hatch: a free-form per-channel `MemCtrlConfig` instead of
    /// a named preset. The resulting scenario is not spec-representable.
    pub fn custom_geometry(mut self, config: MemCtrlConfig) -> Self {
        self.custom_geometry = Some(config);
        self
    }

    /// Sets the execution engine configuration (default:
    /// [`EngineConfig::serial`], one channel, no threads). With
    /// [`EngineConfig::sharded`], the scenario instantiates one channel
    /// shard per DRAM channel — each with its own controller, device
    /// and mounted defense chain — and steps them on scoped threads.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.spec.engine = engine;
        self
    }

    /// Adds a victim on channel 0. Repeatable: later victims share the
    /// device (multi-tenant scenarios).
    pub fn victim(mut self, spec: VictimSpec) -> Self {
        self.spec.victims.push((spec, 0));
        self
    }

    /// Adds a victim homed on a specific channel of a multi-channel
    /// engine — cross-channel multi-tenant scenarios. The victim's
    /// data, OS protection and defense coverage all live on that
    /// channel's shard.
    pub fn victim_on(mut self, spec: VictimSpec, channel: usize) -> Self {
        self.spec.victims.push((spec, channel));
        self
    }

    /// Sets the attack (or benign workload) as data. Concrete driver
    /// types ([`HammerAttack`], [`ProgressiveBfa`], …) convert
    /// implicitly, so `.attack(HammerAttack::bit(7))` still reads as
    /// before — it now records `AttackSpec::Hammer { bit: 7 }`.
    pub fn attack(mut self, attack: impl Into<AttackSpec>) -> Self {
        self.spec.attack = Some(attack.into());
        self
    }

    /// Escape hatch: an arbitrary [`Attack`] driver object. The
    /// resulting scenario is not spec-representable.
    pub fn custom_attack(mut self, attack: impl Attack + 'static) -> Self {
        self.custom_attack = Some(Box::new(attack));
        self
    }

    /// Mounts a defense as data. Repeatable: multiple defenses stack
    /// into a [`HookChain`] consulted in mount order. The workspace
    /// mitigations ([`crate::LockerMitigation`],
    /// [`crate::RowSwapMitigation`], [`crate::ShadowMitigation`])
    /// convert implicitly.
    pub fn defense(mut self, defense: impl Into<DefenseSpec>) -> Self {
        self.defenses.push(DefenseSlot::Spec(defense.into()));
        self
    }

    /// Escape hatch: an arbitrary [`Mitigation`] object (spy hooks in
    /// tests). The resulting scenario is not spec-representable.
    pub fn custom_defense(mut self, mitigation: impl Mitigation + 'static) -> Self {
        self.defenses.push(DefenseSlot::Custom(Box::new(mitigation)));
        self
    }

    /// Sets the attack budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.spec.budget = budget;
        self
    }

    /// Held-out sample size for accuracy measurements (default 64).
    pub fn eval_batch(mut self, n: usize) -> Self {
        self.spec.eval_batch = n.max(1);
        self
    }

    /// Which victim the attack targets (default 0, the first).
    pub fn target_victim(mut self, index: usize) -> Self {
        self.spec.target = index;
        self
    }

    /// Deploys the victims on their home shards, mounts the defense
    /// stack on every channel, and returns the executable pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Build`] for an empty victim list, a bad
    /// target index, a zero channel count or an out-of-range home
    /// channel, and propagates deployment/mount failures.
    pub fn build(self) -> Result<ScenarioRun, SimError> {
        let spec = self.spec;
        if spec.victims.is_empty() {
            return Err(SimError::Build(format!("scenario '{}' has no victim", spec.label)));
        }
        if spec.target >= spec.victims.len() {
            return Err(SimError::Build(format!(
                "target victim {} out of range ({} victims)",
                spec.target,
                spec.victims.len()
            )));
        }
        let channels = spec.engine.channels;
        if let Some(&(_, bad)) = spec.victims.iter().find(|&&(_, channel)| channel >= channels) {
            return Err(SimError::Build(format!(
                "victim homed on channel {bad}, but the engine has {channels} channels"
            )));
        }
        let config = match self.custom_geometry {
            Some(config) => config,
            None => spec.geometry.config(),
        };
        let attack = match self.custom_attack {
            Some(attack) => Some(attack),
            None => match &spec.attack {
                Some(attack_spec) => Some(resolve_attack(attack_spec, &spec, &config)?),
                None => None,
            },
        };
        let defenses: Vec<Box<dyn Mitigation>> = self
            .defenses
            .into_iter()
            .map(|slot| match slot {
                DefenseSlot::Spec(defense) => resolve_defense(&defense),
                DefenseSlot::Custom(mitigation) => mitigation,
            })
            .collect();
        let mut engine = ShardedEngine::new(spec.engine, config)?;

        // Deploy every victim on its home shard (shard-local
        // addressing: each channel is its own device).
        let mut victims = Vec::with_capacity(spec.victims.len());
        let mut homes = Vec::with_capacity(spec.victims.len());
        for &(victim_spec, home) in &spec.victims {
            victims.push(victim_spec.deploy(engine.shard_mut(home).controller_mut())?);
            homes.push(home);
        }

        // Each channel guards the ranges of the victims homed on it —
        // the per-channel slice of the defense state (for DRAM-Locker,
        // the shard's lock-table slice).
        let mut guarded_per_channel: Vec<Vec<(u64, u64)>> = vec![Vec::new(); channels];
        for (victim, &home) in victims.iter().zip(&homes) {
            guarded_per_channel[home].extend(victim.guarded_ranges().iter().copied());
        }
        for (channel, guarded) in guarded_per_channel.iter().enumerate() {
            let shard = engine.shard_mut(channel);
            let ctx = MountCtx {
                geometry: shard.controller().geometry(),
                mapper: shard.controller().mapper(),
                guarded,
            };
            let mut hooks = Vec::with_capacity(defenses.len());
            for mitigation in &defenses {
                hooks.push(mitigation.mount(&ctx)?);
            }
            match hooks.len() {
                0 => {}
                1 => {
                    shard.controller_mut().set_hook(hooks.pop().expect("one hook"));
                }
                _ => {
                    shard.controller_mut().set_hook(Box::new(HookChain::new(hooks)));
                }
            }
        }
        Ok(ScenarioRun {
            label: spec.label,
            engine,
            victims,
            homes,
            attack,
            defenses,
            budget: spec.budget,
            eval_batch: spec.eval_batch,
            target: spec.target,
            obs: None,
        })
    }
}

/// Resolves a declarative attack into its driver. [`AttackSpec::WeightFetch`]
/// is the one derived variant: it records the target victim's
/// weight-fetch trace against its layout (shard-local), lifts it to
/// global addresses on the requested channel, and replays it.
fn resolve_attack(
    attack: &AttackSpec,
    spec: &ScenarioSpec,
    config: &MemCtrlConfig,
) -> Result<Box<dyn Attack>, SimError> {
    Ok(match attack {
        AttackSpec::Hammer { bit } => Box::new(HammerAttack::bit(*bit)),
        AttackSpec::RowProbe { accesses } => Box::new(RowProbe { accesses: *accesses }),
        AttackSpec::BfaHammer { batch } => Box::new(BfaHammerAttack { batch: *batch }),
        AttackSpec::ProgressiveBfa { success_rate, seed, config } => {
            Box::new(ProgressiveBfa { success_rate: *success_rate, seed: *seed, config: *config })
        }
        AttackSpec::RandomFlip { seed } => Box::new(RandomFlipAttack::new(*seed)),
        AttackSpec::PageTable { pfn_bit, payload_xor } => {
            Box::new(PageTablePoison { pfn_bit: *pfn_bit, payload_xor: *payload_xor })
        }
        AttackSpec::InferenceStream { batches, chunk } => {
            Box::new(InferenceStream { batches: *batches, chunk: *chunk })
        }
        AttackSpec::Replay { tenants } => match tenants.as_slice() {
            [workload] => Box::new(ReplayWorkload::workload(workload)),
            many => Box::new(ReplayWorkload::tenants(many)),
        },
        AttackSpec::ReplayTrace { trace } => Box::new(ReplayWorkload::trace(trace.clone())),
        AttackSpec::WeightFetch { samples, chunk, channel } => {
            let (victim_spec, _) = spec.victims.get(spec.target).ok_or_else(|| {
                SimError::Build("weight-fetch replay needs a target victim".to_owned())
            })?;
            let SpecKind::Model { model, seed, base_phys } = victim_spec.kind else {
                return Err(SimError::Build(
                    "weight-fetch replay needs a contiguously deployed model victim".to_owned(),
                ));
            };
            let victim = model.victim(seed);
            let mapper = AddressMapper::new(config.dram.geometry, config.scheme);
            let layout = WeightLayout::new(base_phys, mapper);
            let local = layout.fetch_trace(&victim.model, *samples, *chunk)?;
            let router = ChannelRouter::new(spec.engine.channels, &mapper);
            let trace = router.globalize_trace(&local, *channel)?;
            Box::new(ReplayWorkload::trace(trace))
        }
    })
}

/// Resolves a declarative defense into its mountable mitigation.
fn resolve_defense(defense: &DefenseSpec) -> Box<dyn Mitigation> {
    use crate::mitigation::{
        LockerMitigation, RowSwapMitigation, ShadowMitigation, TrackerMitigation,
    };
    use dlk_defenses::{CounterPerRow, Graphene, Hydra, Twice};
    match *defense {
        DefenseSpec::Locker { config, target, radius } => {
            Box::new(LockerMitigation::new(config, target).with_radius(radius))
        }
        DefenseSpec::Graphene { capacity, threshold } => {
            Box::new(TrackerMitigation::new(Graphene::new(capacity, threshold)))
        }
        DefenseSpec::Hydra { group_size, group_threshold, row_threshold } => {
            Box::new(TrackerMitigation::new(Hydra::new(group_size, group_threshold, row_threshold)))
        }
        DefenseSpec::Twice { threshold, prune_interval, prune_rate } => {
            Box::new(TrackerMitigation::new(Twice::new(threshold, prune_interval, prune_rate)))
        }
        DefenseSpec::CounterPerRow { threshold } => {
            Box::new(TrackerMitigation::new(CounterPerRow::new(threshold)))
        }
        DefenseSpec::RowSwap { policy, threshold, seed } => {
            Box::new(RowSwapMitigation::new(policy, threshold, seed))
        }
        DefenseSpec::Shadow { threshold, seed } => Box::new(ShadowMitigation::new(threshold, seed)),
    }
}

/// A built, deployed pipeline, ready to run.
pub struct ScenarioRun {
    label: String,
    engine: ShardedEngine,
    victims: Vec<DeployedVictim>,
    /// Each victim's home channel, parallel to `victims`.
    homes: Vec<usize>,
    attack: Option<Box<dyn Attack>>,
    defenses: Vec<Box<dyn Mitigation>>,
    budget: Budget,
    eval_batch: usize,
    target: usize,
    /// Metrics registry the run reports into, if observed.
    obs: Option<Registry>,
}

impl std::fmt::Debug for ScenarioRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRun")
            .field("label", &self.label)
            .field("channels", &self.engine.channels())
            .field("victims", &self.victims.len())
            .field("attack", &self.attack.as_ref().map(|a| a.name()))
            .field("hook", &self.engine.primary().controller().hook().name())
            .field("budget", &self.budget)
            .finish()
    }
}

impl ScenarioRun {
    /// The scenario label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The scenario's budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The sharded execution engine (read-only).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Mutable access to the engine — for demonstrations and tests
    /// that route extra global traffic through the same pipeline.
    pub fn engine_mut(&mut self) -> &mut ShardedEngine {
        &mut self.engine
    }

    /// Channel 0's memory controller (read-only). For the default
    /// serial engine this is *the* controller, exactly as before the
    /// engine migration.
    pub fn controller(&self) -> &MemoryController {
        self.engine.primary().controller()
    }

    /// Mutable access to channel 0's controller — for demonstrations
    /// and tests that drive extra shard-local traffic.
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        self.engine.primary_mut().controller_mut()
    }

    /// The deployed victims.
    pub fn victims(&self) -> &[DeployedVictim] {
        &self.victims
    }

    /// One deployed victim.
    pub fn victim(&self, index: usize) -> &DeployedVictim {
        &self.victims[index]
    }

    /// Victim `index`'s home channel.
    pub fn home(&self, index: usize) -> usize {
        self.homes[index]
    }

    /// Reloads victim `index`'s model from its home shard through the
    /// controller (trusted reads, following defense redirects).
    ///
    /// # Errors
    ///
    /// Propagates controller errors; `Ok(None)` for raw-row victims.
    pub fn reload_model(&mut self, index: usize) -> Result<Option<QuantizedMlp>, SimError> {
        let victim = &self.victims[index];
        victim.reload_model(self.engine.shard_mut(self.homes[index]).controller_mut())
    }

    /// Executes the attack phase, then measures every victim and
    /// assembles the unified report. Cycle/energy/controller statistics
    /// are snapshotted at the end of the attack phase, before the
    /// measurement probes. Calling `run` again re-executes the attack
    /// on the already-attacked device (useful for benchmarking a
    /// steady-state defended campaign); accuracy baselines always refer
    /// to the pristine deployment.
    ///
    /// # Errors
    ///
    /// Propagates attack and measurement failures.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        self.run_inner(None)
    }

    /// Connects the run to a metrics registry: the engine's per-channel
    /// drain/merge timings, the controllers' per-kind service latencies
    /// and denial/fault counters, and (at the end of each run) any
    /// mounted DRAM-Locker's lock-table lookup/hit counters all report
    /// into `registry`. Idempotent per run: counter exports are deltas.
    pub fn observe(&mut self, registry: &Registry) {
        self.engine.observe(registry);
        self.obs = Some(registry.clone());
    }

    /// Like [`ScenarioRun::run`], but records the phase spans of the
    /// pipeline (baseline accuracy, attack, measurement, mitigation
    /// stats) into `recorder`. The attack span is annotated with the
    /// engine's cycle count for the attack phase.
    ///
    /// # Errors
    ///
    /// Propagates attack and measurement failures.
    pub fn run_with_spans(&mut self, recorder: &mut SpanRecorder) -> Result<RunReport, SimError> {
        self.run_inner(Some(recorder))
    }

    /// Runs the scenario under a fresh span recorder and returns the
    /// report together with the finished span tree (rooted at the
    /// scenario label).
    ///
    /// # Errors
    ///
    /// Propagates attack and measurement failures.
    pub fn run_traced(&mut self) -> Result<(RunReport, SpanTree), SimError> {
        let mut recorder = SpanRecorder::new(format!("scenario '{}'", self.label));
        let report = self.run_inner(Some(&mut recorder))?;
        Ok((report, recorder.finish()))
    }

    fn run_inner(&mut self, mut spans: Option<&mut SpanRecorder>) -> Result<RunReport, SimError> {
        let span_baseline = spans.as_deref_mut().map(|rec| rec.enter("baseline-accuracy"));
        let accuracy_before: Vec<Option<f64>> = self
            .victims
            .iter()
            .map(|v| v.victim().and_then(|vic| v.accuracy_pct(&vic.model, self.eval_batch)))
            .collect();
        if let (Some(rec), Some(id)) = (spans.as_deref_mut(), span_baseline) {
            rec.exit(id);
        }

        let span_attack = spans.as_deref_mut().map(|rec| rec.enter("attack"));
        let (outcome, attack_name) = match self.attack.take() {
            Some(mut attack) => {
                let mut env = RunEnv {
                    engine: &mut self.engine,
                    victims: &self.victims,
                    homes: &self.homes,
                    target: self.target,
                    budget: self.budget,
                    eval_batch: self.eval_batch,
                };
                let result = attack.execute(&mut env);
                let name = attack.name().to_owned();
                self.attack = Some(attack);
                (result?, name)
            }
            None => (AttackOutcome::default(), String::new()),
        };

        // Snapshot attack-phase costs before the measurement probes
        // drive their own traffic. The snapshot is merged in channel-id
        // order, so it is identical whether the shards just ran on
        // threads or serially.
        let snapshot = self.engine.snapshot();
        if let (Some(rec), Some(id)) = (spans.as_deref_mut(), span_attack) {
            rec.cycles(id, snapshot.cycles);
            rec.exit(id);
        }

        let span_measure = spans.as_deref_mut().map(|rec| rec.enter("measure"));
        let mut victim_reports = Vec::with_capacity(self.victims.len());
        for (index, victim) in self.victims.iter().enumerate() {
            let ctrl = self.engine.shard_mut(self.homes[index]).controller_mut();
            let reloaded = victim.reload_model(ctrl)?;
            let accuracy_after_pct =
                reloaded.and_then(|model| victim.accuracy_pct(&model, self.eval_batch));
            let data_intact = victim.data_intact(ctrl)?;
            victim_reports.push(VictimReport {
                accuracy_before_pct: accuracy_before[index],
                accuracy_after_pct,
                data_intact,
            });
        }
        if let (Some(rec), Some(id)) = (spans.as_deref_mut(), span_measure) {
            rec.exit(id);
        }

        let span_stats = spans.as_deref_mut().map(|rec| rec.enter("mitigation-stats"));
        // Per-defense action counts, summed over channels in channel-id
        // order: every shard mounted the same stack, so defense `i` is
        // hook `i` of every shard's chain.
        let mitigations: Vec<MitigationReport> = self
            .defenses
            .iter()
            .enumerate()
            .map(|(index, mitigation)| {
                let actions = self
                    .engine
                    .shards()
                    .iter()
                    .map(|shard| {
                        let hook = shard.controller().hook();
                        match hook.as_any().and_then(|any| any.downcast_ref::<HookChain>()) {
                            Some(chain) => mitigation.actions(chain.hooks()[index].as_ref()),
                            None => mitigation.actions(hook),
                        }
                    })
                    .sum();
                MitigationReport { name: mitigation.name().to_owned(), actions }
            })
            .collect();
        if let (Some(rec), Some(id)) = (spans, span_stats) {
            rec.exit(id);
        }

        if let Some(registry) = self.obs.clone() {
            // Hammer attacks drive controllers per-request and never
            // pass through `run_to_completion`, so flush the shards'
            // locally recorded controller metrics here too.
            self.engine.export_obs();
            self.export_defense_obs(&registry);
        }

        Ok(RunReport {
            scenario: self.label.clone(),
            attack: attack_name,
            channels: self.engine.channels(),
            defenses: self.defenses.iter().map(|m| m.name().to_owned()).collect(),
            landed_flips: outcome.landed_flips,
            requests: outcome.requests,
            denied: outcome.denied,
            redirected: outcome.redirected,
            target_bits: outcome.target_bits,
            flipped_bits: outcome.flipped_bits,
            curve: outcome.curve,
            cycles: snapshot.cycles,
            energy_pj: snapshot.energy_pj,
            controller: snapshot.controller,
            victims: victim_reports,
            mitigations,
        })
    }

    /// Pushes the defense-side interior counters (currently the
    /// DRAM-Locker lock-table lookups/hits, summed over channels) into
    /// the observed registry as `locker.locktable.*` deltas.
    fn export_defense_obs(&self, registry: &Registry) {
        for shard in self.engine.shards() {
            let hook = shard.controller().hook();
            match hook.as_any().and_then(|any| any.downcast_ref::<HookChain>()) {
                Some(chain) => {
                    for hook in chain.hooks() {
                        if let Some(locker) =
                            hook.as_any().and_then(|any| any.downcast_ref::<DramLocker>())
                        {
                            locker.export_obs(registry, "locker");
                        }
                    }
                }
                None => {
                    if let Some(locker) =
                        hook.as_any().and_then(|any| any.downcast_ref::<DramLocker>())
                    {
                        locker.export_obs(registry, "locker");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::LockerMitigation;

    fn hammer_budget() -> Budget {
        Budget { max_activations: 4_000, check_interval: 8, iterations: 1 }
    }

    #[test]
    fn builder_rejects_empty_scenarios() {
        assert!(matches!(Scenario::builder().build(), Err(SimError::Build(_))));
        let bad_target = Scenario::builder().victim(VictimSpec::row(5, 1)).target_victim(3).build();
        assert!(matches!(bad_target, Err(SimError::Build(_))));
    }

    #[test]
    fn undefended_hammer_harms_the_row_victim() {
        let mut run = Scenario::builder()
            .label("undefended")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.landed_flips, 1);
        assert_eq!(report.denied, 0);
        assert_eq!(report.victims[0].data_intact, Some(false));
        assert!(report.harmed());
    }

    #[test]
    fn locker_denies_the_same_campaign() {
        let mut run = Scenario::builder()
            .label("defended")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert!(report.fully_denied(), "{report:?}");
        assert_eq!(report.victims[0].data_intact, Some(true));
        assert!(!report.harmed());
        assert_eq!(report.defenses, vec!["dram-locker".to_owned()]);
        assert!(report.mitigation_total() > 0);
    }

    #[test]
    fn stacked_defenses_report_individually() {
        let mut run = Scenario::builder()
            .label("stacked")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .defense(DefenseSpec::graphene(64, 8))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.mitigations.len(), 2);
        assert_eq!(report.mitigations[0].name, "dram-locker");
        assert_eq!(report.mitigations[1].name, "graphene");
        // The locker denies everything, so the tracker sees nothing.
        assert!(report.fully_denied());
        assert!(report.mitigations[0].actions > 0);
    }

    #[test]
    fn probe_against_data_locked_row_is_denied_but_data_flows_for_victim() {
        let mut run = Scenario::builder()
            .label("probe")
            .victim(VictimSpec::row(10, 0x42))
            .attack(RowProbe { accesses: 100 })
            .defense(LockerMitigation::data_rows())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.denied, 100);
        // The integrity probe (trusted) was served via SWAP + redirect.
        assert_eq!(report.victims[0].data_intact, Some(true));
    }

    #[test]
    fn builder_is_sugar_over_the_spec() {
        let builder = Scenario::builder()
            .label("spec-sugar")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .budget(hammer_budget());
        let spec = builder.spec().unwrap();
        assert_eq!(spec.label, "spec-sugar");
        assert_eq!(spec.attack, Some(AttackSpec::Hammer { bit: 77 }));
        assert_eq!(spec.defenses.len(), 1);
        // The same spec, round-tripped through the codec, reproduces
        // the builder's run bit for bit.
        let reparsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        let spec_report = Scenario::from_spec(&reparsed).unwrap().run().unwrap();
        let builder_report = builder.build().unwrap().run().unwrap();
        assert_eq!(spec_report, builder_report);
    }

    #[test]
    fn custom_components_have_no_spec_form() {
        struct Noop;
        impl crate::attack::Attack for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn execute(&mut self, _env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
                Ok(AttackOutcome::default())
            }
        }
        let builder = Scenario::builder().victim(VictimSpec::row(5, 1)).custom_attack(Noop);
        assert!(matches!(builder.spec(), Err(SimError::Build(_))));
        // It still builds and runs — just not as data.
        builder.build().unwrap().run().unwrap();
    }

    #[test]
    fn observed_run_exports_engine_and_locker_metrics() {
        let registry = Registry::new();
        let mut run = Scenario::builder()
            .label("observed")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .budget(hammer_budget())
            .build()
            .unwrap();
        run.observe(&registry);
        let report = run.run().unwrap();
        assert!(report.fully_denied());
        // Controller-side counters flowed through the shared handles.
        assert!(registry.counter("memctrl.denied").get() > 0);
        assert!(registry.counter("memctrl.served").get() > 0);
        assert!(registry.histogram("memctrl.latency_cycles.read").count() > 0);
        // The engine's drain metrics registered (a hammer campaign
        // drives the controllers per-request, so the count stays 0 —
        // workload drains through `run_to_completion` would bump it).
        assert!(registry.get("engine.drains").is_some());
        // The locker's interior lock-table counters were exported.
        assert!(registry.counter("locker.locktable.lookups").get() > 0);
        assert!(registry.counter("locker.locktable.hits").get() > 0);
        // Running again adds deltas, it does not double-count backwards.
        let lookups_after_one = registry.counter("locker.locktable.lookups").get();
        run.run().unwrap();
        assert!(registry.counter("locker.locktable.lookups").get() > lookups_after_one);
    }

    #[test]
    fn run_traced_records_phase_spans() {
        let mut run = Scenario::builder()
            .label("traced")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(3))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let (report, tree) = run.run_traced().unwrap();
        assert!(report.cycles > 0);
        // Root + the four pipeline phases.
        assert_eq!(tree.len(), 5);
        let rendered = tree.to_string();
        assert!(rendered.contains("scenario 'traced'"), "{rendered}");
        for phase in ["baseline-accuracy", "attack", "measure", "mitigation-stats"] {
            assert!(rendered.contains(phase), "missing {phase} in:\n{rendered}");
        }
        assert!(rendered.contains("cycles"), "{rendered}");
    }

    #[test]
    fn report_snapshots_attack_phase_costs() {
        let mut run = Scenario::builder()
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(3))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert!(report.cycles > 0);
        assert!(report.energy_pj > 0.0);
        // The trailing integrity read is excluded from the snapshot.
        assert!(run.controller().dram().stats().cycles > report.cycles);
    }
}
